# Convenience targets; everything runs against the in-tree sources.
PYTHON ?= python
export PYTHONPATH := src

FUZZ_SEED ?= 7
FUZZ_ITERATIONS ?= 25

.PHONY: test analyze fuzz fuzz-soak bench bench-parallel serve-smoke \
	stream-smoke pack-smoke sanitize-smoke lint-src

test:
	$(PYTHON) -m pytest -x -q

# Static plan analysis + UDF linting over every built-in algorithm plus
# fuzzer-generated plans, including the shard-safety (concurrency) pass;
# --strict-warnings makes WARNING findings fail the gate too. (The
# stream pass is exercised by the corpus tests instead: scc's nested
# fixed point legitimately warns under GS-M404.)
analyze:
	$(PYTHON) -m repro.cli analyze --seed $(FUZZ_SEED) --generated 25 \
		--concurrency --strict-warnings --json analysis-report.json

# The CI fuzz-smoke configuration: fixed seed, deterministic campaign.
fuzz:
	$(PYTHON) -m repro.cli fuzz --seed $(FUZZ_SEED) \
		--iterations $(FUZZ_ITERATIONS)

# Longer soak that keeps going past failures, one repro per mismatch.
fuzz-soak:
	$(PYTHON) -m repro.cli fuzz --seed $(FUZZ_SEED) --iterations 200 \
		--keep-going --quiet

bench:
	$(PYTHON) benchmarks/bench_hotpath.py --check BENCH_engine.json \
		--tolerance 0.25

# Backend-equality + speedup gate for the process backend (the CI
# parallel-smoke job). Counters and output digests must be identical
# across backends; the speedup floor is enforced only on machines with
# at least as many cores as workers (advisory otherwise). See
# docs/parallel.md.
bench-parallel:
	$(PYTHON) benchmarks/bench_hotpath.py --compare-backends \
		--workers 4 --scenarios iterate_heavy,collection_run_wcc \
		--min-speedup 2.0

# Boot the real daemon, drive it over HTTP (health, GVDL, cached run,
# mutation, delta recompute), SIGTERM it, and assert a clean drained
# shutdown with a valid session checkpoint. See docs/serving.md.
serve-smoke:
	$(PYTHON) -m repro.serve.smoke

# Gate for the community & scoring pack (the CI pack-smoke job): the
# hand-computed pin tests lock the tie-breaking/normalization/peeling
# rules, then each pack member runs a 25-iteration single-algorithm
# fuzz campaign — which executes the *full* invariant battery every
# iteration, including the streamed-churn `stream` check, so every
# member sees >= 25 seeded cases. See docs/algorithms.md.
pack-smoke:
	$(PYTHON) -m pytest -x -q tests/algorithms/test_pack_pins.py
	for algo in labelprop ppr ktruss score; do \
		$(PYTHON) -m repro.cli fuzz --seed $(FUZZ_SEED) \
			--iterations $(FUZZ_ITERATIONS) \
			--algorithms $$algo --quiet || exit 1; \
	done

# Shadow-sanitizer gate (the CI sanitize-smoke job): a clean
# iterate-heavy WCC run under sanitize=True must stay silent with
# byte-identical counters, and a planted inline/process divergence must
# be caught at the offending reduce's exact plan address on the first
# epoch. Driver: src/repro/verify/sanitize_smoke.py. See docs/parallel.md.
sanitize-smoke:
	$(PYTHON) -m repro.verify.sanitize_smoke

# Source lint (the CI lint-src job); requires ruff on PATH. Config lives
# in pyproject.toml [tool.ruff].
lint-src:
	ruff check src tests

# Stream a 60-epoch seeded churn source through continuously maintained
# queries on both backends: per-epoch snapshots must equal the plain
# references on the accumulated edges, inline/process must be
# byte-identical, work must scale with the batch (not the graph),
# capture traces stay bounded under compaction, and a journaled stream
# killed mid-way resumes byte-identically. See docs/streaming.md.
stream-smoke:
	$(PYTHON) -m repro.stream.smoke
