"""Debug tooling: DOT export, trace statistics, consistency checking."""

from repro.differential import Dataflow
from repro.differential.debug import check_consistency, to_dot, trace_stats


def bfs_dataflow():
    df = Dataflow()
    edges = df.new_input("edges")
    roots = df.new_input("roots")

    def body(inner, scope):
        e = scope.enter(edges)
        r = scope.enter(roots)
        return inner.join(
            e, lambda u, d, v: (v, d + 1), name="step").concat(r).min_by_key(
            name="unionmin")

    out = df.capture(roots.iterate(body, name="bfsloop"), "dists")
    return df, out


class TestDot:
    def test_contains_operators_and_cluster(self):
        df, _out = bfs_dataflow()
        dot = to_dot(df)
        assert dot.startswith("digraph")
        assert "unionmin" in dot
        assert "subgraph cluster_" in dot
        assert "feedback" in dot

    def test_edges_reference_defined_nodes(self):
        df, _out = bfs_dataflow()
        dot = to_dot(df)
        defined = {line.split()[0] for line in dot.splitlines()
                   if line.strip().startswith("n") and "[label=" in line}
        for line in dot.splitlines():
            if "->" in line:
                src = line.strip().split()[0]
                assert src in defined


class TestTraceStats:
    def test_reports_state_after_run(self):
        df, _out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        stats = trace_stats(df)
        assert stats
        names = {s.name for s in stats}
        assert "unionmin" in names
        assert all(s.entries >= 0 for s in stats)
        # Sorted by entries, descending.
        entries = [s.entries for s in stats]
        assert entries == sorted(entries, reverse=True)


class TestConsistency:
    def test_clean_run_is_consistent(self):
        df, _out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        df.step({"edges": {(1, 2): -1}})
        assert check_consistency(df) == []

    def test_detects_corrupted_trace(self):
        df, _out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1}, "roots": {(0, 0): 1}})
        # Corrupt a reduce's output trace directly.
        from repro.differential.operators.reduce import ReduceOp

        for ops in df._ops_by_scope.values():
            for op in ops:
                if isinstance(op, ReduceOp) and op.name == "unionmin":
                    op.out_trace.update(1, (0, 0), {999: 1})
        problems = check_consistency(df)
        assert problems
        assert "unionmin" in problems[0]
