"""The paper's Table 1: Bellman-Ford difference traces across graph
versions G0 -> G1 -> G2.

Graph (Figure 3): s->w1 cost 2, s->w2 cost 10, w1->w2 cost 2 (we add
w2->w3 cost 2 to give the example one more hop). Updates: G1 changes
(s,w1) to cost 1; G2 changes (s,w2) to cost 1.

We assert the *values* the paper's trace implies and the key sharing
property: the second and third versions touch only the w-component — the
number of per-epoch differences stays constant as unrelated graph content
grows (the paper's "billions of z edges" argument).
"""


from repro.differential import Dataflow


def bellman_ford_dataflow():
    df = Dataflow()
    edges = df.new_input("edges")     # (src, (dst, cost))
    dists = df.new_input("dists")     # (vertex, dist)

    def body(inner, scope):
        e = scope.enter(edges)
        d = scope.enter(dists)
        messages = inner.join(
            e, lambda u, dist, dc: (dc[0], dist + dc[1]))
        return messages.concat(d).min_by_key()

    return df, edges, dists, df.capture(dists.iterate(body), "out")


W_EDGES = {("s", ("w1", 2)): 1, ("s", ("w2", 10)): 1,
           ("w1", ("w2", 2)): 1, ("w2", ("w3", 2)): 1}


class TestPaperTable1:
    def test_g0_distances(self):
        df, *_rest, out = bellman_ford_dataflow()
        df.step({"edges": W_EDGES, "dists": {("s", 0): 1}})
        assert out.value_at_epoch(0) == {
            ("s", 0): 1, ("w1", 2): 1, ("w2", 4): 1, ("w3", 6): 1}

    def test_g1_after_first_cost_change(self):
        df, *_rest, out = bellman_ford_dataflow()
        df.step({"edges": W_EDGES, "dists": {("s", 0): 1}})
        df.step({"edges": {("s", ("w1", 2)): -1, ("s", ("w1", 1)): 1}})
        assert out.value_at_epoch(1) == {
            ("s", 0): 1, ("w1", 1): 1, ("w2", 3): 1, ("w3", 5): 1}
        # Output differences are exactly the distance corrections.
        assert out.diff_at((1,)) == {
            ("w1", 2): -1, ("w1", 1): 1,
            ("w2", 4): -1, ("w2", 3): 1,
            ("w3", 6): -1, ("w3", 5): 1}

    def test_g2_after_second_cost_change(self):
        df, *_rest, out = bellman_ford_dataflow()
        df.step({"edges": W_EDGES, "dists": {("s", 0): 1}})
        df.step({"edges": {("s", ("w1", 2)): -1, ("s", ("w1", 1)): 1}})
        df.step({"edges": {("s", ("w2", 10)): -1, ("s", ("w2", 1)): 1}})
        assert out.value_at_epoch(2) == {
            ("s", 0): 1, ("w1", 1): 1, ("w2", 1): 1, ("w3", 3): 1}

    def test_updates_do_not_touch_unrelated_component(self):
        """The paper's sharing claim: after G0, updates to the w-component
        cost the same no matter how much unrelated (z) content exists."""

        def run(extra_z_edges: int) -> int:
            df, *_rest, out = bellman_ford_dataflow()
            edges = dict(W_EDGES)
            for i in range(extra_z_edges):
                edges[(f"z{i}", (f"z{i+1}", 1))] = 1
            df.step({"edges": edges,
                     "dists": {("s", 0): 1, ("z0", 0): 1}})
            before = df.meter.total_work
            df.step({"edges": {("s", ("w1", 2)): -1, ("s", ("w1", 1)): 1}})
            return df.meter.total_work - before

        small = run(5)
        large = run(50)
        assert small == large

    def test_epoch_diff_counts_bounded(self):
        df, *_rest, out = bellman_ford_dataflow()
        df.step({"edges": W_EDGES, "dists": {("s", 0): 1}})
        df.step({"edges": {("s", ("w1", 2)): -1, ("s", ("w1", 1)): 1}})
        df.step({"edges": {("s", ("w2", 10)): -1, ("s", ("w2", 1)): 1}})
        # Each update yields exactly 6 output differences (3 vertices x
        # retraction+assertion), as in the paper's table.
        assert len(out.diff_at((1,))) == 6
        assert len(out.diff_at((2,))) == 4
