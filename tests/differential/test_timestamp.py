"""Unit and property tests for the product partial order on timestamps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.differential.timestamp import (
    extend,
    glb,
    leq,
    lt,
    lub,
    lub_closure,
    truncate,
)

times2 = st.tuples(st.integers(0, 6), st.integers(0, 6))


class TestLeq:
    def test_equal_times_compare(self):
        assert leq((1, 2), (1, 2))

    def test_componentwise(self):
        assert leq((1, 2), (2, 2))
        assert not leq((2, 2), (1, 3))

    def test_incomparable_pair(self):
        assert not leq((0, 1), (1, 0))
        assert not leq((1, 0), (0, 1))

    def test_different_arity_never_comparable(self):
        assert not leq((1,), (1, 2))
        assert not leq((1, 2), (1,))

    @given(times2, times2, times2)
    def test_transitivity(self, a, b, c):
        if leq(a, b) and leq(b, c):
            assert leq(a, c)

    @given(times2, times2)
    def test_antisymmetry(self, a, b):
        if leq(a, b) and leq(b, a):
            assert a == b


class TestLubGlb:
    def test_lub_componentwise_max(self):
        assert lub((1, 5), (3, 2)) == (3, 5)

    def test_glb_componentwise_min(self):
        assert glb((1, 5), (3, 2)) == (1, 2)

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            lub((1,), (1, 2))
        with pytest.raises(ValueError):
            glb((1,), (1, 2))

    @given(times2, times2)
    def test_lub_is_upper_bound(self, a, b):
        j = lub(a, b)
        assert leq(a, j) and leq(b, j)

    @given(times2, times2, times2)
    def test_lub_is_least(self, a, b, c):
        if leq(a, c) and leq(b, c):
            assert leq(lub(a, b), c)

    @given(times2, times2)
    def test_lattice_duality(self, a, b):
        assert lub(glb(a, b), a) == a
        assert glb(lub(a, b), a) == a


class TestClosure:
    def test_closure_adds_joins(self):
        closed = lub_closure([(0, 1), (1, 0)])
        assert (1, 1) in closed

    def test_closure_of_chain_is_itself(self):
        chain = [(0, 0), (1, 1), (2, 2)]
        assert lub_closure(chain) == set(chain)

    @given(st.lists(times2, min_size=1, max_size=6))
    def test_closure_is_closed(self, times):
        closed = lub_closure(times)
        for a in closed:
            for b in closed:
                assert lub(a, b) in closed

    @given(st.lists(times2, min_size=1, max_size=6))
    def test_closure_contains_input(self, times):
        assert set(times) <= lub_closure(times)


class TestExtendTruncate:
    def test_extend_appends_zero(self):
        assert extend((3,)) == (3, 0)
        assert extend((3, 1), 5) == (3, 1, 5)

    def test_truncate_drops_last(self):
        assert truncate((3, 1)) == (3,)

    def test_truncate_root_raises(self):
        with pytest.raises(ValueError):
            truncate((3,))

    def test_strict_order(self):
        assert lt((1, 1), (1, 2))
        assert not lt((1, 1), (1, 1))
