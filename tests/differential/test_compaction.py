"""Frontier-driven trace compaction: the streaming memory bound.

The opportunistic per-key ``maybe_compact`` keeps *touched* keys small;
``Dataflow.compact(before_epoch)`` is the sweep a long-running stream
needs so quiet keys — and the capture's per-epoch diff log — stop
growing with the number of epochs ever processed.
"""


from repro.differential import Dataflow
from repro.differential.trace import Trace


def count_dataflow(workers=1, backend="inline"):
    df = Dataflow(workers=workers, backend=backend)
    edges = df.new_input("edges")
    out = df.capture(edges.count_by_key(), "out")
    return df, out


class TestTraceCompactBelow:
    def test_preserves_accumulations_at_live_times(self):
        trace = Trace("t")
        for epoch in range(6):
            trace.update("k", (epoch,), {epoch: 1})
        expected = trace.accumulate("k", (5,))
        trace.compact_below(4)
        assert trace.accumulate("k", (5,)) == expected
        assert len(trace.key_trace("k").entries) == 3  # (0,), (4,), (5,)

    def test_drops_fully_cancelled_keys(self):
        trace = Trace("t")
        trace.update("gone", (0,), {"v": 1})
        trace.update("gone", (1,), {"v": -1})
        trace.update("kept", (0,), {"v": 1})
        trace.compact_below(2)
        assert "gone" not in trace
        assert "kept" in trace
        assert trace.record_count() == 1


class TestCaptureCompaction:
    def test_accumulated_value_survives_compaction(self):
        df, out = count_dataflow()
        for epoch in range(8):
            df.step({"edges": {(epoch % 2, epoch): 1}})
        before = out.value_at_epoch(7)
        assert len(out.trace) == 8
        df.compact(6)
        assert out.value_at_epoch(7) == before
        # Epochs 0..5 folded into one representative; 6 and 7 stay exact.
        assert len(out.trace) == 3
        assert out.diff_at((7,)) != {}

    def test_bounded_under_continuous_churn(self):
        df, out = count_dataflow()
        live = None
        for epoch in range(60):
            delta = {("a", epoch): 1}
            if live is not None:
                delta[live] = -1
            live = ("a", epoch)
            df.step({"edges": delta})
            if epoch % 8 == 7:
                df.compact(df.epoch - 2)
        # One live record: the capture holds the fold plus the recent
        # exact epochs, not one entry per epoch streamed.
        assert len(out.trace) <= 12
        assert out.value_at_epoch(df.epoch) == {("a", 1): 1}

    def test_compact_is_idempotent_and_clamped(self):
        df, out = count_dataflow()
        df.step({"edges": {(1, 2): 1}})
        df.compact(10_000)  # clamped to the last completed epoch
        df.compact(10_000)
        df.compact(0)  # no-op
        assert out.value_at_epoch(df.epoch) == {(1, 1): 1}


class TestOperatorCompaction:
    def test_inline_keyed_traces_shrink_and_stay_correct(self):
        from repro.differential.debug import operator_record_counts

        df, out = count_dataflow()
        for epoch in range(30):
            delta = {("k", epoch): 1}
            if epoch:
                delta[("k", epoch - 1)] = -1
            df.step({"edges": delta})
        grown = sum(operator_record_counts(df).values())
        df.compact(df.epoch)
        compacted = sum(operator_record_counts(df).values())
        assert compacted < grown
        # Further epochs still compute correctly off compacted history.
        df.step({"edges": {("k", 100): 1}})
        assert out.value_at_epoch(df.epoch) == {("k", 2): 1}

    def test_process_backend_broadcast_shrinks_worker_state(self):
        from repro.differential.debug import operator_record_counts

        df, out = count_dataflow(workers=2, backend="process")
        try:
            for epoch in range(24):
                df.step({"edges": {(epoch % 3, epoch): 1}})
            reference = out.value_at_epoch(df.epoch)
            grown = sum(operator_record_counts(df).values())
            df.compact(df.epoch)
            # The broadcast is fire-and-forget; stats() is the next
            # synchronous exchange and observes the compacted traces.
            compacted = sum(operator_record_counts(df).values())
            assert compacted < grown
            assert out.value_at_epoch(df.epoch) == reference
            df.step({"edges": {(0, 99): 1}})
            assert out.value_at_epoch(df.epoch)[(0, 9)] == 1
        finally:
            df.close()

    def test_iterative_dataflow_correct_after_compaction(self):
        # WCC-style propagation: compaction must fold loop histories per
        # iteration suffix without disturbing future epochs.
        df = Dataflow()
        edges = df.new_input("edges")
        seeds = edges.flat_map(
            lambda rec: [(rec[0], rec[0]), (rec[1], rec[1])]).min_by_key()

        def body(labels, scope):
            e = scope.enter(edges)
            s = scope.enter(seeds)
            prop = labels.join(e, lambda u, lab, v: (v, lab))
            return prop.concat(s).min_by_key()

        out = df.capture(seeds.iterate(body), "wcc")
        df.step({"edges": {(1, 2): 1, (2, 1): 1}})
        df.step({"edges": {(3, 4): 1, (4, 3): 1}})
        df.compact(df.epoch)
        df.step({"edges": {(2, 3): 1, (3, 2): 1}})
        assert out.value_at_epoch(df.epoch) == {
            (1, 1): 1, (2, 1): 1, (3, 1): 1, (4, 1): 1}


class TestMixedBatchEpoch:
    """S4: one epoch carrying appends and retracts together."""

    def test_mixed_append_retract_single_step(self):
        df, out = count_dataflow()
        df.step({"edges": {("a", 1): 1, ("a", 2): 1, ("b", 7): 1}})
        # One step both retracts an existing record and appends new ones.
        df.step({"edges": {("a", 1): -1, ("b", 8): 1, ("c", 9): 1}})
        assert out.value_at_epoch(df.epoch) == {
            ("a", 1): 1, ("b", 2): 1, ("c", 1): 1}
        # The epoch's emitted delta reflects both directions at once.
        delta = out.diff_at((1,))
        assert delta == {("a", 2): -1, ("a", 1): 1, ("b", 1): -1,
                         ("b", 2): 1, ("c", 1): 1}

    def test_append_and_full_retract_cancel_key(self):
        df, out = count_dataflow()
        df.step({"edges": {("x", 1): 1}})
        df.step({"edges": {("x", 1): -1, ("y", 2): 1}})
        assert out.value_at_epoch(df.epoch) == {("y", 1): 1}
