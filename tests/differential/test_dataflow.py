"""Dataflow construction and driver error paths."""

import pytest

from repro.differential import Dataflow
from repro.errors import DataflowError


class TestConstruction:
    def test_duplicate_input_name_rejected(self):
        df = Dataflow()
        df.new_input("edges")
        with pytest.raises(DataflowError, match="duplicate input"):
            df.new_input("edges")

    def test_unknown_input_rejected_at_step(self):
        df = Dataflow()
        df.new_input("edges")
        with pytest.raises(DataflowError, match="unknown input"):
            df.step({"nodes": {1: 1}})

    def test_capture_requires_root_scope(self):
        df = Dataflow()
        source = df.new_input("in")
        captured = {}

        def body(inner, scope):
            captured["inner"] = inner
            return inner.map(lambda rec: rec)

        source.iterate(body)
        with pytest.raises(DataflowError, match="root scope"):
            df.capture(captured["inner"], "bad")

    def test_frozen_after_first_step(self):
        df = Dataflow()
        df.new_input("in")
        df.step({})
        with pytest.raises(DataflowError, match="frozen|after the dataflow"):
            df.new_input("late")

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            Dataflow(workers=0)


class TestDriver:
    def test_step_returns_epoch_indices(self):
        df = Dataflow()
        df.new_input("in")
        assert df.step({}) == 0
        assert df.step({}) == 1

    def test_step_without_inputs(self):
        df = Dataflow()
        source = df.new_input("in")
        out = df.capture(source.map(lambda x: x), "out")
        df.step()
        assert out.value_at_epoch(0) == {}

    def test_zero_multiplicity_input_ignored(self):
        df = Dataflow()
        source = df.new_input("in")
        out = df.capture(source, "out")
        df.step({"in": {1: 0}})
        assert out.value_at_epoch(0) == {}

    def test_meter_attached_and_counting(self):
        df = Dataflow(workers=4)
        source = df.new_input("in")
        df.capture(source.map(lambda x: x + 1), "out")
        df.step({"in": {1: 1, 2: 1}})
        assert df.meter.total_work > 0
        assert df.meter.workers == 4


class TestCapture:
    def test_records_at_epoch_expands_multiplicity(self):
        df = Dataflow()
        source = df.new_input("in")
        out = df.capture(source, "out")
        df.step({"in": {"a": 2, "b": 1}})
        assert sorted(out.records_at_epoch(0)) == ["a", "a", "b"]

    def test_records_at_epoch_rejects_negative(self):
        df = Dataflow()
        source = df.new_input("in")
        out = df.capture(source.negate(), "out")
        df.step({"in": {"a": 1}})
        with pytest.raises(ValueError, match="negative"):
            out.records_at_epoch(0)

    def test_total_diff_count(self):
        df = Dataflow()
        source = df.new_input("in")
        out = df.capture(source, "out")
        df.step({"in": {"a": 1, "b": 1}})
        df.step({"in": {"a": -1}})
        assert out.total_diff_count() == 3
