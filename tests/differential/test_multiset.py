"""Unit and property tests for the multiset algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.differential.multiset import (
    add_into,
    assert_nonnegative,
    consolidate,
    from_records,
    from_weighted,
    is_empty,
    negate,
    size,
    subtract,
)

diffs = st.dictionaries(st.integers(0, 9), st.integers(-5, 5).filter(bool),
                        max_size=8)


class TestConsolidate:
    def test_drops_zeros(self):
        assert consolidate({"a": 0, "b": 2}) == {"b": 2}

    def test_keeps_negative(self):
        assert consolidate({"a": -3}) == {"a": -3}

    def test_empty(self):
        assert consolidate({}) == {}


class TestAddInto:
    def test_merges_and_cancels(self):
        target = {"a": 1, "b": 2}
        add_into(target, {"a": -1, "c": 3})
        assert target == {"b": 2, "c": 3}

    def test_factor(self):
        target = {"a": 1}
        add_into(target, {"a": 1, "b": 2}, factor=-1)
        assert target == {"b": -2}

    @given(diffs, diffs)
    def test_matches_manual_sum(self, a, b):
        target = dict(a)
        add_into(target, b)
        for key in set(a) | set(b):
            expected = a.get(key, 0) + b.get(key, 0)
            assert target.get(key, 0) == expected
        assert 0 not in target.values()


class TestSubtractNegate:
    @given(diffs)
    def test_self_subtraction_is_empty(self, a):
        assert subtract(a, a) == {}

    @given(diffs)
    def test_negate_twice_is_identity(self, a):
        assert negate(negate(a)) == a

    @given(diffs, diffs)
    def test_subtract_then_add_back(self, a, b):
        result = subtract(a, b)
        add_into(result, b)
        assert result == consolidate(dict(a))


class TestConstructors:
    def test_from_records_counts(self):
        assert from_records(["x", "y", "x"]) == {"x": 2, "y": 1}

    def test_from_weighted_cancels(self):
        assert from_weighted([("x", 2), ("x", -2), ("y", 1)]) == {"y": 1}


class TestPredicates:
    def test_is_empty(self):
        assert is_empty({})
        assert not is_empty({"a": 1})

    @given(diffs)
    def test_size_is_total_absolute_multiplicity(self, a):
        assert size(a) == sum(abs(m) for m in a.values())

    def test_assert_nonnegative_raises(self):
        with pytest.raises(ValueError, match="negative multiplicity"):
            assert_nonnegative({"a": -1}, context="test")

    def test_assert_nonnegative_passes(self):
        assert_nonnegative({"a": 2})
