"""Shared arrangements: correctness and sharing."""

import random

import pytest

from repro.differential import Dataflow
from repro.errors import DataflowError


class TestJoinArranged:
    def test_matches_plain_join(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        arranged = b.arrange("b.arr")
        shared = df.capture(a.join_arranged(arranged), "shared")
        plain = df.capture(a.join(b), "plain")
        df.step({"a": {("k", 1): 1, ("j", 5): 1},
                 "b": {("k", 2): 1, ("k", 3): 2}})
        df.step({"b": {("k", 2): -1, ("j", 7): 1}})
        df.step({"a": {("j", 5): -1}})
        for epoch in range(3):
            assert shared.value_at_epoch(epoch) == \
                plain.value_at_epoch(epoch), epoch

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_equivalence(self, seed):
        rng = random.Random(seed)
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        arranged = b.arrange()
        shared = df.capture(a.join_arranged(arranged), "shared")
        plain = df.capture(a.join(b), "plain")
        state = {"a": {}, "b": {}}
        for epoch in range(5):
            feed = {}
            for side in ("a", "b"):
                diff = {}
                for _ in range(rng.randrange(5)):
                    rec = (rng.randrange(3), rng.randrange(4))
                    if rec in state[side] and rng.random() < 0.4:
                        del state[side][rec]
                        diff[rec] = -1
                    elif rec not in state[side]:
                        state[side][rec] = 1
                        diff[rec] = 1
                feed[side] = diff
            df.step(feed)
            assert shared.value_at_epoch(epoch) == \
                plain.value_at_epoch(epoch), (seed, epoch)

    def test_one_arrangement_feeds_many_joins(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        c = df.new_input("c")
        arranged = b.arrange()
        out_a = df.capture(a.join_arranged(arranged), "a_join")
        out_c = df.capture(c.join_arranged(arranged), "c_join")
        df.step({"a": {("k", 1): 1}, "b": {("k", 10): 1},
                 "c": {("k", 2): 1}})
        assert out_a.value_at_epoch(0) == {("k", (1, 10)): 1}
        assert out_c.value_at_epoch(0) == {("k", (2, 10)): 1}

    def test_arranged_side_stored_once(self):
        """Two joins over one arrangement share the index; two private
        joins store it twice."""
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        c = df.new_input("c")
        arranged = b.arrange()
        a.join_arranged(arranged)
        c.join_arranged(arranged)
        two_private_1 = a.join(b)
        two_private_2 = c.join(b)
        df.step({"b": {("k", value): 1 for value in range(100)}})
        shared_entries = arranged.record_count()
        private_entries = (two_private_1.op.traces[1].record_count()
                           + two_private_2.op.traces[1].record_count())
        assert shared_entries == 100
        assert private_entries == 200

    def test_as_collection_passthrough(self):
        df = Dataflow()
        b = df.new_input("b")
        arranged = b.arrange()
        out = df.capture(arranged.as_collection().map(lambda rec: rec[0]),
                         "keys")
        df.step({"b": {("k", 1): 1, ("j", 2): 1}})
        assert out.value_at_epoch(0) == {"k": 1, "j": 1}

    def test_scope_mismatch_rejected(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        arranged = b.arrange()

        def body(inner, scope):
            with pytest.raises(DataflowError, match="different scopes"):
                inner.join_arranged(arranged)
            return inner.map(lambda rec: rec)

        a.iterate(body)

    def test_non_pair_records_rejected(self):
        df = Dataflow()
        b = df.new_input("b")
        b.arrange()
        with pytest.raises(TypeError, match="key, value"):
            df.step({"b": {42: 1}})


class TestArrangedInLoop:
    def test_bfs_with_arranged_edges(self):
        """Arrangements compose with iterate: arrange the entered edges."""
        df = Dataflow()
        edges = df.new_input("edges")
        roots = df.new_input("roots")

        def body(inner, scope):
            e_arr = scope.enter(edges).arrange("edges.arr")
            r = scope.enter(roots)
            step = inner.join_arranged(
                e_arr, lambda u, dist, v: (v, dist + 1))
            return step.concat(r).min_by_key()

        out = df.capture(roots.iterate(body), "dists")
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0) == {(0, 0): 1, (1, 1): 1, (2, 2): 1}
        df.step({"edges": {(2, 3): 1}})
        assert out.diff_at((1,)) == {(3, 3): 1}
        df.step({"edges": {(1, 2): -1}})
        assert out.value_at_epoch(2) == {(0, 0): 1, (1, 1): 1}
