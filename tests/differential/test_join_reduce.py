"""Join and reduce correctness, including randomized multi-epoch checks
against brute-force recomputation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.differential import Dataflow


def brute_force_join(a, b):
    """Plain multiset equi-join of {(k, v): m} dicts."""
    out = {}
    for (ka, va), ma in a.items():
        for (kb, vb), mb in b.items():
            if ka == kb:
                rec = (ka, (va, vb))
                out[rec] = out.get(rec, 0) + ma * mb
    return {r: m for r, m in out.items() if m}


class TestJoinBasics:
    def test_simple_join(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.join(b), "out")
        df.step({"a": {("x", 1): 1}, "b": {("x", 2): 1, ("y", 3): 1}})
        assert out.value_at_epoch(0) == {("x", (1, 2)): 1}

    def test_join_map_builder(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.join_map(b, lambda k, x, y: x + y), "out")
        df.step({"a": {("k", 10): 1}, "b": {("k", 5): 1}})
        assert out.value_at_epoch(0) == {15: 1}

    def test_multiplicities_multiply(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.join(b), "out")
        df.step({"a": {("k", 1): 2}, "b": {("k", 2): 3}})
        assert out.value_at_epoch(0) == {("k", (1, 2)): 6}

    def test_retraction_joins_negatively(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.join(b), "out")
        df.step({"a": {("k", 1): 1}, "b": {("k", 2): 1}})
        df.step({"a": {("k", 1): -1}})
        assert out.value_at_epoch(1) == {}

    def test_non_pair_record_raises(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        df.capture(a.join(b), "out")
        with pytest.raises(TypeError, match="key, value"):
            df.step({"a": {42: 1}, "b": {}})


class TestJoinRandomized:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_multi_epoch_join_matches_brute_force(self, seed):
        rng = random.Random(seed)
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.join(b), "out")
        state_a, state_b = {}, {}
        for epoch in range(4):
            diff_a, diff_b = {}, {}
            for _ in range(rng.randrange(6)):
                rec = (rng.randrange(3), rng.randrange(3))
                sign = 1 if rng.random() < 0.7 else -1
                if sign < 0 and state_a.get(rec, 0) + diff_a.get(rec, 0) <= 0:
                    continue
                diff_a[rec] = diff_a.get(rec, 0) + sign
            for _ in range(rng.randrange(6)):
                rec = (rng.randrange(3), rng.randrange(3))
                sign = 1 if rng.random() < 0.7 else -1
                if sign < 0 and state_b.get(rec, 0) + diff_b.get(rec, 0) <= 0:
                    continue
                diff_b[rec] = diff_b.get(rec, 0) + sign
            for rec, mult in diff_a.items():
                state_a[rec] = state_a.get(rec, 0) + mult
            for rec, mult in diff_b.items():
                state_b[rec] = state_b.get(rec, 0) + mult
            df.step({"a": diff_a, "b": diff_b})
            expected = brute_force_join(
                {r: m for r, m in state_a.items() if m},
                {r: m for r, m in state_b.items() if m})
            assert out.value_at_epoch(epoch) == expected


class TestReduceFamily:
    def test_min_by_key(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.min_by_key(), "out")
        df.step({"a": {("k", 5): 1, ("k", 3): 1, ("j", 9): 1}})
        assert out.value_at_epoch(0) == {("k", 3): 1, ("j", 9): 1}

    def test_min_updates_on_retraction(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.min_by_key(), "out")
        df.step({"a": {("k", 5): 1, ("k", 3): 1}})
        df.step({"a": {("k", 3): -1}})
        assert out.diff_at((1,)) == {("k", 3): -1, ("k", 5): 1}

    def test_max_by_key(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.max_by_key(), "out")
        df.step({"a": {("k", 5): 1, ("k", 3): 1}})
        assert out.value_at_epoch(0) == {("k", 5): 1}

    def test_count_by_key_tracks_multiplicity(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.count_by_key(), "out")
        df.step({"a": {("k", "x"): 2, ("k", "y"): 1}})
        df.step({"a": {("k", "x"): -1}})
        assert out.value_at_epoch(0) == {("k", 3): 1}
        assert out.value_at_epoch(1) == {("k", 2): 1}

    def test_sum_by_key_weighted(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.sum_by_key(), "out")
        df.step({"a": {("k", 10): 2, ("k", 5): 1}})
        assert out.value_at_epoch(0) == {("k", 25): 1}

    def test_empty_group_emits_nothing(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.min_by_key(), "out")
        df.step({"a": {("k", 1): 1}})
        df.step({"a": {("k", 1): -1}})
        assert out.value_at_epoch(1) == {}

    def test_negative_accumulation_raises(self):
        df = Dataflow()
        a = df.new_input("a")
        df.capture(a.min_by_key(), "out")
        with pytest.raises(ValueError, match="negative multiplicity"):
            df.step({"a": {("k", 1): -1}})

    def test_custom_logic_multiple_outputs(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(
            a.reduce(lambda key, vals: sorted(vals)[:2]), "out")
        df.step({"a": {("k", 3): 1, ("k", 1): 1, ("k", 2): 1}})
        assert out.value_at_epoch(0) == {("k", 1): 1, ("k", 2): 1}


class TestTopKThreshold:
    def test_top_k_keeps_largest(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.top_k(2), "out")
        df.step({"a": {("k", 5): 1, ("k", 9): 1, ("k", 1): 1}})
        assert out.value_at_epoch(0) == {("k", 9): 1, ("k", 5): 1}

    def test_top_k_respects_multiplicity(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.top_k(3), "out")
        df.step({"a": {("k", 7): 2, ("k", 3): 2}})
        assert out.value_at_epoch(0) == {("k", 7): 2, ("k", 3): 1}

    def test_top_k_updates_incrementally(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.top_k(1), "out")
        df.step({"a": {("k", 5): 1}})
        df.step({"a": {("k", 9): 1}})
        df.step({"a": {("k", 9): -1}})
        assert out.value_at_epoch(1) == {("k", 9): 1}
        assert out.value_at_epoch(2) == {("k", 5): 1}

    def test_top_k_validation(self):
        df = Dataflow()
        a = df.new_input("a")
        with pytest.raises(ValueError):
            a.top_k(0)

    def test_threshold_filters_by_multiplicity(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.threshold(2), "out")
        df.step({"a": {("k", "x"): 3, ("k", "y"): 1}})
        assert out.value_at_epoch(0) == {("k", "x"): 1}
        df.step({"a": {("k", "x"): -2}})
        assert out.value_at_epoch(1) == {}


class TestSemijoinAntijoin:
    def test_semijoin_keeps_present_keys(self):
        df = Dataflow()
        a = df.new_input("a")
        keys = df.new_input("keys")
        out = df.capture(a.semijoin(keys), "out")
        df.step({"a": {("k", 1): 1, ("j", 2): 1}, "keys": {"k": 1}})
        assert out.value_at_epoch(0) == {("k", 1): 1}

    def test_semijoin_ignores_key_multiplicity(self):
        df = Dataflow()
        a = df.new_input("a")
        keys = df.new_input("keys")
        out = df.capture(a.semijoin(keys), "out")
        df.step({"a": {("k", 1): 1}, "keys": {"k": 5}})
        assert out.value_at_epoch(0) == {("k", 1): 1}

    def test_antijoin_removes_present_keys(self):
        df = Dataflow()
        a = df.new_input("a")
        keys = df.new_input("keys")
        out = df.capture(a.antijoin(keys), "out")
        df.step({"a": {("k", 1): 1, ("j", 2): 1}, "keys": {"k": 1}})
        assert out.value_at_epoch(0) == {("j", 2): 1}

    def test_antijoin_updates_when_key_arrives(self):
        df = Dataflow()
        a = df.new_input("a")
        keys = df.new_input("keys")
        out = df.capture(a.antijoin(keys), "out")
        df.step({"a": {("k", 1): 1}})
        df.step({"keys": {"k": 1}})
        assert out.value_at_epoch(0) == {("k", 1): 1}
        assert out.value_at_epoch(1) == {}
