"""Randomly generated operator pipelines vs a naive interpreter.

A pipeline of randomly chosen operators (map / filter / concat / negate /
join / reduce variants / distinct / semijoin) is built twice: once on the
differential engine, once as a plain-Python evaluator over the fully
accumulated inputs. Random multi-epoch churn is fed to the engine and the
accumulated outputs are compared at every epoch.

This catches cross-operator interaction bugs that per-operator unit tests
cannot.
"""

from __future__ import annotations

import random

import pytest

from repro.differential import Dataflow


def naive_map(state, fn):
    out = {}
    for rec, mult in state.items():
        new = fn(rec)
        out[new] = out.get(new, 0) + mult
    return {r: m for r, m in out.items() if m}


def naive_filter(state, fn):
    return {r: m for r, m in state.items() if fn(r)}


def naive_concat(a, b):
    out = dict(a)
    for rec, mult in b.items():
        out[rec] = out.get(rec, 0) + mult
    return {r: m for r, m in out.items() if m}


def naive_negate(state):
    return {r: -m for r, m in state.items()}


def naive_join(a, b):
    out = {}
    for (ka, va), ma in a.items():
        for (kb, vb), mb in b.items():
            if ka == kb:
                rec = (ka, (va, vb))
                out[rec] = out.get(rec, 0) + ma * mb
    return {r: m for r, m in out.items() if m}


def naive_reduce(state, logic):
    groups = {}
    for (key, value), mult in state.items():
        groups.setdefault(key, {})
        groups[key][value] = groups[key].get(value, 0) + mult
    out = {}
    for key, values in groups.items():
        values = {v: m for v, m in values.items() if m}
        if not values:
            continue
        for result in logic(key, values):
            rec = (key, result)
            out[rec] = out.get(rec, 0) + 1
    return out


def naive_distinct(state):
    return {r: 1 for r, m in state.items() if m > 0}


# Operator menu: (name, engine builder, naive evaluator). All stages keep
# records in (small-int key, small-int value) shape so stages compose.
def _shift(rec):
    return (rec[0], (rec[1] + 1) % 7)


def _rekey(rec):
    return ((rec[0] + 1) % 3, rec[1])


def _keep_even(rec):
    return rec[1] % 2 == 0


def _pairsum(rec):
    # after join: (k, (va, vb)) -> (k, va+vb mod 7)
    return (rec[0], (rec[1][0] + rec[1][1]) % 7)


MENU = [
    ("map-shift",
     lambda col, aux: col.map(_shift),
     lambda st, aux: naive_map(st, _shift)),
    ("map-rekey",
     lambda col, aux: col.map(_rekey),
     lambda st, aux: naive_map(st, _rekey)),
    ("filter-even",
     lambda col, aux: col.filter(_keep_even),
     lambda st, aux: naive_filter(st, _keep_even)),
    ("concat-aux",
     lambda col, aux: col.concat(aux),
     lambda st, aux: naive_concat(st, aux)),
    ("minus-aux",
     lambda col, aux: col.concat(aux.negate()),
     lambda st, aux: naive_concat(st, naive_negate(aux))),
    ("join-aux",
     lambda col, aux: col.join(aux).map(_pairsum),
     lambda st, aux: naive_map(naive_join(st, aux), _pairsum)),
    ("min",
     lambda col, aux: col.min_by_key(),
     lambda st, aux: naive_reduce(st, lambda k, vs: [min(vs)])),
    ("max",
     lambda col, aux: col.max_by_key(),
     lambda st, aux: naive_reduce(st, lambda k, vs: [max(vs)])),
    ("count",
     lambda col, aux: col.count_by_key(),
     lambda st, aux: naive_reduce(st, lambda k, vs: [sum(vs.values())])),
    ("distinct",
     lambda col, aux: col.distinct(),
     lambda st, aux: naive_distinct(st)),
    ("semijoin-aux",
     lambda col, aux: col.semijoin(aux.map(lambda rec: rec[0])),
     lambda st, aux: {rec: m for rec, m in st.items()
                      if any(o[0] == rec[0] and om > 0
                             for o, om in aux.items())}),
]


def random_churn(rng, state):
    """Mutate a non-negative multiset; return the diff applied."""
    diff = {}
    for _ in range(rng.randrange(1, 7)):
        rec = (rng.randrange(3), rng.randrange(7))
        held = state.get(rec, 0) + diff.get(rec, 0)
        if held > 0 and rng.random() < 0.4:
            diff[rec] = diff.get(rec, 0) - 1
        else:
            diff[rec] = diff.get(rec, 0) + 1
    for rec, mult in diff.items():
        state[rec] = state.get(rec, 0) + mult
        if state[rec] == 0:
            del state[rec]
    return {r: m for r, m in diff.items() if m}


@pytest.mark.parametrize("seed", range(20))
def test_random_pipeline_matches_naive(seed):
    rng = random.Random(seed)
    stage_names = [rng.choice(MENU) for _ in range(rng.randrange(2, 5))]
    # Reduce family emits multiplicity-1 records, so negation-producing
    # stages must not directly feed a reduce that forbids negatives;
    # the engine raises on negative accumulations — retry combos that
    # would legitimately go negative by filtering them out of the naive
    # mirror too (the engine error is itself correct behaviour, so skip).
    df = Dataflow()
    main_in = df.new_input("main")
    aux_in = df.new_input("aux")
    collection = main_in
    for _name, build, _naive in stage_names:
        collection = build(collection, aux_in)
    out = df.capture(collection, "out")

    main_state, aux_state = {}, {}
    for epoch in range(6):
        feed = {"main": random_churn(rng, main_state),
                "aux": random_churn(rng, aux_state)}
        try:
            df.step(feed)
        except ValueError as error:
            # Negative accumulation inside a reduce: legal engine refusal
            # when a negate stage feeds a reduce. Only combos containing a
            # negation stage may trigger it.
            negative_possible = any(
                name.startswith("minus") for name, _b, _n in stage_names)
            assert negative_possible, error
            return
        state = {r: m for r, m in main_state.items() if m}
        aux = {r: m for r, m in aux_state.items() if m}
        for _name, _build, naive in stage_names:
            state = naive(state, aux)
        assert out.value_at_epoch(epoch) == state, \
            (seed, epoch, [n for n, _b, _n in stage_names])
