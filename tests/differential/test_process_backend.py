"""Inline vs process backend equality for the differential engine.

The process backend's contract (docs/parallel.md): byte-identical
``total_work``/``parallel_time`` counters, superstep counts, outputs,
and trace-memory reports versus the inline default, for every operator
mix. These tests drive both backends over joins, arranged joins,
reduces, and iterate scopes — including retractions — plus the executor
and serving layers on top.
"""

import pytest

from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.differential import Dataflow
from repro.differential.debug import operator_record_counts
from repro.errors import ConfigError

WORKERS = 3


def snapshot(df, captures):
    return (
        df.meter.total_work,
        df.meter.parallel_time,
        df.meter.supersteps,
        tuple(tuple(sorted((t, tuple(sorted(d.items())))
                           for t, d in cap.trace.items()))
              for cap in captures),
    )


def run_join_reduce(backend):
    df = Dataflow(workers=WORKERS, backend=backend)
    a = df.new_input("a")
    b = df.new_input("b")
    joined = df.capture(a.join(b), "joined")
    counted = df.capture(
        a.reduce(lambda key, acc: [sum(acc.values())], name="count"),
        "counted")
    try:
        df.step({"a": {(k % 5, k): 1 for k in range(40)},
                 "b": {(k % 5, -k): 1 for k in range(20)}})
        df.step({"a": {(0, 0): -1, (6 % 5, 99): 1},
                 "b": {(1, -1): -1}})
        stats = dict(operator_record_counts(df))
        return snapshot(df, [joined, counted]), stats
    finally:
        df.close()


def run_arranged_iterate(backend):
    df = Dataflow(workers=WORKERS, backend=backend)
    edges = df.new_input("edges")
    labels = df.new_input("labels")
    arranged = edges.arrange_by_key("edges.arr")
    probe = df.capture(labels.join_arranged(arranged), "probe")

    def body(inner, scope):
        e = scope.enter(edges)
        seed = scope.enter(labels)
        return inner.join(
            e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

    out = df.capture(labels.iterate(body), "out")
    path = {}
    n = 24
    for u in range(n - 1):
        path[(u, u + 1)] = 1
    try:
        df.step({"edges": path,
                 "labels": {(v, v): 1 for v in range(n)}})
        # Cut the chain in the middle, then restore it: retractions must
        # cascade identically on both backends.
        df.step({"edges": {(n // 2, n // 2 + 1): -1}})
        df.step({"edges": {(n // 2, n // 2 + 1): 1}})
        stats = dict(operator_record_counts(df))
        return snapshot(df, [probe, out]), stats
    finally:
        df.close()


class TestDataflowEquality:
    def test_join_and_reduce(self):
        assert run_join_reduce("inline") == run_join_reduce("process")

    def test_arranged_join_and_iterate_with_retraction(self):
        assert run_arranged_iterate("inline") == \
            run_arranged_iterate("process")

    def test_trace_memory_reported_from_workers(self):
        _snap, stats = run_join_reduce("process")
        # Keyed traces live on the workers post-fork; the report must
        # still see their records (summed over the cluster).
        assert stats and any(count > 0 for count in stats.values())

    def test_close_is_idempotent_and_cluster_lifecycle(self):
        df = Dataflow(workers=2, backend="process")
        a = df.new_input("a")
        df.capture(a.reduce(lambda k, acc: [len(acc)]), "out")
        assert df.cluster is None  # forked lazily, at the first step
        df.step({"a": {(1, 1): 1, (2, 2): 1}})
        assert df.cluster is not None and df.cluster.alive()
        cluster = df.cluster
        df.close()
        assert df.cluster is None and not cluster.alive()
        df.close()

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ConfigError, match="workers >= 2"):
            Dataflow(workers=1, backend="process")
        with pytest.raises(ConfigError, match="unknown backend"):
            Dataflow(workers=4, backend="threads")


def churn_collection():
    base = {(u, u, u + 1, 1): 1 for u in range(12)}
    return collection_from_diffs("pb-churn", [
        dict(base),
        {(3, 3, 4, 1): -1, (3, 3, 9, 1): 1},
        {(3, 3, 4, 1): 1, (0, 0, 1, 1): -1},
    ])


class TestExecutorEquality:
    @staticmethod
    def run(backend):
        from repro.algorithms import Wcc

        executor = AnalyticsExecutor(workers=WORKERS, backend=backend)
        result = executor.run_on_collection(
            Wcc(), churn_collection(), mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True, cost_metric="work")
        return (result.total_work, result.total_parallel_time,
                [sorted(view.output.items()) for view in result.views],
                result.trace_memory)

    def test_collection_run_identical(self):
        assert self.run("inline") == self.run("process")

    def test_executor_rejects_invalid_backend(self):
        with pytest.raises(ConfigError):
            AnalyticsExecutor(workers=1, backend="process")


class TestServeSessionBackend:
    def test_resident_dataflow_uses_session_backend(self):
        from repro.core.system import Graphsurge
        from repro.graph.property_graph import PropertyGraph
        from repro.serve.session import (
            ServeSession,
            build_request_computation,
            computation_signature,
        )

        signature = computation_signature("wcc", {})

        def build_session(backend):
            gs = Graphsurge(workers=2, backend=backend)
            graph = PropertyGraph("g")
            for v in range(6):
                graph.add_node(v, {})
            for u in range(5):
                graph.add_edge(u, u + 1, {})
            gs.add_graph(graph, "g")
            return ServeSession(system=gs)

        def drain(session):
            for resident in session._residents.values():
                resident.poison()

        session = build_session("process")
        assert session.backend == "process"
        assert session.describe()["backend"] == "process"
        inline = build_session("inline")
        try:
            first = session.run(
                signature, build_request_computation("wcc", {}), "g")
            # A second request reuses the resident (and its live forked
            # cluster) instead of rebuilding it.
            second = session.run(
                signature, build_request_computation("wcc", {}), "g")
            want = inline.run(
                signature, build_request_computation("wcc", {}), "g")
            assert first["views"][0]["output"] == \
                want["views"][0]["output"]
            assert (first["total_work"], first["total_parallel_time"]) == \
                (want["total_work"], want["total_parallel_time"])
            assert second["views"][0]["output"] == \
                first["views"][0]["output"]
        finally:
            drain(session)
            drain(inline)
