"""Iterative scopes: fixed points, retractions, nesting, clamps, errors."""

import pytest

from repro.differential import Dataflow
from repro.differential.operators.iterate import SAFETY_MAX_ITERS
from repro.errors import DataflowError


def bfs_dataflow():
    df = Dataflow()
    edges = df.new_input("edges")
    roots = df.new_input("roots")

    def body(inner, scope):
        e = scope.enter(edges)
        r = scope.enter(roots)
        step = inner.join(e, lambda u, dist, v: (v, dist + 1))
        return step.concat(r).min_by_key()

    return df, df.capture(roots.iterate(body), "dists")


class TestFixedPoint:
    def test_chain_distances(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1, (2, 3): 1},
                 "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0) == {(0, 0): 1, (1, 1): 1,
                                         (2, 2): 1, (3, 3): 1}

    def test_cycle_converges(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 0): 1}, "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0) == {(0, 0): 1, (1, 1): 1}

    def test_diamond_takes_min(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (0, 2): 1, (1, 3): 1, (2, 3): 1,
                           (3, 4): 1},
                 "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0)[(3, 2)] == 1
        assert out.value_at_epoch(0)[(4, 3)] == 1


class TestIncrementalEpochs:
    def test_edge_addition_extends_reach(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1}, "roots": {(0, 0): 1}})
        df.step({"edges": {(1, 2): 1}})
        assert out.diff_at((1,)) == {(2, 2): 1}

    def test_edge_removal_retracts_reach(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        df.step({"edges": {(1, 2): -1}})
        assert out.diff_at((1,)) == {(2, 2): -1}

    def test_shortcut_improves_distance(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1, (2, 3): 1},
                 "roots": {(0, 0): 1}})
        df.step({"edges": {(0, 3): 1}})
        assert out.diff_at((1,)) == {(3, 3): -1, (3, 1): 1}

    def test_shortcut_removal_restores_distance(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1, (2, 3): 1, (0, 3): 1},
                 "roots": {(0, 0): 1}})
        df.step({"edges": {(0, 3): -1}})
        assert out.value_at_epoch(1)[(3, 3)] == 1

    def test_unchanged_epoch_produces_no_diffs(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        work_before = df.meter.total_work
        df.step({})
        assert out.diff_at((1,)) == {}
        # An empty epoch costs (almost) nothing: pure sharing.
        assert df.meter.total_work - work_before == 0

    def test_root_change_reroots_search(self):
        df, out = bfs_dataflow()
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        df.step({"roots": {(0, 0): -1, (1, 0): 1}})
        assert out.value_at_epoch(1) == {(1, 0): 1, (2, 1): 1}


class TestNestedIterate:
    def test_nested_fixed_point_matches_flat(self):
        df = Dataflow()
        edges = df.new_input("edges")
        labels = df.new_input("labels")

        def outer(o_inner, oscope):
            e_outer = oscope.enter(edges)

            def inner(i_inner, iscope):
                e = iscope.enter(e_outer)
                seed = iscope.enter(o_inner)
                return i_inner.join(
                    e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

            return o_inner.iterate(inner)

        out = df.capture(labels.iterate(outer), "out")
        edge_diff = {}
        for u, v in [(0, 1), (1, 2), (3, 4)]:
            edge_diff[(u, v)] = 1
            edge_diff[(v, u)] = 1
        df.step({"edges": edge_diff, "labels": {(v, v): 1 for v in range(5)}})
        assert out.value_at_epoch(0) == {(0, 0): 1, (1, 0): 1, (2, 0): 1,
                                         (3, 3): 1, (4, 3): 1}
        # Incremental union of the components, then undo it.
        df.step({"edges": {(2, 3): 1, (3, 2): 1}})
        assert out.value_at_epoch(1) == {(v, 0): 1 for v in range(5)}
        df.step({"edges": {(2, 3): -1, (3, 2): -1}})
        assert out.value_at_epoch(2) == {(0, 0): 1, (1, 0): 1, (2, 0): 1,
                                         (3, 3): 1, (4, 3): 1}


class TestMaxIters:
    def test_clamp_stops_iteration(self):
        df = Dataflow()
        seed = df.new_input("seed")
        # Diverging body: value grows every iteration, never converges.
        grown = seed.iterate(
            lambda inner, scope: inner.map(lambda rec: (rec[0], rec[1] + 1)),
            max_iters=5)
        out = df.capture(grown, "out")
        df.step({"seed": {("k", 0): 1}})
        assert out.value_at_epoch(0) == {("k", 5): 1}

    def test_safety_cap_raises_without_max_iters(self):
        df = Dataflow()
        seed = df.new_input("seed")
        grown = seed.iterate(
            lambda inner, scope: inner.map(lambda rec: (rec[0], rec[1] + 1)))
        df.capture(grown, "out")
        assert SAFETY_MAX_ITERS > 1000
        # Patch the cap down so the test is fast.
        import repro.differential.operators.iterate as it_mod
        original = it_mod.SAFETY_MAX_ITERS
        it_mod.SAFETY_MAX_ITERS = 50
        try:
            with pytest.raises(DataflowError, match="safety cap"):
                df.step({"seed": {("k", 0): 1}})
        finally:
            it_mod.SAFETY_MAX_ITERS = original


class TestIterateErrors:
    def test_body_must_return_collection(self):
        df = Dataflow()
        seed = df.new_input("seed")
        with pytest.raises(DataflowError, match="must return a Collection"):
            seed.iterate(lambda inner, scope: None)

    def test_body_must_stay_in_scope(self):
        df = Dataflow()
        seed = df.new_input("seed")
        other = df.new_input("other")
        with pytest.raises(DataflowError, match="loop's scope"):
            seed.iterate(lambda inner, scope: other)

    def test_enter_requires_ancestor(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")

        holder = {}

        def body_a(inner, scope):
            holder["scope_a"] = scope
            return inner.map(lambda rec: rec)

        a.iterate(body_a)

        def body_b(inner, scope):
            with pytest.raises(DataflowError, match="ancestor"):
                holder["scope_a"].enter(inner)
            return inner.map(lambda rec: rec)

        b.iterate(body_b)
