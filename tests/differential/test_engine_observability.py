"""Engine observability and arrangement-API surface tests.

Covers the satellites of the hot-path overhaul: the consolidation
invariant checker, per-operator trace record counts (the ``explain``
trace-memory report), the arranged self-join rule, and ``Arrangement``'s
``enter`` / ``semijoin`` helpers.
"""

import random

import pytest

from repro.differential import Dataflow
from repro.differential.debug import (
    check_consolidated,
    operator_record_counts,
    trace_stats,
)
from repro.errors import DataflowError


def _joined_dataflow():
    df = Dataflow()
    a = df.new_input("a")
    b = df.new_input("b")
    arr = b.arrange("b.arr")
    df.capture(a.join_arranged(arr, name="ja"), "out")
    df.step({"a": {("k", 1): 1}, "b": {("k", 2): 1, ("j", 3): 1}})
    return df


class TestCheckConsolidated:
    def test_clean_after_real_run(self):
        df = _joined_dataflow()
        assert check_consolidated(df) == []

    def test_detects_zero_multiplicity(self):
        df = _joined_dataflow()
        arrange_op = next(
            op for ops in df._ops_by_scope.values() for op in ops
            if op.name == "b.arr")
        arrange_op.trace.key_trace("k").entries[(0,)][2] = 0
        problems = check_consolidated(df)
        assert len(problems) == 1
        assert "zero multiplicities" in problems[0]

    def test_detects_empty_diff_slot(self):
        df = _joined_dataflow()
        arrange_op = next(
            op for ops in df._ops_by_scope.values() for op in ops
            if op.name == "b.arr")
        arrange_op.trace.key_trace("k").entries[(5,)] = {}
        problems = check_consolidated(df)
        assert any("empty diff" in p for p in problems)


class TestOperatorRecordCounts:
    def test_shared_arrangement_counted_once(self):
        """Two consumers of one arrangement: its records appear once, at
        the ArrangeOp, and each join reports only its private stream
        side."""
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        c = df.new_input("c")
        arr = b.arrange("b.arr")
        df.capture(a.join_arranged(arr, name="join.a"), "oa")
        df.capture(c.join_arranged(arr, name="join.c"), "oc")
        df.step({"a": {("k", 1): 1},
                 "b": {("k", value): 1 for value in range(50)},
                 "c": {("k", 2): 1, ("j", 9): 1}})
        counts = operator_record_counts(df)
        assert counts["b.arr"] == 50
        assert counts["join.a"] == 1  # a's single record
        assert counts["join.c"] == 2  # c's two records
        # No double counting: the arranged trace shows up nowhere else.
        stats = {s.name: s for s in trace_stats(df)}
        assert stats["b.arr"].entries == 50
        assert stats["join.a"].entries == 1

    def test_matches_trace_stats_totals(self):
        df = _joined_dataflow()
        counts = operator_record_counts(df)
        by_stats = {s.name: s.entries for s in trace_stats(df)}
        for name, entries in by_stats.items():
            assert counts.get(name, 0) == entries


class TestSelfJoinRule:
    def test_arrangement_output_self_join_rejected(self):
        df = Dataflow()
        b = df.new_input("b")
        arr = b.arrange()
        with pytest.raises(DataflowError, match="self-join"):
            arr.as_collection().join_arranged(arr)

    def test_source_against_own_arrangement_is_exact(self):
        """The sanctioned self-join (source vs. its arrangement) matches a
        private-trace self-join under churn."""
        rng = random.Random(7)
        df = Dataflow()
        b = df.new_input("b")
        arr = b.arrange()
        shared = df.capture(
            b.join_arranged(arr, lambda k, x, y: (k, (x, y))), "shared")
        plain = df.capture(b.join(b, lambda k, x, y: (k, (x, y))), "plain")
        state = set()
        for epoch in range(6):
            diff = {}
            for _ in range(rng.randrange(5)):
                rec = (rng.randrange(3), rng.randrange(3))
                if rec in state and rng.random() < 0.4:
                    state.discard(rec)
                    diff[rec] = -1
                elif rec not in state:
                    state.add(rec)
                    diff[rec] = 1
            df.step({"b": diff})
            assert shared.value_at_epoch(epoch) == \
                plain.value_at_epoch(epoch), epoch


class TestArrangementEnter:
    def test_enter_requires_descendant_scope(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        arr = None

        def body_build(inner, scope):
            nonlocal arr
            arr = inner.map(lambda rec: rec).arrange()
            return inner.map(lambda rec: rec)

        a.iterate(body_build)

        def body_other(inner, scope):
            with pytest.raises(DataflowError, match="descendant"):
                arr.enter(scope)
            return inner.map(lambda rec: rec)

        b.iterate(body_other)

    def test_enter_two_levels_deep(self):
        """A root arrangement entered through a nested loop still joins
        correctly (times padded by one zero per level)."""
        df = Dataflow()
        edges = df.new_input("edges")
        roots = df.new_input("roots")
        e_arr = edges.arrange("edges.arr")

        def outer(inner, oscope):
            def inner_body(ivar, iscope):
                e = e_arr.enter(iscope)
                r = iscope.enter(oscope.enter(roots))
                step = ivar.join_arranged(
                    e, lambda u, dist, v: (v, dist + 1))
                return step.concat(r).min_by_key()

            return inner.iterate(inner_body)

        out = df.capture(roots.iterate(outer), "dists")
        df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0) == {(0, 0): 1, (1, 1): 1, (2, 2): 1}
        df.step({"edges": {(1, 2): -1}})
        assert out.value_at_epoch(1) == {(0, 0): 1, (1, 1): 1}


class TestArrangementSemijoin:
    def test_matches_collection_semijoin(self):
        rng = random.Random(11)
        df = Dataflow()
        data = df.new_input("data")
        keys = df.new_input("keys")
        arr = data.arrange()
        shared = df.capture(arr.semijoin(keys, name="sj.shared"), "shared")
        plain = df.capture(data.semijoin(keys, name="sj.plain"), "plain")
        data_state, key_state = set(), set()
        for epoch in range(6):
            data_diff = {}
            for _ in range(rng.randrange(5)):
                rec = (rng.randrange(4), rng.randrange(3))
                if rec in data_state and rng.random() < 0.4:
                    data_state.discard(rec)
                    data_diff[rec] = -1
                elif rec not in data_state:
                    data_state.add(rec)
                    data_diff[rec] = 1
            key_diff = {}
            for _ in range(rng.randrange(3)):
                k = rng.randrange(4)
                if k in key_state and rng.random() < 0.4:
                    key_state.discard(k)
                    key_diff[k] = -1
                elif k not in key_state:
                    key_state.add(k)
                    key_diff[k] = 1
            df.step({"data": data_diff, "keys": key_diff})
            assert shared.value_at_epoch(epoch) == \
                plain.value_at_epoch(epoch), epoch
