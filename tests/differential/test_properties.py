"""Randomized property tests for the engine hot path.

Two families:

* arranged joins must be observationally equivalent to private-trace
  ``JoinOp`` joins — including inside iterate scopes (an arrangement
  built at the root and ``enter``-ed into the loop) and across random
  multi-epoch churn on both inputs;
* :class:`KeyTrace`'s cached accumulation must agree with brute-force
  recomputation under arbitrary interleavings of ``update`` / ``take`` /
  ``compact_below`` / ``accumulate``, with the internal cache invariants
  (``check_cache``) holding after every step.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.differential import Dataflow
from repro.differential.multiset import add_into, consolidate
from repro.differential.timestamp import leq
from repro.differential.trace import KeyTrace


def _random_churn(rng, state, n_keys, n_vals, max_ops):
    """Random insert/delete diff against `state` (a set of records)."""
    diff = {}
    for _ in range(rng.randrange(max_ops)):
        rec = (rng.randrange(n_keys), rng.randrange(n_vals))
        if rec in state and rng.random() < 0.4:
            state.discard(rec)
            diff[rec] = diff.get(rec, 0) - 1
        elif rec not in state:
            state.add(rec)
            diff[rec] = diff.get(rec, 0) + 1
    return consolidate(diff)


class TestArrangedJoinEquivalence:
    """join_arranged ≡ join, at the root and inside iterate scopes."""

    @pytest.mark.parametrize("seed", range(5))
    def test_iterate_twin_loops_match(self, seed):
        """Two BFS-style loops — one over a shared root arrangement
        entered into the scope, one over a private-trace join — must agree
        at every epoch of a random edge/root churn schedule."""
        rng = random.Random(2000 + seed)
        df = Dataflow()
        edges = df.new_input("edges")
        roots = df.new_input("roots")
        e_arr = edges.arrange("edges.arr")

        def body_shared(inner, scope):
            e = e_arr.enter(scope)
            r = scope.enter(roots)
            step = inner.join_arranged(
                e, lambda u, dist, v: (v, dist + 1), name="shared.step")
            return step.concat(r).min_by_key(name="shared.min")

        def body_plain(inner, scope):
            e = scope.enter(edges)
            r = scope.enter(roots)
            step = inner.join(
                e, lambda u, dist, v: (v, dist + 1), name="plain.step")
            return step.concat(r).min_by_key(name="plain.min")

        shared = df.capture(roots.iterate(body_shared, name="shared.loop"),
                            "shared")
        plain = df.capture(roots.iterate(body_plain, name="plain.loop"),
                           "plain")

        n = 10
        edge_state = set()
        root_state = set()
        df.step({"edges": {}, "roots": {(0, 0): 1}})
        root_state.add((0, 0))
        assert shared.value_at_epoch(0) == plain.value_at_epoch(0)
        for epoch in range(1, 8):
            feed = {"edges": _random_churn(rng, edge_state, n, n, 6)}
            if rng.random() < 0.3:
                feed["roots"] = _random_churn(rng, root_state, n, 1, 2)
            df.step(feed)
            assert shared.value_at_epoch(epoch) == \
                plain.value_at_epoch(epoch), (seed, epoch)

    @pytest.mark.parametrize("seed", range(3))
    def test_one_arrangement_two_consumers_match_private_joins(self, seed):
        """One arrangement feeding two stream sides ≡ two private joins."""
        rng = random.Random(3000 + seed)
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        c = df.new_input("c")
        arr = b.arrange()
        sh_a = df.capture(a.join_arranged(arr), "sh_a")
        sh_c = df.capture(c.join_arranged(arr), "sh_c")
        pl_a = df.capture(a.join(b), "pl_a")
        pl_c = df.capture(c.join(b), "pl_c")
        state = {"a": set(), "b": set(), "c": set()}
        for epoch in range(6):
            df.step({name: _random_churn(rng, s, 4, 4, 5)
                     for name, s in state.items()})
            assert sh_a.value_at_epoch(epoch) == pl_a.value_at_epoch(epoch)
            assert sh_c.value_at_epoch(epoch) == pl_c.value_at_epoch(epoch)


# -- KeyTrace model check -----------------------------------------------------


class _BruteTrace:
    """Oracle: same storage discipline as KeyTrace, no cache — every
    accumulation is recomputed from scratch."""

    def __init__(self):
        self.entries = {}
        self.compacted_below = 0

    def update(self, time, diff):
        if time[0] < self.compacted_below:
            self.compacted_below = time[0]
        slot = self.entries.setdefault(time, {})
        add_into(slot, diff)
        if not slot:
            del self.entries[time]

    def take(self, time):
        return self.entries.pop(time, {})

    def compact_below(self, epoch):
        if epoch <= self.compacted_below:
            return
        self.compacted_below = epoch
        merged = {}
        for time, diff in self.entries.items():
            rep = (0,) + time[1:] if time[0] < epoch else time
            add_into(merged.setdefault(rep, {}), diff)
        self.entries = {t: d for t, d in merged.items() if d}

    def accumulate(self, time):
        acc = {}
        for s, diff in self.entries.items():
            if leq(s, time):
                add_into(acc, diff)
        return acc


times2 = st.tuples(st.integers(0, 3), st.integers(0, 3))
_ops = st.one_of(
    st.tuples(st.just("update"), times2, st.integers(0, 2),
              st.integers(-2, 2).filter(bool)),
    st.tuples(st.just("take"), times2),
    st.tuples(st.just("compact"), st.integers(0, 4)),
    st.tuples(st.just("acc"), times2),
)


class TestKeyTraceModelCheck:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_ops, max_size=30))
    def test_cached_accumulation_matches_brute_force(self, ops):
        trace = KeyTrace()
        oracle = _BruteTrace()
        for op in ops:
            if op[0] == "update":
                _, time, rec, mult = op
                trace.update(time, {rec: mult})
                oracle.update(time, {rec: mult})
            elif op[0] == "take":
                assert trace.take(op[1]) == oracle.take(op[1])
            elif op[0] == "compact":
                trace.compact_below(op[1])
                oracle.compact_below(op[1])
            else:
                assert trace.accumulate(op[1]) == oracle.accumulate(op[1])
            trace.check_cache()
            assert trace.entries == oracle.entries
        for probe in [(0, 0), (1, 2), (3, 0), (3, 3)]:
            assert trace.accumulate(probe) == oracle.accumulate(probe)
            assert trace.accumulate_strict(probe) == consolidate(
                add_into(oracle.accumulate(probe),
                         oracle.entries.get(probe, {}), factor=-1))
            trace.check_cache()

    @pytest.mark.parametrize("seed", range(8))
    def test_monotone_query_schedule_with_compaction(self, seed):
        """The engine's actual access pattern: lexicographically increasing
        queries within an epoch, compaction at epoch rollover."""
        rng = random.Random(seed)
        trace = KeyTrace()
        oracle = _BruteTrace()
        for epoch in range(5):
            trace.compact_below(epoch)
            oracle.compact_below(epoch)
            trace.check_cache()
            for it in range(4):
                time = (epoch, it)
                for _ in range(rng.randrange(3)):
                    diff = {rng.randrange(3): rng.choice([-1, 1])}
                    trace.update(time, diff)
                    oracle.update(time, diff)
                assert trace.accumulate(time) == oracle.accumulate(time)
                trace.check_cache()
            assert trace.entries == oracle.entries
