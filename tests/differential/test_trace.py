"""Tests for difference traces, accumulation, compaction, and scheduling."""

from hypothesis import given
from hypothesis import strategies as st

from repro.differential.timestamp import leq, lub_closure
from repro.differential.trace import KeyTrace, TimeSchedule, Trace

times2 = st.tuples(st.integers(0, 4), st.integers(0, 4))
entries = st.lists(
    st.tuples(times2, st.integers(0, 3), st.integers(-3, 3).filter(bool)),
    max_size=14)


class TestKeyTrace:
    def test_accumulate_respects_partial_order(self):
        trace = KeyTrace()
        trace.update((0, 0), {"a": 1})
        trace.update((0, 2), {"b": 1})
        trace.update((1, 1), {"c": 1})
        # (1, 1) sees (0,0) and itself, but not (0,2).
        assert trace.accumulate((1, 1)) == {"a": 1, "c": 1}

    def test_accumulate_strict_excludes_self(self):
        trace = KeyTrace()
        trace.update((0,), {"a": 1})
        trace.update((1,), {"b": 1})
        assert trace.accumulate_strict((1,)) == {"a": 1}

    def test_update_cancellation_removes_slot(self):
        trace = KeyTrace()
        trace.update((0,), {"a": 1})
        trace.update((0,), {"a": -1})
        assert trace.is_empty()

    @given(entries)
    def test_accumulation_identity(self, updates):
        """S_t == Σ_{s<=t} δS_s for every queried t (the core invariant)."""
        trace = KeyTrace()
        for time, record, mult in updates:
            trace.update(time, {record: mult})
        for probe in [(0, 0), (2, 2), (4, 4), (4, 0), (0, 4)]:
            expected = {}
            for time, record, mult in updates:
                if leq(time, probe):
                    expected[record] = expected.get(record, 0) + mult
            expected = {r: m for r, m in expected.items() if m}
            assert trace.accumulate(probe) == expected


class TestCompaction:
    @given(entries, st.integers(1, 5))
    def test_compaction_preserves_future_accumulations(self, updates, epoch):
        trace = KeyTrace()
        compacted = KeyTrace()
        for time, record, mult in updates:
            trace.update(time, {record: mult})
            compacted.update(time, {record: mult})
        compacted.compact_below(epoch)
        # Any probe at or after `epoch` must accumulate identically.
        for probe in [(epoch, 0), (epoch, 4), (epoch + 1, 2), (5, 5)]:
            assert compacted.accumulate(probe) == trace.accumulate(probe)

    def test_compaction_merges_per_suffix(self):
        trace = KeyTrace()
        trace.update((0, 3), {"a": 1})
        trace.update((1, 3), {"a": 2})
        trace.update((2, 3), {"a": -1})
        trace.compact_below(3)
        assert trace.entries == {(0, 3): {"a": 2}}

    def test_compaction_keeps_current_epoch_separate(self):
        trace = KeyTrace()
        trace.update((0, 1), {"a": 1})
        trace.update((2, 1), {"b": 1})
        trace.compact_below(2)
        assert (2, 1) in trace.entries
        assert trace.entries[(0, 1)] == {"a": 1}


class TestTrace:
    def test_unknown_key_accumulates_empty(self):
        trace = Trace()
        assert trace.accumulate("nope", (0,)) == {}

    def test_record_count(self):
        trace = Trace()
        trace.update("k", (0,), {"a": 1, "b": 1})
        trace.update("k", (1,), {"a": -1})
        trace.update("j", (0,), {"c": 1})
        assert trace.record_count() == 4

    def test_maybe_compact_only_past_threshold(self):
        trace = Trace()
        for epoch in range(30):
            trace.update("k", (epoch, 0), {"a": 1})
        trace.maybe_compact("k", 30, threshold=24)
        assert len(trace.get("k").entries) == 1
        assert trace.accumulate("k", (30, 0)) == {"a": 30}


class TestTimeSchedule:
    def test_simple_scheduling(self):
        schedule = TimeSchedule()
        schedule.schedule("k", (0, 1))
        assert schedule.tasks_at((0, 1)) == {"k"}
        assert not schedule.has_pending()

    def test_lub_closure_scheduling(self):
        schedule = TimeSchedule()
        schedule.schedule("k", (0, 5))
        schedule.tasks_at((0, 5))
        # A later diff at an incomparable time must also schedule the join.
        schedule.schedule("k", (1, 2))
        pending = set(schedule.pending_times())
        assert (1, 2) in pending
        assert (1, 5) in pending

    def test_redirty_reschedules_later_joins(self):
        schedule = TimeSchedule()
        schedule.schedule("k", (0, 5))
        schedule.schedule("k", (1, 2))
        for time in list(schedule.pending_times()):
            schedule.tasks_at(time)
        # Re-dirtying (1, 2) must re-enqueue (1, 5) too.
        schedule.schedule("k", (1, 2))
        assert (1, 5) in set(schedule.pending_times())

    @given(st.lists(times2, min_size=1, max_size=6))
    def test_scheduled_times_cover_upward_closure(self, arrival_times):
        """Every closure element >= the last arrival gets a task."""
        schedule = TimeSchedule()
        for time in arrival_times:
            schedule.schedule("k", time)
        closure = lub_closure(arrival_times)
        last = arrival_times[-1]
        pending = set(schedule.pending_times())
        for element in closure:
            if leq(last, element):
                assert element in pending
