"""Randomized end-to-end engine validation.

Drives composed dataflows (join + reduce + iterate) over random graphs and
random multi-epoch churn, checking accumulated outputs against brute-force
recomputation at every epoch. This is the engine's strongest safety net.
"""

import random

import pytest

from repro.differential import Dataflow


def wcc_dataflow():
    df = Dataflow()
    edges = df.new_input("edges")
    labels = df.new_input("labels")

    def body(inner, scope):
        e = scope.enter(edges)
        seed = scope.enter(labels)
        prop = inner.join(e, lambda u, lbl, v: (v, lbl))
        return prop.concat(seed).min_by_key()

    return df, df.capture(labels.iterate(body), "out")


def brute_wcc(edge_set, vertices):
    parent = {v: v for v in vertices}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edge_set:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    low = {}
    for v in vertices:
        r = find(v)
        low[r] = min(low.get(r, v), v)
    return {(v, low[find(v)]): 1 for v in vertices}


@pytest.mark.parametrize("seed", range(6))
def test_wcc_random_churn_matches_union_find(seed):
    rng = random.Random(seed)
    n = 16
    df, out = wcc_dataflow()
    vertices = set(range(n))
    current = set()
    df.step({"edges": {}, "labels": {(v, v): 1 for v in vertices}})
    assert out.value_at_epoch(0) == {(v, v): 1 for v in vertices}
    for epoch in range(1, 9):
        diff = {}
        for _ in range(rng.randrange(1, 6)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if (u, v) in current and rng.random() < 0.5:
                current.discard((u, v))
                diff[(u, v)] = -1
                diff[(v, u)] = -1
            elif (u, v) not in current:
                current.add((u, v))
                diff[(u, v)] = diff.get((u, v), 0) + 1
                diff[(v, u)] = diff.get((v, u), 0) + 1
        df.step({"edges": diff})
        assert out.value_at_epoch(epoch) == brute_wcc(current, vertices), \
            f"epoch {epoch} (seed {seed})"


@pytest.mark.parametrize("seed", range(4))
def test_sssp_random_churn_matches_bellman_ford(seed):
    rng = random.Random(100 + seed)
    n = 14
    df = Dataflow()
    edges = df.new_input("edges")
    roots = df.new_input("roots")

    def body(inner, scope):
        e = scope.enter(edges)
        r = scope.enter(roots)
        msgs = inner.join(e, lambda u, d, vw: (vw[0], d + vw[1]))
        return msgs.concat(r).min_by_key()

    out = df.capture(roots.iterate(body), "out")
    current = {}
    df.step({"edges": {}, "roots": {(0, 0): 1}})
    for epoch in range(1, 8):
        diff = {}
        for _ in range(rng.randrange(1, 5)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if (u, v) in current and rng.random() < 0.4:
                w = current.pop((u, v))
                diff[(u, (v, w))] = -1
            elif (u, v) not in current:
                w = rng.randrange(1, 9)
                current[(u, v)] = w
                diff[(u, (v, w))] = 1
        df.step({"edges": diff})
        # Brute-force Bellman-Ford.
        dist = {0: 0}
        for _ in range(n + 1):
            changed = False
            for (u, v), w in current.items():
                if u in dist and dist[u] + w < dist.get(v, 1 << 60):
                    dist[v] = dist[u] + w
                    changed = True
            if not changed:
                break
        expected = {(v, d): 1 for v, d in dist.items()}
        assert out.value_at_epoch(epoch) == expected, \
            f"epoch {epoch} (seed {seed})"


@pytest.mark.parametrize("seed", range(4))
def test_join_reduce_pipeline_random(seed):
    """Degree counting through join->count: (u,v) edges joined to vertex
    activity, counting active out-neighbours per vertex."""
    rng = random.Random(200 + seed)
    df = Dataflow()
    edges = df.new_input("edges")    # (u, v)
    active = df.new_input("active")  # (v, ())
    flipped = edges.map(lambda rec: (rec[1], rec[0]))
    alive = flipped.join(active, lambda v, u, _m: (u, v))
    out = df.capture(alive.count_by_key(), "out")
    current_edges = set()
    current_active = set()
    for epoch in range(8):
        ediff, adiff = {}, {}
        for _ in range(rng.randrange(4)):
            u, v = rng.randrange(8), rng.randrange(8)
            if u == v:
                continue
            if (u, v) in current_edges:
                current_edges.discard((u, v))
                ediff[(u, v)] = -1
            else:
                current_edges.add((u, v))
                ediff[(u, v)] = 1
        for _ in range(rng.randrange(3)):
            v = rng.randrange(8)
            if v in current_active:
                current_active.discard(v)
                adiff[(v, ())] = -1
            else:
                current_active.add(v)
                adiff[(v, ())] = 1
        df.step({"edges": ediff, "active": adiff})
        expected = {}
        for u, v in current_edges:
            if v in current_active:
                expected[u] = expected.get(u, 0) + 1
        assert out.value_at_epoch(epoch) == {
            (u, c): 1 for u, c in expected.items()}
