"""Engine edge cases and failure injection."""

import pytest

from repro.differential import Dataflow


class TestDegenerateGraphShapes:
    def test_self_loop_bfs(self):
        df = Dataflow()
        edges = df.new_input("edges")
        roots = df.new_input("roots")

        def body(inner, scope):
            e = scope.enter(edges)
            r = scope.enter(roots)
            return inner.join(
                e, lambda u, d, v: (v, d + 1)).concat(r).min_by_key()

        out = df.capture(roots.iterate(body), "out")
        df.step({"edges": {(0, 0): 1, (0, 1): 1}, "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0) == {(0, 0): 1, (1, 1): 1}

    def test_parallel_edges_multiplicity(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.count_by_key(), "out")
        df.step({"a": {("k", "x"): 3}})
        assert out.value_at_epoch(0) == {("k", 3): 1}

    def test_all_records_removed_then_readded(self):
        df = Dataflow()
        a = df.new_input("a")
        out = df.capture(a.min_by_key(), "out")
        diff = {("k", value): 1 for value in range(5)}
        df.step({"a": diff})
        df.step({"a": {rec: -mult for rec, mult in diff.items()}})
        df.step({"a": diff})
        assert out.value_at_epoch(0) == {("k", 0): 1}
        assert out.value_at_epoch(1) == {}
        assert out.value_at_epoch(2) == {("k", 0): 1}

    def test_oscillating_input_across_many_epochs(self):
        df = Dataflow()
        edges = df.new_input("edges")
        labels = df.new_input("labels")

        def body(inner, scope):
            e = scope.enter(edges)
            seed = scope.enter(labels)
            return inner.join(
                e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

        out = df.capture(labels.iterate(body), "out")
        df.step({"edges": {}, "labels": {(0, 0): 1, (1, 1): 1}})
        link = {(0, 1): 1, (1, 0): 1}
        for epoch in range(1, 12):
            sign = 1 if epoch % 2 else -1
            df.step({"edges": {rec: sign * mult
                               for rec, mult in link.items()}})
            expected = {(0, 0): 1, (1, 0 if epoch % 2 else 1): 1}
            assert out.value_at_epoch(epoch) == expected, epoch

    def test_long_chain_deep_iteration(self):
        df = Dataflow()
        edges = df.new_input("edges")
        roots = df.new_input("roots")

        def body(inner, scope):
            e = scope.enter(edges)
            r = scope.enter(roots)
            return inner.join(
                e, lambda u, d, v: (v, d + 1)).concat(r).min_by_key()

        out = df.capture(roots.iterate(body), "out")
        n = 60
        df.step({"edges": {(i, i + 1): 1 for i in range(n)},
                 "roots": {(0, 0): 1}})
        assert out.value_at_epoch(0)[(n, n)] == 1


class TestMalformedUsage:
    def test_map_raising_propagates(self):
        df = Dataflow()
        a = df.new_input("a")
        df.capture(a.map(lambda x: 1 // x), "out")
        with pytest.raises(ZeroDivisionError):
            df.step({"a": {0: 1}})

    def test_reduce_logic_raising_propagates(self):
        df = Dataflow()
        a = df.new_input("a")
        df.capture(a.reduce(lambda key, vals: [min(vals) / 0]), "out")
        with pytest.raises(ZeroDivisionError):
            df.step({"a": {("k", 1): 1}})

    def test_unhashable_record_raises(self):
        df = Dataflow()
        a = df.new_input("a")
        df.capture(a.map(lambda x: [x]), "out")  # lists are unhashable
        with pytest.raises(TypeError):
            df.step({"a": {1: 1}})

    def test_iterate_on_non_keyed_records(self):
        df = Dataflow()
        a = df.new_input("a")
        result = a.iterate(lambda inner, scope: inner.map(lambda rec: rec))
        df.capture(result, "out")
        with pytest.raises(TypeError, match="key, value"):
            df.step({"a": {42: 1}})


class TestMeterDeterminism:
    def test_work_identical_across_runs(self):
        def run():
            df = Dataflow(workers=4)
            edges = df.new_input("edges")
            labels = df.new_input("labels")

            def body(inner, scope):
                e = scope.enter(edges)
                seed = scope.enter(labels)
                return inner.join(
                    e, lambda u, lbl, v: (v, lbl)).concat(seed).min_by_key()

            df.capture(labels.iterate(body), "out")
            diff = {}
            for u, v in [(i, (i * 7 + 1) % 20) for i in range(20)]:
                if u != v:
                    diff[(u, v)] = 1
            df.step({"edges": diff,
                     "labels": {(v, v): 1 for v in range(20)}})
            return df.meter.total_work, df.meter.parallel_time

        assert run() == run()
