"""Linear operators: map, flat_map, filter, concat, negate, distinct."""

import pytest

from repro.differential import Dataflow
from repro.errors import DataflowError


def drive(build, *epochs):
    """Build a one-input dataflow, run epochs, return the capture."""
    df = Dataflow()
    source = df.new_input("in")
    out = df.capture(build(source), "out")
    for diff in epochs:
        df.step({"in": diff})
    return out


class TestMap:
    def test_transforms_records(self):
        out = drive(lambda c: c.map(lambda x: x * 2), {1: 1, 2: 1})
        assert out.value_at_epoch(0) == {2: 1, 4: 1}

    def test_merging_records_sums_multiplicities(self):
        out = drive(lambda c: c.map(lambda x: x % 2), {1: 1, 3: 1, 2: 1})
        assert out.value_at_epoch(0) == {1: 2, 0: 1}

    def test_retraction_flows_through(self):
        out = drive(lambda c: c.map(lambda x: x + 10),
                    {1: 1, 2: 1}, {1: -1})
        assert out.diff_at((1,)) == {11: -1}
        assert out.value_at_epoch(1) == {12: 1}


class TestFlatMap:
    def test_expansion(self):
        out = drive(lambda c: c.flat_map(lambda x: range(x)), {3: 1})
        assert out.value_at_epoch(0) == {0: 1, 1: 1, 2: 1}

    def test_empty_expansion(self):
        out = drive(lambda c: c.flat_map(lambda x: []), {3: 1})
        assert out.value_at_epoch(0) == {}

    def test_multiplicity_scales(self):
        out = drive(lambda c: c.flat_map(lambda x: [x, x + 1]), {5: 2})
        assert out.value_at_epoch(0) == {5: 2, 6: 2}


class TestFilter:
    def test_keeps_matching(self):
        out = drive(lambda c: c.filter(lambda x: x > 2), {1: 1, 3: 1, 5: 1})
        assert out.value_at_epoch(0) == {3: 1, 5: 1}

    def test_retraction_of_filtered_record_is_silent(self):
        out = drive(lambda c: c.filter(lambda x: x > 2),
                    {1: 1, 3: 1}, {1: -1})
        assert out.diff_at((1,)) == {}


class TestConcatNegate:
    def test_concat_unions(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.concat(b), "out")
        df.step({"a": {1: 1}, "b": {1: 1, 2: 1}})
        assert out.value_at_epoch(0) == {1: 2, 2: 1}

    def test_negate_subtracts(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        out = df.capture(a.concat(b.negate()), "out")
        df.step({"a": {1: 1, 2: 1}, "b": {2: 1}})
        assert out.value_at_epoch(0) == {1: 1}

    def test_concat_rejects_cross_scope(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")

        def body(inner, scope):
            with pytest.raises(DataflowError, match="different scopes"):
                inner.concat(b)
            return inner.concat(scope.enter(b)).map(lambda rec: rec)

        result = a.map(lambda x: (x, x)).iterate(
            lambda inner, scope: body(inner, scope))
        df.capture(result, "out")


class TestDistinct:
    def test_collapses_multiplicity(self):
        out = drive(lambda c: c.distinct(), {1: 3, 2: 1})
        assert out.value_at_epoch(0) == {1: 1, 2: 1}

    def test_incremental_updates(self):
        out = drive(lambda c: c.distinct(), {1: 3}, {1: -2}, {1: -1})
        assert out.value_at_epoch(0) == {1: 1}
        assert out.diff_at((1,)) == {}       # 3 -> 1 copies: still present
        assert out.diff_at((2,)) == {1: -1}  # last copy gone


class TestInspect:
    def test_callback_sees_diffs(self):
        seen = []
        out = drive(
            lambda c: c.inspect(lambda t, d: seen.append((t, d))),
            {1: 1}, {1: -1})
        assert seen == [((0,), {1: 1}), ((1,), {1: -1})]
        assert out.value_at_epoch(1) == {}
