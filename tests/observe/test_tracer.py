"""Unit tests for the trace sink, critical-path analysis, and exporters."""

import json

import pytest

from repro.observe import (
    TraceSink,
    UNTRACKED,
    chrome_trace,
    critical_path,
    flame_rollup,
    validate_chrome_trace,
    write_chrome_trace,
)


def sink_with_one_step(workers=2):
    sink = TraceSink(workers)
    sink.enter_operator("op.a", 1, (0,))
    sink.begin_step()
    sink.record(0, 10)
    sink.record(1, 4)
    sink.end_step()
    sink.exit_operator()
    sink.mark()
    return sink


class TestTraceSink:
    def test_step_record_mirrors_meter_frame(self):
        sink = sink_with_one_step()
        assert len(sink.steps) == 1
        step = sink.steps[0]
        assert step.kind == "step"
        assert step.worker_units == {0: 10, 1: 4}
        assert step.units == 14
        assert step.critical_units == 10  # max, like the meter
        assert step.critical_worker == 0
        assert sink.total_units == 14

    def test_serial_work_outside_frames(self):
        sink = TraceSink(4)
        sink.enter_operator("loader", 1, (0,))
        sink.record(2, 7)
        sink.exit_operator()
        assert sink.steps == []  # open until flushed
        sink.mark()
        assert len(sink.steps) == 1
        serial = sink.steps[0]
        assert serial.kind == "serial"
        assert serial.critical_units == 7  # serial work costs its sum
        assert serial.critical_worker is None

    def test_begin_step_flushes_open_serial_stretch(self):
        sink = TraceSink(2)
        sink.enter_operator("input", 1, (0,))
        sink.record(0, 3)
        sink.begin_step()
        sink.record(1, 5)
        sink.end_step()
        sink.exit_operator()
        kinds = [s.kind for s in sink.steps]
        assert kinds == ["serial", "step"]

    def test_empty_steps_are_dropped(self):
        sink = TraceSink(2)
        sink.begin_step()
        sink.end_step()
        sink.mark()
        assert sink.steps == []

    def test_nested_frames_attribute_to_innermost(self):
        sink = TraceSink(2)
        sink.enter_operator("outer", 1, (0,))
        sink.begin_step()
        sink.record(0, 1)
        sink.begin_step()  # nested iterate frame
        sink.record(0, 9)
        sink.end_step()
        sink.record(0, 2)
        sink.end_step()
        sink.exit_operator()
        inner, outer = sink.steps
        assert inner.units == 9
        assert outer.units == 3

    def test_operator_context_stack(self):
        sink = TraceSink(1)
        sink.begin_step()
        sink.enter_operator("a", 1, (0,))
        sink.record(0, 1)
        sink.enter_operator("b", 2, (0, 1))
        sink.record(0, 2)
        sink.exit_operator()
        sink.record(0, 4)
        sink.exit_operator()
        sink.end_step()
        step = sink.steps[0]
        assert step.op_units[("a", (0,), 0)] == 5
        assert step.op_units[("b", (0, 1), 0)] == 2

    def test_untracked_label_when_no_operator_context(self):
        sink = TraceSink(1)
        sink.begin_step()
        sink.record(0, 6)
        sink.end_step()
        spans = list(sink.steps[0].spans())
        assert spans[0].operator == UNTRACKED
        assert spans[0].time is None

    def test_mark_and_window(self):
        sink = TraceSink(1)
        sink.enter_operator("x", 1, (0,))
        start = sink.mark()
        sink.begin_step()
        sink.record(0, 5)
        sink.end_step()
        end = sink.mark()
        sink.begin_step()
        sink.record(0, 3)
        sink.end_step()
        sink.exit_operator()
        window = sink.window(start, end)
        assert [s.units for s in window] == [5]

    def test_spans_carry_epoch(self):
        sink = sink_with_one_step()
        spans = list(sink.spans())
        assert {s.epoch for s in spans} == {0}
        assert sum(s.units for s in spans) == 14


class TestCriticalPath:
    def test_step_contributes_max_serial_contributes_sum(self):
        sink = TraceSink(2)
        sink.enter_operator("load", 1, (0,))
        sink.record(0, 3)
        sink.record(1, 4)  # serial stretch: 7 units
        sink.exit_operator()
        sink.enter_operator("op", 1, (0,))
        sink.begin_step()
        sink.record(0, 10)
        sink.record(1, 6)  # superstep: max = 10
        sink.end_step()
        sink.exit_operator()
        sink.mark()
        report = critical_path(sink.steps, view_name="v")
        assert report.length == 17
        assert report.supersteps == 1
        assert report.serial_units == 7

    def test_only_critical_workers_spans_on_path(self):
        sink = TraceSink(2)
        sink.begin_step()
        sink.enter_operator("hot", 1, (0,))
        sink.record(0, 10)
        sink.exit_operator()
        sink.enter_operator("cold", 1, (0,))
        sink.record(1, 2)
        sink.exit_operator()
        sink.end_step()
        report = critical_path(sink.steps)
        assert [c.operator for c in report.contributors] == ["hot"]
        assert report.length == 10

    def test_tie_breaks_to_lowest_worker_id(self):
        sink = TraceSink(2)
        sink.begin_step()
        sink.enter_operator("a", 1, (0,))
        sink.record(1, 5)
        sink.record(0, 5)
        sink.exit_operator()
        sink.end_step()
        assert sink.steps[0].critical_worker == 0

    def test_contributor_sum_equals_length(self):
        sink = sink_with_one_step()
        report = critical_path(sink.steps)
        assert sum(c.units for c in report.contributors) == report.length

    def test_contributors_sorted_largest_first(self):
        sink = TraceSink(1)
        sink.begin_step()
        sink.enter_operator("small", 1, (0,))
        sink.record(0, 1)
        sink.exit_operator()
        sink.enter_operator("big", 1, (1,))
        sink.record(0, 9)
        sink.exit_operator()
        sink.end_step()
        report = critical_path(sink.steps)
        assert [(c.operator, c.epoch) for c in report.contributors] == \
            [("big", 1), ("small", 0)]

    def test_render_mentions_view_and_share(self):
        sink = sink_with_one_step()
        text = critical_path(sink.steps, view_name="k").render()
        assert "critical path for 'k'" in text
        assert "%" in text


class TestChromeTrace:
    def test_valid_and_counts_complete_events(self):
        sink = sink_with_one_step()
        payload = chrome_trace(sink.steps, workers=2, label="test")
        assert validate_chrome_trace(payload) == 2  # one span per worker
        assert payload["otherData"]["parallel_time_units"] == 10

    def test_round_trips_through_json(self):
        sink = sink_with_one_step()
        payload = json.loads(json.dumps(chrome_trace(sink.steps, workers=2)))
        assert validate_chrome_trace(payload) == 2

    def test_serial_spans_get_their_own_lane(self):
        sink = TraceSink(2)
        sink.enter_operator("load", 1, (0,))
        sink.record(0, 3)
        sink.exit_operator()
        sink.mark()
        payload = chrome_trace(sink.steps, workers=2)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["tid"] == 2  # lane after workers 0..1

    def test_timeline_end_is_parallel_time(self):
        sink = TraceSink(2)
        for units in ((10, 4), (2, 8)):
            sink.begin_step()
            sink.enter_operator("op", 1, (0,))
            sink.record(0, units[0])
            sink.record(1, units[1])
            sink.exit_operator()
            sink.end_step()
        payload = chrome_trace(sink.steps, workers=2)
        assert payload["otherData"]["parallel_time_units"] == 18

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([1, 2])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": 1})
        with pytest.raises(ValueError, match="unsupported ph"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x",
                                  "pid": 1, "tid": 0}]})
        with pytest.raises(ValueError, match="invalid ts"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                                  "tid": 0, "ts": -1, "dur": 0}]})

    def test_write_is_loadable(self, tmp_path):
        sink = sink_with_one_step()
        path = tmp_path / "trace.json"
        write_chrome_trace(sink.steps, path, workers=2)
        assert validate_chrome_trace(json.loads(path.read_text())) == 2


class TestFlameRollup:
    def test_rollup_totals_and_ranking(self):
        sink = TraceSink(1)
        sink.begin_step()
        sink.enter_operator("join", 1, (0,))
        sink.record(0, 30)
        sink.exit_operator()
        sink.enter_operator("map", 1, (0,))
        sink.record(0, 10)
        sink.exit_operator()
        sink.end_step()
        text = flame_rollup(sink.steps)
        assert "40 units across 2 operators" in text
        assert text.index("join") < text.index("map")

    def test_scope_depth_indents_loop_bodies(self):
        sink = TraceSink(1)
        sink.begin_step()
        sink.enter_operator("loop.body", 2, (0, 1))
        sink.record(0, 5)
        sink.exit_operator()
        sink.end_step()
        assert "· loop.body" in flame_rollup(sink.steps)

    def test_top_limits_and_reports_dropped(self):
        sink = TraceSink(1)
        sink.begin_step()
        for i in range(5):
            sink.enter_operator(f"op{i}", 1, (0,))
            sink.record(0, 5 - i)
            sink.exit_operator()
        sink.end_step()
        text = flame_rollup(sink.steps, top=2)
        assert "... 3 more operators" in text
