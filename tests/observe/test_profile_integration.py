"""End-to-end profiling tests: tracing must observe, never perturb.

The load-bearing invariant (PR 2): the metered ``total_work`` and
``parallel_time`` of the fig6/fig10 workloads are byte-identical with
tracing on or off, and each view's critical-path length equals the
meter's ``parallel_time`` delta for that view exactly.
"""

import json

import pytest

from repro.algorithms.bfs import Bfs
from repro.algorithms.wcc import Wcc
from repro.bench.harness import run_modes
from repro.bench.reporting import profile_rows, profiles_to_markdown
from repro.bench.workloads import (
    CSIM_WINDOWS,
    csim_collection,
    default_so_graph,
    scalability_collection,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.observe import TraceSink, validate_chrome_trace


@pytest.fixture(scope="module")
def fig10_collection():
    _graph, collection = scalability_collection(80, 400)
    return collection


@pytest.fixture(scope="module")
def fig6_collection():
    graph = default_so_graph(scale=0.2)
    return csim_collection(graph, CSIM_WINDOWS["2y"], max_views=4)


def run_traced_and_plain(collection, computation_cls, workers,
                         mode=ExecutionMode.DIFF_ONLY):
    plain = AnalyticsExecutor(workers=workers).run_on_collection(
        computation_cls(), collection, mode=mode, cost_metric="work")
    sink = TraceSink(workers)
    traced = AnalyticsExecutor(workers=workers, tracer=sink) \
        .run_on_collection(computation_cls(), collection, mode=mode,
                           cost_metric="work")
    return plain, traced, sink


class TestTracingDoesNotPerturbCounters:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_fig10_counters_identical(self, fig10_collection, workers):
        plain, traced, _sink = run_traced_and_plain(
            fig10_collection, Wcc, workers)
        assert traced.total_work == plain.total_work
        assert traced.total_parallel_time == plain.total_parallel_time
        for before, after in zip(plain.views, traced.views):
            assert after.work == before.work
            assert after.parallel_time == before.parallel_time

    @pytest.mark.parametrize("workers", [1, 4])
    def test_fig6_counters_identical(self, fig6_collection, workers):
        plain, traced, _sink = run_traced_and_plain(
            fig6_collection, Wcc, workers)
        assert traced.total_work == plain.total_work
        assert traced.total_parallel_time == plain.total_parallel_time

    def test_adaptive_mode_counters_identical(self, fig10_collection):
        plain, traced, _sink = run_traced_and_plain(
            fig10_collection, Bfs, 2, mode=ExecutionMode.ADAPTIVE)
        assert traced.total_work == plain.total_work
        assert traced.total_parallel_time == plain.total_parallel_time


class TestCriticalPathEqualsParallelTime:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_per_view_exact_equality(self, fig10_collection, workers):
        _plain, traced, _sink = run_traced_and_plain(
            fig10_collection, Wcc, workers)
        for view in traced.views:
            assert view.profile is not None
            assert view.profile.critical_path.length == view.parallel_time
            assert view.profile.work == view.work

    def test_contributors_sum_to_path_length(self, fig10_collection):
        _plain, traced, _sink = run_traced_and_plain(
            fig10_collection, Wcc, 4)
        for view in traced.views:
            path = view.profile.critical_path
            assert sum(c.units for c in path.contributors) == path.length

    def test_collection_profile_aggregates_views(self, fig10_collection):
        _plain, traced, _sink = run_traced_and_plain(
            fig10_collection, Wcc, 2)
        assert traced.profile is not None
        assert len(traced.profile.views) == len(traced.views)
        slowest = traced.profile.slowest()
        assert slowest.critical_path.length == max(
            v.parallel_time for v in traced.views)

    def test_sink_total_units_equals_total_work(self, fig10_collection):
        _plain, traced, sink = run_traced_and_plain(
            fig10_collection, Wcc, 2)
        assert sink.total_units == traced.total_work


class TestProfileReport:
    def test_facade_profile_and_chrome_trace(self, tmp_path):
        from repro.core.system import Graphsurge

        graph, collection = scalability_collection(60, 300)
        session = Graphsurge(workers=2)
        session.add_graph(graph)
        session.views.add_collection(collection.name, collection)
        trace_path = tmp_path / "trace.json"
        report = session.profile(Wcc(), collection.name,
                                 trace_out=trace_path)
        text = report.render()
        assert "critical path for" in text
        assert "work rollup" in text
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) > 0
        assert payload["otherData"]["parallel_time_units"] > 0

    def test_explain_names_the_slowest_view(self):
        from repro.core.system import Graphsurge

        graph, collection = scalability_collection(60, 300)
        session = Graphsurge(workers=2)
        session.add_graph(graph)
        session.views.add_collection(collection.name, collection)
        report = session.profile(Wcc(), collection.name)
        slowest = report.result.profile.slowest()
        text = session.explain(collection.name, run_result=report.result)
        assert f"slowest view: {slowest.view_name!r}" in text
        assert str(slowest.critical_path.length) in text

    def test_single_view_run_carries_profile(self):
        from repro.core.system import Graphsurge

        graph, _collection = scalability_collection(60, 300)
        session = Graphsurge(workers=2)
        session.add_graph(graph)
        report = session.profile(Wcc(), graph.name)
        assert report.result.profile is not None
        assert report.result.profile.critical_path.length == \
            report.result.parallel_time


class TestBenchIntegration:
    def test_run_modes_trace_attaches_profiles(self, fig10_collection):
        plain = run_modes(Wcc, fig10_collection,
                          modes=(ExecutionMode.DIFF_ONLY,), workers=2)
        traced = run_modes(Wcc, fig10_collection,
                           modes=(ExecutionMode.DIFF_ONLY,), workers=2,
                           trace=True)
        plain_result = plain[ExecutionMode.DIFF_ONLY]
        traced_result = traced[ExecutionMode.DIFF_ONLY]
        assert traced_result.profile is not None
        assert plain_result.profile is None
        assert traced_result.total_work == plain_result.total_work
        assert traced_result.total_parallel_time == \
            plain_result.total_parallel_time

    def test_profile_rows_and_markdown(self, fig10_collection):
        traced = run_modes(Wcc, fig10_collection,
                           modes=(ExecutionMode.DIFF_ONLY,), workers=2,
                           trace=True)
        result = traced[ExecutionMode.DIFF_ONLY]
        rows = profile_rows(result)
        assert len(rows) == len(result.views)
        for row, view in zip(rows, result.views):
            assert row["parallel_time"] == view.parallel_time
            assert row["critical_path"] == view.parallel_time
        markdown = profiles_to_markdown(result, title="fig10")
        assert "### fig10" in markdown
        assert "| critical_path |" in "\n".join(
            markdown.splitlines()[:4]) or "critical_path" in markdown

    def test_to_rows_reports_slowest_view(self, fig10_collection):
        from repro.bench.harness import to_rows

        traced = run_modes(Wcc, fig10_collection,
                           modes=(ExecutionMode.DIFF_ONLY,), workers=2,
                           trace=True)
        rows = to_rows(traced, "exp", "ds", "cfg")
        assert rows[0].extra["slowest_critical_path"] == \
            traced[ExecutionMode.DIFF_ONLY].profile.slowest() \
            .critical_path.length
