"""EBM construction and edge-difference-stream invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diff_stream import (
    accumulate_view,
    compute_diff_stream,
    diff_sizes,
    total_diff_count,
    view_sizes_from_diffs,
)
from repro.core.ebm import (
    build_ebm,
    build_ebm_from_memberships,
)
from repro.gvdl.parser import parse

bool_matrices = st.integers(1, 8).flatmap(
    lambda k: st.lists(
        st.lists(st.booleans(), min_size=k, max_size=k),
        min_size=1, max_size=12))


def ebm_from_rows(rows):
    edges = [(i, i, i + 1, 1) for i in range(len(rows))]
    names = [f"v{j}" for j in range(len(rows[0]))]
    return build_ebm_from_memberships(edges, names, rows)


class TestEbm:
    def test_build_from_predicates(self, call_graph):
        predicates = [
            parse(f"create view v on g edges where duration <= {d}").predicate
            for d in (1, 10, 35)]
        ebm = build_ebm(call_graph, ["d1", "d10", "d35"], predicates)
        assert ebm.num_edges == 15
        assert ebm.num_views == 3
        assert ebm.view_sizes()[2] == 15  # everything satisfies d<=35
        # Columns are monotone: duration<=1 implies duration<=10.
        assert np.all(ebm.matrix[:, 0] <= ebm.matrix[:, 1])

    def test_reorder_permutes_columns(self):
        ebm = ebm_from_rows([[True, False], [False, True]])
        flipped = ebm.reorder([1, 0])
        assert flipped.view_names == ["v1", "v0"]
        assert flipped.matrix[0].tolist() == [False, True]

    def test_reorder_validates_permutation(self):
        ebm = ebm_from_rows([[True, False]])
        with pytest.raises(ValueError, match="invalid column order"):
            ebm.reorder([0, 0])

    def test_mismatched_names_rejected(self, call_graph):
        with pytest.raises(ValueError, match="one predicate per view"):
            build_ebm(call_graph, ["a"], [])

    def test_weight_property(self, call_graph):
        predicate = parse(
            "create view v on g edges where true").predicate
        ebm = build_ebm(call_graph, ["all"], [predicate],
                        weight_property="duration")
        weights = {edge[3] for edge in ebm.edges}
        assert 34 in weights


class TestDiffStream:
    def test_paper_figure_5(self):
        """Figure 5a -> Figure 5b exactly."""
        rows = [
            [1, 0, 0],
            [1, 0, 1],
            [0, 0, 1],
            [0, 1, 1],
            [1, 1, 1],
        ]
        ebm = ebm_from_rows([[bool(x) for x in row] for row in rows])
        diffs = compute_diff_stream(ebm)
        def as_signs(diff):
            return {eid: mult for (eid, _s, _d, _w), mult in diff.items()}
        assert as_signs(diffs[0]) == {0: 1, 1: 1, 4: 1}
        assert as_signs(diffs[1]) == {0: -1, 1: -1, 3: 1}
        assert as_signs(diffs[2]) == {1: 1, 2: 1}

    @settings(max_examples=40, deadline=None)
    @given(bool_matrices)
    def test_accumulation_reconstructs_views(self, rows):
        ebm = ebm_from_rows(rows)
        diffs = compute_diff_stream(ebm)
        for j in range(ebm.num_views):
            view = accumulate_view(diffs, j)
            expected = {ebm.edges[i] for i in range(ebm.num_edges)
                        if rows[i][j]}
            assert set(view) == expected
            assert all(mult == 1 for mult in view.values())

    @settings(max_examples=40, deadline=None)
    @given(bool_matrices)
    def test_view_sizes_match_column_sums(self, rows):
        ebm = ebm_from_rows(rows)
        diffs = compute_diff_stream(ebm)
        assert view_sizes_from_diffs(diffs) == ebm.view_sizes()

    @settings(max_examples=40, deadline=None)
    @given(bool_matrices)
    def test_diff_count_equals_row_alternations(self, rows):
        ebm = ebm_from_rows(rows)
        diffs = compute_diff_stream(ebm)
        expected = 0
        for row in rows:
            previous = False
            for cell in row:
                if cell != previous:
                    expected += 1
                previous = cell
        assert total_diff_count(diffs) == expected

    def test_diff_sizes(self):
        ebm = ebm_from_rows([[True, False, True]])
        assert diff_sizes(compute_diff_stream(ebm)) == [1, 1, 1]

    def test_corrupt_stream_detected(self):
        edge = (0, 0, 1, 1)
        with pytest.raises(ValueError, match="corrupt"):
            accumulate_view([{edge: 1}, {edge: 1}], 1)
