"""Trace-memory observability: executor capture + explain rendering."""

from repro.algorithms import Wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.diagnostics import summarize_collection
from repro.core.view_collection import collection_from_diffs


def chain_collection(num_views=5):
    diffs = []
    for index in range(num_views):
        diffs.append({(index, index, index + 1, 1): 1})
    return collection_from_diffs("chain", diffs)


class TestTraceMemoryCapture:
    def test_collection_run_records_operator_counts(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        assert result.trace_memory is not None
        assert sum(result.trace_memory.values()) > 0
        # The shared edges arrangement is visible as a named operator.
        assert "wcc.edges" in result.trace_memory
        assert result.trace_memory["wcc.edges"] > 0

    def test_explain_renders_trace_memory(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        summary = summarize_collection(collection, run_result=result)
        text = summary.render()
        assert "trace memory" in text
        assert "wcc.edges" in text

    def test_explain_without_run_result_omits_trace_memory(self):
        collection = chain_collection()
        text = summarize_collection(collection).render()
        assert "trace memory" not in text
