"""Collection persistence round trips."""

import pytest

from repro.algorithms import Wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.persistence import load_collection, save_collection
from repro.core.view_collection import ViewCollectionDefinition
from repro.errors import StoreError
from repro.gvdl.parser import parse


@pytest.fixture
def collection(call_graph):
    views = []
    for year in (2013, 2017, 2019):
        predicate = parse(
            f"create view v on g edges where year <= {year}").predicate
        views.append((f"y{year}", predicate))
    definition = ViewCollectionDefinition("hist", "Calls", tuple(views))
    return definition.materialize(call_graph)


class TestRoundTrip:
    def test_metadata_preserved(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        loaded = load_collection(path)
        assert loaded.name == collection.name
        assert loaded.source == collection.source
        assert loaded.view_names == collection.view_names
        assert loaded.view_sizes == collection.view_sizes
        assert loaded.diff_sizes == collection.diff_sizes

    def test_diffs_identical(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        loaded = load_collection(path)
        assert loaded.diffs == collection.diffs

    def test_analytics_on_loaded_collection(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        loaded = load_collection(path)
        original = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        reloaded = AnalyticsExecutor().run_on_collection(
            Wcc(), loaded, mode=ExecutionMode.DIFF_ONLY, keep_outputs=True)
        for left, right in zip(original.views, reloaded.views):
            assert left.output == right.output


class TestFormatV2:
    def test_writes_checksummed_envelope(self, collection, tmp_path):
        import json

        path = tmp_path / "hist.json"
        save_collection(collection, path)
        document = json.loads(path.read_text())
        assert document["format"] == 2
        assert len(document["sha256"]) == 64
        assert document["payload"]["name"] == collection.name

    def test_gzip_round_trip_by_suffix(self, collection, tmp_path):
        path = tmp_path / "hist.json.gz"
        save_collection(collection, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = load_collection(path)
        assert loaded.diffs == collection.diffs

    def test_gzip_round_trip_explicit(self, collection, tmp_path):
        path = tmp_path / "hist.bin"
        save_collection(collection, path, compress=True)
        assert load_collection(path).diffs == collection.diffs

    def test_gzip_smaller_than_plain(self, collection, tmp_path):
        plain = tmp_path / "plain.json"
        packed = tmp_path / "packed.json.gz"
        save_collection(collection, plain)
        save_collection(collection, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_atomic_write_leaves_no_temp_files(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        save_collection(collection, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["hist.json"]

    def test_v1_documents_still_load(self, collection, tmp_path):
        import json

        path = tmp_path / "hist.json"
        save_collection(collection, path)
        payload = json.loads(path.read_text())["payload"]
        legacy = dict(payload, format=1)
        path.write_text(json.dumps(legacy))
        loaded = load_collection(path)
        assert loaded.diffs == collection.diffs
        assert loaded.view_names == collection.view_names


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            load_collection(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StoreError, match="cannot read"):
            load_collection(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "v999.json"
        path.write_text('{"format": 999}')
        with pytest.raises(StoreError, match="unsupported"):
            load_collection(path)

    def test_corrupted_payload_fails_checksum(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        text = path.read_text()
        # Flip a view name inside the payload; the envelope checksum no
        # longer matches.
        path.write_text(text.replace("y2013", "y2031", 1))
        with pytest.raises(StoreError, match="checksum"):
            load_collection(path)

    def test_truncated_file_rejected(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(StoreError, match=str(path)):
            load_collection(path)

    def test_truncated_gzip_rejected(self, collection, tmp_path):
        path = tmp_path / "hist.json.gz"
        save_collection(collection, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(StoreError, match="cannot read"):
            load_collection(path)

    @pytest.mark.parametrize("mutate, hint", [
        (lambda p: p.pop("edges"), "edges"),
        (lambda p: p.pop("diffs"), "diffs"),
        (lambda p: p.pop("name"), "name"),
        (lambda p: p.update(diffs=123), "malformed"),
        (lambda p: p.update(diffs=[[[999999, 1]]]), "malformed"),
        (lambda p: p.update(diffs=[[[0]]]), "malformed"),
        (lambda p: p.update(edges=[[1, 2], 7]), "malformed"),
    ])
    def test_malformed_documents_surface_as_store_error(
            self, collection, tmp_path, mutate, hint):
        import json

        path = tmp_path / "hist.json"
        save_collection(collection, path)
        payload = json.loads(path.read_text())["payload"]
        mutate(payload)
        path.write_text(json.dumps(dict(payload, format=1)))
        with pytest.raises(StoreError) as info:
            load_collection(path)
        assert str(path) in str(info.value)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(StoreError, match="malformed"):
            load_collection(path)

    def test_v2_without_payload_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"format": 2, "sha256": "00"}')
        with pytest.raises(StoreError, match="payload"):
            load_collection(path)


class TestAtomicWrite:
    """The shared atomic-replace helper (temp file + ``os.replace``)."""

    def test_bytes_round_trip(self, tmp_path):
        from repro.core.persistence import atomic_write_bytes

        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_text_round_trip(self, tmp_path):
        from repro.core.persistence import atomic_write_text

        path = tmp_path / "out.txt"
        atomic_write_text(path, "héllo\n")
        assert path.read_text(encoding="utf-8") == "héllo\n"

    def test_overwrites_existing_file(self, tmp_path):
        from repro.core.persistence import atomic_write_text

        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        from repro.core.persistence import atomic_write_text

        atomic_write_text(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_replace_preserves_target(self, tmp_path, monkeypatch):
        """A crash at replace time must leave the old file untouched and
        clean up the temp file — never a torn target."""
        import os as os_module

        import repro.core.persistence as persistence

        path = tmp_path / "out.txt"
        path.write_text("precious")

        def exploding_replace(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            persistence.atomic_write_text(path, "half-writ")
        monkeypatch.setattr(persistence.os, "replace", os_module.replace)
        assert path.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
