"""Collection persistence round trips."""

import pytest

from repro.algorithms import Wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.persistence import load_collection, save_collection
from repro.core.view_collection import ViewCollectionDefinition
from repro.errors import StoreError
from repro.gvdl.parser import parse


@pytest.fixture
def collection(call_graph):
    views = []
    for year in (2013, 2017, 2019):
        predicate = parse(
            f"create view v on g edges where year <= {year}").predicate
        views.append((f"y{year}", predicate))
    definition = ViewCollectionDefinition("hist", "Calls", tuple(views))
    return definition.materialize(call_graph)


class TestRoundTrip:
    def test_metadata_preserved(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        loaded = load_collection(path)
        assert loaded.name == collection.name
        assert loaded.source == collection.source
        assert loaded.view_names == collection.view_names
        assert loaded.view_sizes == collection.view_sizes
        assert loaded.diff_sizes == collection.diff_sizes

    def test_diffs_identical(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        loaded = load_collection(path)
        assert loaded.diffs == collection.diffs

    def test_analytics_on_loaded_collection(self, collection, tmp_path):
        path = tmp_path / "hist.json"
        save_collection(collection, path)
        loaded = load_collection(path)
        original = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        reloaded = AnalyticsExecutor().run_on_collection(
            Wcc(), loaded, mode=ExecutionMode.DIFF_ONLY, keep_outputs=True)
        for left, right in zip(original.views, reloaded.views):
            assert left.output == right.output


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            load_collection(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StoreError, match="cannot read"):
            load_collection(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "v999.json"
        path.write_text('{"format": 999}')
        with pytest.raises(StoreError, match="unsupported"):
            load_collection(path)
