"""Collection ordering: objectives, Theorem 4.1's reduction identity,
Christofides, and the Algorithm 1 optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering.christofides import (
    christofides_tour,
    prim_mst,
    tour_length,
)
from repro.core.ordering.hamming import hamming_distance_matrix
from repro.core.ordering.optimizer import order_collection
from repro.core.ordering.problem import (
    consecutive_blocks,
    diff_count_for_order,
    exact_best_order,
    random_order,
)
from repro.errors import OrderingError

small_matrices = st.integers(2, 5).flatmap(
    lambda k: st.lists(
        st.lists(st.booleans(), min_size=k, max_size=k),
        min_size=1, max_size=10)).map(lambda rows: np.array(rows, dtype=bool))


class TestObjectives:
    def test_diff_count_example(self):
        # Row (1,1,1,0): first appearance + one disappearance = 2 diffs.
        assert diff_count_for_order(np.array([[1, 1, 1, 0]])) == 2

    def test_consecutive_blocks_example(self):
        assert consecutive_blocks(np.array([[1, 1, 1, 0]])) == 1
        assert consecutive_blocks(np.array([[1, 0, 1, 0]])) == 2

    def test_order_changes_objective(self):
        matrix = np.array([[1, 0, 1], [1, 0, 1]])
        # Row (1,0,1): appear, disappear, appear = 3 diffs.
        assert diff_count_for_order(matrix, [0, 1, 2]) == 6
        # Row (1,1,0): appear, disappear = 2 diffs.
        assert diff_count_for_order(matrix, [0, 2, 1]) == 4

    @settings(max_examples=40, deadline=None)
    @given(small_matrices)
    def test_cb_bounds_diffs(self, matrix):
        """From the proof: cb <= ds <= 2*cb for every ordering."""
        cb = consecutive_blocks(matrix)
        ds = diff_count_for_order(matrix)
        assert cb <= ds <= 2 * cb

    @settings(max_examples=30, deadline=None)
    @given(small_matrices)
    def test_theorem_4_1_identity_corrected(self, matrix):
        """The Theorem 4.1 reduction, with a corrected per-row account.

        Stacking B over its complement, a mixed row r contributes
        ``diffs(r) + diffs(r^C)``. Writing f/l for r's first/last cell:
        ``diffs(r) = 2·cb(r) − 1 + [l==0]`` and (since the complement has
        ``cb(r) − 1 + [f==0] + [l==0]`` one-blocks)
        ``diffs(r^C) = 2·(cb(r) − 1 + [f==0] + [l==0]) − [l==0]``,
        so the pair yields ``4·cb(r) − 3 + 2·[f==0] + 2·[l==0]``.

        The paper simplifies this to ``4·cb(r) − 1``, which assumes exactly
        one of f/l is 0 — rows like (0,1,0) violate it. The corrected
        identity below holds for every matrix and ordering (property-
        checked), and still ties ds to cb row-wise, which is what the
        NP-hardness argument needs.
        """
        doubled = np.vstack([matrix, ~matrix])
        row_sums = matrix.sum(axis=1)
        k = matrix.shape[1]
        m0 = int((row_sums == 0).sum())
        m1 = int((row_sums == k).sum())
        for seed in range(3):
            sigma = random_order(k, seed)
            expected = m0 + m1  # all-0 rows: r^C costs 1; all-1: r costs 1
            for row in matrix[(row_sums > 0) & (row_sums < k)]:
                permuted = row[list(sigma)]
                cb = consecutive_blocks(permuted[None, :])
                first_zero = 1 if not permuted[0] else 0
                last_zero = 1 if not permuted[-1] else 0
                expected += 4 * cb - 3 + 2 * first_zero + 2 * last_zero
            assert diff_count_for_order(doubled, sigma) == expected


class TestExactAndRandom:
    def test_exact_finds_optimum(self):
        matrix = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        best = exact_best_order(matrix)
        best_cost = diff_count_for_order(matrix, best)
        from itertools import permutations
        for perm in permutations(range(3)):
            assert best_cost <= diff_count_for_order(matrix, perm)

    def test_exact_refuses_large_k(self):
        with pytest.raises(ValueError, match="factorial"):
            exact_best_order(np.zeros((2, 12), dtype=bool))

    def test_random_order_deterministic_in_seed(self):
        assert random_order(8, 3) == random_order(8, 3)
        assert sorted(random_order(8, 3)) == list(range(8))


class TestHamming:
    def test_padded_matrix_shape_and_values(self):
        matrix = np.array([[1, 0], [1, 1]], dtype=bool)
        distances = hamming_distance_matrix(matrix)
        assert distances.shape == (3, 3)
        # Column 0 is the zero padding: distance to view j = |view j|.
        assert distances[0, 1] == 2
        assert distances[0, 2] == 1
        assert distances[1, 2] == 1
        assert np.all(distances == distances.T)
        assert np.all(np.diag(distances) == 0)

    def test_worker_sharding_is_exact(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((40, 5)) < 0.5
        assert np.array_equal(hamming_distance_matrix(matrix, workers=1),
                              hamming_distance_matrix(matrix, workers=7))

    @settings(max_examples=25, deadline=None)
    @given(small_matrices)
    def test_triangle_inequality(self, matrix):
        """Hamming distances are a metric — the Christofides requirement."""
        distances = hamming_distance_matrix(matrix)
        n = distances.shape[0]
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    assert distances[a, c] <= distances[a, b] + distances[b, c]


class TestChristofides:
    def test_tour_is_hamiltonian(self):
        rng = np.random.default_rng(1)
        points = rng.random((9, 2))
        weights = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        tour = christofides_tour(weights)
        assert sorted(tour) == list(range(9))

    def test_known_square(self):
        # Unit square: optimal tour length 4.
        weights = np.array([
            [0, 1, 2 ** 0.5, 1],
            [1, 0, 1, 2 ** 0.5],
            [2 ** 0.5, 1, 0, 1],
            [1, 2 ** 0.5, 1, 0]])
        tour = christofides_tour(weights)
        assert tour_length(weights, tour) == pytest.approx(4.0)

    def test_tiny_inputs(self):
        assert christofides_tour(np.zeros((0, 0))) == []
        assert christofides_tour(np.zeros((1, 1))) == [0]
        assert christofides_tour(np.zeros((2, 2))) == [0, 1]

    def test_non_square_rejected(self):
        with pytest.raises(OrderingError):
            christofides_tour(np.zeros((2, 3)))

    def test_prim_mst_weight(self):
        weights = np.array([
            [0, 1, 4],
            [1, 0, 2],
            [4, 2, 0]], dtype=float)
        mst = prim_mst(weights)
        total = sum(weights[u, v] for u, v in mst)
        assert total == 3
        assert len(mst) == 2

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 9), st.integers(0, 1000))
    def test_approximation_ratio_on_metrics(self, n, seed):
        """Christofides <= 1.5 x optimal on random metric instances."""
        rng = np.random.default_rng(seed)
        points = rng.random((n, 2))
        weights = np.linalg.norm(points[:, None] - points[None, :], axis=2)
        tour = christofides_tour(weights)
        from itertools import permutations
        best = min(
            tour_length(weights, [0, *perm])
            for perm in permutations(range(1, n)))
        assert tour_length(weights, tour) <= 1.5 * best + 1e-9


class TestOptimizer:
    def test_christofides_never_worse_than_3x_exact(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            matrix = rng.random((30, 6)) < 0.4
            result = order_collection(matrix, method="christofides")
            exact = order_collection(matrix, method="exact")
            assert result.diff_count <= 3 * max(1, exact.diff_count)

    def test_identity_and_random_methods(self):
        matrix = np.random.default_rng(0).random((10, 4)) < 0.5
        identity = order_collection(matrix, method="identity")
        assert identity.order == [0, 1, 2, 3]
        shuffled = order_collection(matrix, method="random", seed=5)
        assert sorted(shuffled.order) == [0, 1, 2, 3]

    def test_greedy_beats_worst_random_usually(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((60, 7)) < 0.5
        greedy = order_collection(matrix, method="greedy")
        worst_random = max(
            order_collection(matrix, method="random", seed=s).diff_count
            for s in range(5))
        assert greedy.diff_count <= worst_random

    def test_improvement_metric(self):
        matrix = np.array([[1, 0, 1]] * 10)
        result = order_collection(matrix, method="exact")
        assert result.identity_diff_count == 30
        assert result.diff_count == 10
        assert result.improvement == pytest.approx(3.0)

    def test_unknown_method(self):
        with pytest.raises(OrderingError, match="unknown ordering"):
            order_collection(np.zeros((1, 2), dtype=bool), method="magic")

    def test_nested_clustered_views_recovered(self):
        """Views forming an inclusion chain must be ordered as the chain
        (possibly reversed) by the optimizer."""
        rng = np.random.default_rng(11)
        base = rng.random(80) < 0.9
        chain = []
        current = base.copy()
        for _ in range(5):
            current = current & (rng.random(80) < 0.75)
            chain.append(current.copy())
        matrix = np.stack(chain, axis=1)
        shuffled_cols = [3, 0, 4, 1, 2]
        shuffled = matrix[:, shuffled_cols]
        result = order_collection(shuffled, method="christofides")
        recovered = [shuffled_cols[j] for j in result.order]
        assert recovered in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])
