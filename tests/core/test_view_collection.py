"""ViewCollectionDefinition materialization and MaterializedCollection."""

import pytest

from repro.core.view_collection import (
    ViewCollectionDefinition,
    collection_from_diffs,
)
from repro.gvdl.parser import parse


def year_views(*bounds):
    views = []
    for bound in bounds:
        predicate = parse(
            f"create view v on g edges where year <= {bound}").predicate
        views.append((f"y{bound}", predicate))
    return tuple(views)


class TestMaterialization:
    def test_pipeline_identity_order(self, call_graph):
        definition = ViewCollectionDefinition(
            "hist", "Calls", year_views(2013, 2017, 2019))
        collection = definition.materialize(call_graph)
        assert collection.view_names == ["y2013", "y2017", "y2019"]
        assert collection.view_sizes[-1] == 15
        assert collection.diff_sizes[0] == collection.view_sizes[0]
        assert collection.creation_seconds >= 0
        assert collection.ordering is None

    def test_pipeline_with_ordering(self, call_graph):
        definition = ViewCollectionDefinition(
            "hist", "Calls", year_views(2019, 2013, 2017))
        collection = definition.materialize(call_graph,
                                            order_method="christofides")
        assert collection.ordering is not None
        # The optimizer recovers the inclusion chain (either direction).
        sizes = collection.view_sizes
        assert sizes == sorted(sizes) or sizes == sorted(sizes, reverse=True)
        assert collection.total_diffs <= 15 + 2  # near-minimal for a chain

    def test_weight_property_flows_to_edges(self, call_graph):
        definition = ViewCollectionDefinition(
            "hist", "Calls", year_views(2019))
        collection = definition.materialize(call_graph,
                                            weight_property="duration")
        weights = {w for (_e, _s, _d, w) in collection.diffs[0]}
        assert 34 in weights

    def test_input_diff_for_view(self, call_graph):
        definition = ViewCollectionDefinition(
            "hist", "Calls", year_views(2013, 2019))
        collection = definition.materialize(call_graph)
        diff = collection.input_diff_for_view(0)
        assert all(mult == 1 for mult in diff.values())
        undirected = collection.input_diff_for_view(0, directed=False)
        assert len(undirected) >= len(diff)


class TestCollectionFromDiffs:
    def test_basic(self):
        edge = (0, 1, 2, 1)
        collection = collection_from_diffs(
            "c", [{edge: 1}, {edge: -1}], view_names=["on", "off"])
        assert collection.view_sizes == [1, 0]
        assert collection.diff_sizes == [1, 1]
        assert collection.total_diffs == 2
        assert collection.full_view_edges(1) == {}

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError, match="one name per"):
            collection_from_diffs("c", [{}], view_names=["a", "b"])

    def test_default_names(self):
        collection = collection_from_diffs("c", [{}, {}])
        assert collection.view_names == ["view-0", "view-1"]
