"""Adaptive splitting: cost models and the per-batch decision policy."""

import pytest

from repro.core.splitting.model import LinearCostModel
from repro.core.splitting.optimizer import AdaptiveSplitter, SplitDecision


class TestLinearCostModel:
    def test_no_data_predicts_none(self):
        assert LinearCostModel().predict(10) is None

    def test_single_point_is_proportional(self):
        model = LinearCostModel()
        model.observe(100, 50)
        assert model.predict(200) == pytest.approx(100)

    def test_single_point_zero_size(self):
        model = LinearCostModel()
        model.observe(0, 7)
        assert model.predict(100) == pytest.approx(7)

    def test_two_points_exact_line(self):
        model = LinearCostModel()
        model.observe(10, 25)   # y = 2x + 5
        model.observe(20, 45)
        assert model.predict(30) == pytest.approx(65)
        a, b = model.coefficients()
        assert a == pytest.approx(2)
        assert b == pytest.approx(5)

    def test_identical_sizes_fall_back_to_mean(self):
        model = LinearCostModel()
        model.observe(10, 4)
        model.observe(10, 6)
        assert model.predict(10) == pytest.approx(5)

    def test_least_squares_over_noise(self):
        model = LinearCostModel()
        for x in range(1, 20):
            model.observe(x, 3 * x + (1 if x % 2 else -1))
        assert model.predict(100) == pytest.approx(300, rel=0.05)

    def test_prediction_clamped_nonnegative(self):
        model = LinearCostModel()
        model.observe(10, 1)  # extrapolating down goes negative
        model.observe(20, 11)
        assert model.predict(0) == 0.0


class TestAdaptiveSplitter:
    def test_first_two_views_fixed_protocol(self):
        splitter = AdaptiveSplitter()
        assert splitter.decide(0, 100, 100) is SplitDecision.SCRATCH
        assert splitter.decide(1, 100, 10) is SplitDecision.DIFFERENTIAL

    def test_prefers_cheaper_estimate(self):
        splitter = AdaptiveSplitter(batch_size=1)
        splitter.decide(0, 100, 100)
        splitter.observe_scratch(100, 100.0)    # scratch: 1.0 per edge
        splitter.decide(1, 100, 10)
        splitter.observe_differential(10, 1.0)  # diff: 0.1 per diff
        # View with small diff: differential is cheaper.
        assert splitter.decide(2, 100, 5) is SplitDecision.DIFFERENTIAL
        splitter.observe_differential(5, 0.5)
        # View with a huge diff: scratch is cheaper.
        assert splitter.decide(3, 100, 5000) is SplitDecision.SCRATCH

    def test_batch_locks_decision(self):
        splitter = AdaptiveSplitter(batch_size=5)
        splitter.decide(0, 100, 100)
        splitter.observe_scratch(100, 100.0)
        splitter.decide(1, 100, 10)
        splitter.observe_differential(10, 1.0)
        first = splitter.decide(2, 100, 5)
        assert first is SplitDecision.DIFFERENTIAL
        # Even a view that would individually prefer scratch stays in batch.
        for index in range(3, 7):
            assert splitter.decide(index, 100, 10**6) is first
        # Batch exhausted: next decision is fresh.
        assert splitter.decide(7, 100, 10**6) is SplitDecision.SCRATCH

    def test_split_points_recorded(self):
        splitter = AdaptiveSplitter(batch_size=1)
        splitter.decide(0, 100, 100)
        splitter.observe_scratch(100, 1.0)     # scratch very cheap
        splitter.decide(1, 100, 100)
        splitter.observe_differential(100, 50.0)
        assert splitter.decide(2, 100, 100) is SplitDecision.SCRATCH
        assert 2 in splitter.split_points()
        assert 0 not in splitter.split_points()

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            AdaptiveSplitter(batch_size=0)

    def test_history_audit_records(self):
        splitter = AdaptiveSplitter(batch_size=1)
        for index in range(4):
            splitter.decide(index, 10, 10)
            splitter.observe_scratch(10, 1.0)
        assert [rec.view_index for rec in splitter.history] == [0, 1, 2, 3]
