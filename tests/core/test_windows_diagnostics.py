"""Window builders and collection diagnostics."""

import pytest

from repro.core.diagnostics import summarize_collection
from repro.core.windows import (
    cumulative_windows,
    expand_shrink_slide,
    product_windows,
    sliding_windows,
)
from repro.datasets import citations_like
from repro.errors import ConfigError, GraphsurgeError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema


@pytest.fixture(scope="module")
def year_graph():
    graph = PropertyGraph(
        "g", node_schema=Schema(),
        edge_schema=Schema({"year": PropertyType.INT}))
    for node in range(12):
        graph.add_node(node)
    for year in range(2000, 2012):
        graph.add_edge(year - 2000, (year - 1999) % 12, {"year": year})
    return graph


class TestCumulativeWindows:
    def test_inclusion_chain(self, year_graph):
        definition = cumulative_windows("c", "g", "year",
                                        bounds=[2004, 2008, 2012])
        collection = definition.materialize(year_graph)
        assert collection.view_sizes == [4, 8, 12]
        for diff in collection.diffs:
            assert all(mult == 1 for mult in diff.values())

    def test_requires_bounds(self):
        with pytest.raises(GraphsurgeError):
            cumulative_windows("c", "g", "year", bounds=[])

    def test_empty_bounds_raise_config_error_naming_builder(self):
        # Regression: an empty bounds iterable (easy to produce from a
        # mis-ranged `range(...)`) must surface as a ConfigError whose
        # message says *which* builder was misconfigured, not a generic
        # engine error.
        with pytest.raises(ConfigError, match="cumulative_windows"):
            cumulative_windows("c", "g", "year", bounds=range(2020, 2010))


class TestSlidingWindows:
    def test_tumbling_disjoint(self, year_graph):
        definition = sliding_windows("s", "g", "year", start=2000,
                                     width=4, slide=4, count=3)
        collection = definition.materialize(year_graph)
        assert collection.view_sizes == [4, 4, 4]
        previous = set()
        for index in range(3):
            view = set(collection.full_view_edges(index))
            assert not (view & previous)
            previous = view

    def test_overlapping(self, year_graph):
        definition = sliding_windows("s", "g", "year", start=2000,
                                     width=6, slide=2, count=3)
        collection = definition.materialize(year_graph)
        assert collection.view_sizes == [6, 6, 6]
        first = set(collection.full_view_edges(0))
        second = set(collection.full_view_edges(1))
        assert len(first & second) == 4

    def test_validation(self):
        with pytest.raises(GraphsurgeError):
            sliding_windows("s", "g", "year", start=0, width=0, slide=1,
                            count=1)

    def test_validation_names_builder(self):
        with pytest.raises(ConfigError, match="sliding_windows"):
            sliding_windows("s", "g", "year", start=0, width=4, slide=4,
                            count=0)


class TestExpandShrinkSlide:
    def test_phases(self, year_graph):
        definition = expand_shrink_slide(
            "e", "g", "year",
            phases=[(2000, 2004), (2000, 2008), (2004, 2008)])
        collection = definition.materialize(year_graph)
        assert collection.view_sizes == [4, 8, 4]

    def test_empty_window_rejected(self):
        with pytest.raises(GraphsurgeError, match="empty window"):
            expand_shrink_slide("e", "g", "year", phases=[(5, 5)])

    def test_empty_phases_raise_config_error_naming_builder(self):
        with pytest.raises(ConfigError, match="expand_shrink_slide"):
            expand_shrink_slide("e", "g", "year", phases=[])


class TestProductWindows:
    def test_caut_shape(self):
        graph = citations_like(num_nodes=150, num_edges=500, seed=1)
        definition = product_windows(
            "p", "citations",
            outer_prop="year", outer_phases=[(1990, 2000), (2000, 2010)],
            inner_prop="authors", inner_bounds=[5, 10, 30])
        collection = definition.materialize(graph)
        assert collection.num_views == 6
        # Inner expansion within a phase: addition-only diffs.
        for index in (1, 2, 4, 5):
            assert all(m == 1 for m in collection.diffs[index].values())

    def test_inner_bounds_generator_is_reused_per_phase(self):
        # Regression: a generator passed as inner_bounds was exhausted on
        # the first outer phase, silently dropping every later phase's
        # views.
        definition = product_windows(
            "p", "citations",
            outer_prop="year", outer_phases=[(1990, 2000), (2000, 2010)],
            inner_prop="authors", inner_bounds=iter([5, 10, 30]))
        assert len(definition.views) == 6

    def test_empty_product_raises_config_error_naming_builder(self):
        with pytest.raises(ConfigError, match="product_windows"):
            product_windows("p", "citations",
                            outer_prop="year", outer_phases=[],
                            inner_prop="authors", inner_bounds=[5])


class TestDiagnostics:
    def test_summary_of_chain(self, year_graph):
        collection = cumulative_windows(
            "c", "g", "year", bounds=[2004, 2008, 2012]
        ).materialize(year_graph)
        summary = summarize_collection(collection)
        assert summary.num_views == 3
        assert summary.mean_churn == pytest.approx((4 / 8 + 4 / 12) / 2)
        assert summary.min_jaccard == pytest.approx(4 / 8)
        assert summary.likely_split_points() == []
        assert "diff-only execution" in summary.render()

    def test_summary_flags_disjoint_views(self, year_graph):
        collection = sliding_windows(
            "s", "g", "year", start=2000, width=4, slide=4, count=3
        ).materialize(year_graph)
        summary = summarize_collection(collection)
        assert summary.min_jaccard == 0.0
        assert summary.likely_split_points() == [1, 2]
        assert "split points" in summary.render()

    def test_explain_via_facade(self, year_graph):
        from repro import Graphsurge

        gs = Graphsurge()
        gs.add_graph(year_graph)
        gs.execute("create view collection c on g "
                   "[a: year < 2004], [b: year < 2012]")
        text = gs.explain("c")
        assert "collection c" in text
        assert "2 views" in text
