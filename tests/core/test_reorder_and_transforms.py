"""reorder_collection, graph transforms, and dataset statistics."""

import pytest

from repro.core.view_collection import reorder_collection
from repro.bench.workloads import perturbation_collection
from repro.datasets import community_graph, social_like
from repro.datasets.stats import (
    degree_histogram,
    describe,
    gini_coefficient,
    powerlaw_alpha_mle,
    reciprocity,
)
from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph
from repro.graph.transforms import (
    filter_nodes,
    induced_subgraph,
    merge_graphs,
    relabel,
    reverse,
)


class TestReorderCollection:
    def test_reordering_reduces_diffs(self):
        graph = community_graph(num_nodes=80, num_communities=6,
                                intra_edges=300, background_edges=50,
                                seed=2)
        shuffled = perturbation_collection(graph, 5, 2,
                                           order_method="random", seed=3)
        reordered = reorder_collection(shuffled, "christofides")
        assert reordered.total_diffs < shuffled.total_diffs
        assert sorted(reordered.view_names) == sorted(shuffled.view_names)

    def test_views_preserved_under_reordering(self):
        graph = community_graph(num_nodes=50, num_communities=4,
                                intra_edges=150, background_edges=20,
                                seed=4)
        original = perturbation_collection(graph, 4, 2,
                                           order_method="random", seed=1)
        reordered = reorder_collection(original, "christofides")
        # Same set of views (as edge sets), possibly in another order.
        original_views = {
            original.view_names[i]: frozenset(original.full_view_edges(i))
            for i in range(original.num_views)}
        for index, name in enumerate(reordered.view_names):
            assert frozenset(reordered.full_view_edges(index)) == \
                original_views[name]


class TestTransforms:
    @pytest.fixture
    def small(self):
        graph = PropertyGraph("g")
        for node in range(4):
            graph.add_node(node)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        graph.add_edge(2, 3)
        return graph

    def test_reverse(self, small):
        rev = reverse(small)
        assert {(e.src, e.dst) for e in rev.edges} == \
            {(1, 0), (2, 1), (0, 2), (3, 2)}

    def test_induced_subgraph(self, small):
        sub = induced_subgraph(small, [0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_induced_subgraph_unknown_node(self, small):
        with pytest.raises(SchemaError, match="unknown node"):
            induced_subgraph(small, [0, 99])

    def test_filter_nodes(self, call_graph):
        la_only = filter_nodes(call_graph,
                               lambda props: props["city"] == "LA")
        assert la_only.num_nodes == 5
        for edge in la_only.edges:
            assert la_only.node_property(edge.src, "city") == "LA"

    def test_relabel_dense(self, small):
        relabeled = relabel(induced_subgraph(small, [1, 2, 3]))
        assert sorted(relabeled.nodes) == [0, 1, 2]
        assert relabeled.num_edges == 2

    def test_relabel_validation(self, small):
        with pytest.raises(SchemaError, match="not injective"):
            relabel(small, {0: 1, 1: 1, 2: 2, 3: 3})
        with pytest.raises(SchemaError, match="misses"):
            relabel(small, {0: 0})

    def test_merge_graphs(self, small):
        merged = merge_graphs(small, small)
        assert merged.num_nodes == 8
        assert merged.num_edges == 8
        # Second copy shifted: edge (0,1) appears as (4,5).
        assert any(e.src == 4 and e.dst == 5 for e in merged.edges)

    def test_merge_schema_mismatch(self, small, call_graph):
        with pytest.raises(SchemaError, match="different schemas"):
            merge_graphs(small, call_graph)


class TestStats:
    def test_degree_histogram_counts_all(self, call_graph):
        histogram = degree_histogram(call_graph)
        assert sum(histogram.values()) == call_graph.num_nodes
        assert sum(d * c for d, c in histogram.items()) == \
            call_graph.num_edges

    def test_gini_uniform_vs_skewed(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)
        skewed = gini_coefficient([1] * 99 + [1000])
        assert skewed > 0.8

    def test_generated_social_graph_is_heavy_tailed(self):
        graph = social_like(num_nodes=400, num_edges=3000, seed=0)
        histogram = degree_histogram(graph, direction="in")
        degrees = [d for d, c in histogram.items() for _ in range(c)]
        alpha = powerlaw_alpha_mle([d for d in degrees if d >= 1])
        assert 1.2 < alpha < 4.0
        assert gini_coefficient(degrees) > 0.3

    def test_describe_renders(self, call_graph):
        description = describe(call_graph)
        assert description.num_nodes == 8
        assert "|E|=15" in description.render()

    def test_reciprocity(self, call_graph):
        value = reciprocity(call_graph)
        assert 0.0 <= value <= 1.0
        # The call graph has several mutual pairs (1<->2, 1<->3, ...).
        assert value > 0.4

    def test_powerlaw_needs_tail(self):
        with pytest.raises(ValueError):
            powerlaw_alpha_mle([1])
