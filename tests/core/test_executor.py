"""The analytics executor: modes, outputs, costs, and splitting behavior."""

import pytest

from repro.algorithms import Bfs, Wcc
from repro.algorithms.reference import reference_bfs, reference_wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.errors import ComputationError
from repro.graph.edge_stream import EdgeStream


def chain_collection(num_views=6):
    """Views growing a simple chain 0->1->...->k one edge per view."""
    diffs = []
    for index in range(num_views):
        diffs.append({(index, index, index + 1, 1): 1})
    return collection_from_diffs("chain", diffs)


class TestSingleView:
    def test_run_on_view_matches_reference(self):
        stream = EdgeStream([(0, 0, 1, 1), (1, 1, 2, 1), (2, 0, 2, 1)])
        result = AnalyticsExecutor().run_on_view(Bfs(), stream)
        triples = [(s, d, w) for _e, s, d, w in stream]
        assert result.vertex_map() == reference_bfs(triples)
        assert result.work > 0
        assert result.view_size == 3

    def test_vertex_map_requires_output(self):
        stream = EdgeStream([(0, 0, 1, 1)])
        result = AnalyticsExecutor().run_on_view(Bfs(), stream,
                                                 keep_output=False)
        with pytest.raises(ComputationError, match="not kept"):
            result.vertex_map()


class TestModes:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_outputs_identical_across_modes(self, mode):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=mode, keep_outputs=True,
            cost_metric="work")
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            assert result.views[index].vertex_map() == \
                reference_wcc(triples), f"{mode} view {index}"

    def test_scratch_runs_every_view_fresh(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.SCRATCH)
        assert all(v.strategy.value == "scratch" for v in result.views)

    def test_diff_only_never_splits(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        assert result.split_points == []
        assert [v.strategy.value for v in result.views][1:] == \
            ["differential"] * (collection.num_views - 1)

    def test_diff_only_cheaper_on_incremental_chain(self):
        collection = chain_collection(10)
        executor = AnalyticsExecutor()
        diff = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        scratch = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.SCRATCH)
        assert diff.total_work < scratch.total_work

    def test_adaptive_records_strategies(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.ADAPTIVE,
            cost_metric="work")
        counts = result.strategy_counts()
        assert counts.get("scratch", 0) >= 1  # first view at least
        assert sum(counts.values()) == collection.num_views

    def test_output_diff_sizes_reported(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        # Adding edge (k, k+1) labels one new vertex with component 0 per
        # view: diff of size 1 (plus the very first view's two records).
        assert result.views[0].output_diff_size == 2
        assert all(v.output_diff_size >= 1 for v in result.views[1:])

    def test_output_diff_stream_kept_on_request(self):
        collection = chain_collection(4)
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_output_diffs=True)
        # Accumulating the per-view output diffs reproduces the final
        # accumulated output — difference-stream semantics end to end.
        accumulated = {}
        for view in result.views:
            assert view.output_diff is not None
            for rec, mult in view.output_diff.items():
                accumulated[rec] = accumulated.get(rec, 0) + mult
        accumulated = {r: m for r, m in accumulated.items() if m}
        final = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True).views[-1].output
        assert accumulated == final

    def test_output_diff_not_kept_by_default(self):
        collection = chain_collection(3)
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        assert all(view.output_diff is None for view in result.views)

    def test_bad_cost_metric_rejected(self):
        with pytest.raises(ComputationError, match="cost metric"):
            AnalyticsExecutor().run_on_collection(
                Wcc(), chain_collection(), cost_metric="vibes")

    def test_work_accounting_sums(self):
        collection = chain_collection()
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        assert result.total_work == sum(v.work for v in result.views)


class TestComputationValidation:
    def test_non_root_result_rejected(self):
        from repro.core.computation import GraphComputation

        class Broken(GraphComputation):
            name = "broken"

            def build(self, dataflow, edges):
                holder = {}

                def body(inner, scope):
                    holder["inner"] = inner
                    return inner.map(lambda rec: rec)

                edges.map(lambda rec: (rec[0], 0)).iterate(body)
                return holder["inner"]

        with pytest.raises(ComputationError, match="root-scope"):
            AnalyticsExecutor().run_on_collection(
                Broken(), chain_collection())
