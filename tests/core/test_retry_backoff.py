"""Satellite 1: RetryPolicy exponential backoff with deterministic jitter.

No test here sleeps real wall-clock: delays are recorded through the
injectable ``sleep`` callable and compared across seeded policies.
"""

import pytest

from repro.core.resilience import RetryPolicy
from repro.errors import ConfigError


def recording_policy(**kwargs):
    slept = []
    policy = RetryPolicy(sleep=slept.append, **kwargs)
    return policy, slept


class TestBaseDelay:
    def test_exponential_growth(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0)
        assert policy.base_delay(1) == pytest.approx(0.1)
        assert policy.base_delay(2) == pytest.approx(0.2)
        assert policy.base_delay(3) == pytest.approx(0.4)

    def test_factor_one_is_constant(self):
        policy = RetryPolicy(backoff_seconds=0.5, backoff_factor=1.0)
        assert [policy.base_delay(n) for n in (1, 2, 3)] == [0.5, 0.5, 0.5]

    def test_zero_backoff_never_sleeps(self):
        policy, slept = recording_policy(backoff_seconds=0.0)
        for n in (1, 2, 3):
            policy.pause(n)
        assert slept == []


class TestJitter:
    def test_jitter_bounded_and_additive(self):
        policy = RetryPolicy(backoff_seconds=0.1, jitter_seconds=0.05,
                             jitter_seed=3)
        for n in (1, 2, 3):
            delay = policy.delay_before(n)
            base = policy.base_delay(n)
            assert base <= delay <= base + 0.05

    def test_same_seed_same_sequence(self):
        first = RetryPolicy(backoff_seconds=0.1, jitter_seconds=0.05,
                            jitter_seed=42)
        second = RetryPolicy(backoff_seconds=0.1, jitter_seconds=0.05,
                             jitter_seed=42)
        assert [first.delay_before(n) for n in range(1, 6)] == \
            [second.delay_before(n) for n in range(1, 6)]

    def test_different_seed_different_sequence(self):
        first = RetryPolicy(backoff_seconds=0.1, jitter_seconds=0.05,
                            jitter_seed=1)
        second = RetryPolicy(backoff_seconds=0.1, jitter_seconds=0.05,
                             jitter_seed=2)
        assert [first.delay_before(n) for n in range(1, 6)] != \
            [second.delay_before(n) for n in range(1, 6)]

    def test_jitter_sequence_advances_per_call(self):
        policy = RetryPolicy(backoff_seconds=0.1, jitter_seconds=0.05,
                             jitter_seed=5)
        draws = {round(policy.delay_before(1), 12) for _ in range(8)}
        assert len(draws) > 1  # the private RNG advances


class TestCapAndPause:
    def test_max_delay_caps_backoff_and_jitter(self):
        policy = RetryPolicy(backoff_seconds=1.0, backoff_factor=10.0,
                             jitter_seconds=5.0, jitter_seed=0,
                             max_delay_seconds=1.5)
        assert all(policy.delay_before(n) <= 1.5 for n in range(1, 6))
        assert policy.delay_before(5) == pytest.approx(1.5)

    def test_pause_records_through_injected_sleep(self):
        policy, slept = recording_policy(
            backoff_seconds=0.1, backoff_factor=2.0, jitter_seconds=0.01,
            jitter_seed=9, max_retries=3)
        for n in (1, 2, 3):
            policy.pause(n)
        assert len(slept) == 3
        assert slept[0] >= 0.1 and slept[1] >= 0.2 and slept[2] >= 0.4
        # The recorded delays match a same-seeded policy's computed ones.
        twin = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0,
                           jitter_seconds=0.01, jitter_seed=9)
        assert slept == [twin.delay_before(n) for n in (1, 2, 3)]


class TestValidation:
    def test_invalid_parameters_raise_config_error(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_seconds=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(max_delay_seconds=0.0)

    def test_config_error_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
