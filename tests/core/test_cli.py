"""The command-line interface."""

import pytest

from repro.cli import build_computation, main


@pytest.fixture
def graph_files(tmp_path):
    nodes = tmp_path / "nodes.csv"
    edges = tmp_path / "edges.csv"
    nodes.write_text("id,city:str\n" + "\n".join(
        f"{i},{'LA' if i % 2 else 'NY'}" for i in range(8)) + "\n")
    edges.write_text("src,dst,year:int\n" + "\n".join(
        f"{i},{(i + 1) % 8},{2015 + i % 5}" for i in range(8)) + "\n")
    return nodes, edges


def load_args(graph_files):
    nodes, edges = graph_files
    return ["--load", f"g={nodes},{edges}"]


class TestSessionSetup:
    def test_load_and_info(self, graph_files, capsys):
        assert main(load_args(graph_files) + ["info"]) == 0
        out = capsys.readouterr().out
        assert "loaded graph g" in out
        assert "|V|=8" in out

    def test_bad_load_spec(self, capsys):
        assert main(["--load", "nonsense", "info"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_execute_inline(self, graph_files, capsys):
        argv = load_args(graph_files) + [
            "--execute", "create view recent on g edges where year >= 2018",
            "info"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "created recent" in out
        assert "recent:" in out

    def test_gvdl_file(self, graph_files, tmp_path, capsys):
        script = tmp_path / "views.gvdl"
        script.write_text(
            "create view collection hist on g "
            "[a: year <= 2016], [b: year <= 2019];")
        argv = load_args(graph_files) + ["--gvdl", str(script), "gvdl"]
        assert main(argv) == 0
        assert "created hist" in capsys.readouterr().out


class TestRun:
    def test_run_on_graph(self, graph_files, capsys):
        argv = load_args(graph_files) + ["run", "wcc", "g"]
        assert main(argv) == 0
        assert "WCC on g" in capsys.readouterr().out

    def test_run_on_collection_with_csv(self, graph_files, tmp_path,
                                        capsys):
        out_file = tmp_path / "results.csv"
        argv = load_args(graph_files) + [
            "--execute", "create view collection hist on g "
                         "[a: year <= 2016], [b: year <= 2019]",
            "run", "wcc", "hist", "--mode", "diff-only",
            "--out", str(out_file)]
        assert main(argv) == 0
        assert "2 views" in capsys.readouterr().out
        lines = out_file.read_text().strip().splitlines()
        assert lines[0] == "view,vertex,value"
        assert len(lines) > 2

    def test_run_unknown_computation(self, graph_files, capsys):
        argv = load_args(graph_files) + ["run", "quantum", "g"]
        assert main(argv) == 1
        assert "unknown computation" in capsys.readouterr().err

    def test_run_unknown_target(self, graph_files, capsys):
        argv = load_args(graph_files) + ["run", "wcc", "missing"]
        assert main(argv) == 1

    def test_mpsp_requires_pairs(self, graph_files, capsys):
        argv = load_args(graph_files) + ["run", "mpsp", "g"]
        assert main(argv) == 1
        assert "--pairs" in capsys.readouterr().err

    def test_run_trace_out_writes_valid_chrome_trace(self, graph_files,
                                                     tmp_path, capsys):
        import json

        from repro.observe import validate_chrome_trace

        trace = tmp_path / "trace.json"
        argv = load_args(graph_files) + [
            "--execute", "create view collection hist on g "
                         "[a: year <= 2016], [b: year <= 2019]",
            "run", "wcc", "hist", "--trace-out", str(trace)]
        assert main(argv) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        assert validate_chrome_trace(json.loads(trace.read_text())) > 0

    def test_run_without_trace_out_writes_nothing(self, graph_files,
                                                  tmp_path, capsys):
        argv = load_args(graph_files) + ["run", "wcc", "g"]
        assert main(argv) == 0
        assert "Chrome trace" not in capsys.readouterr().out


class TestBackendFlag:
    def test_run_on_process_backend(self, graph_files, capsys):
        argv = load_args(graph_files) + [
            "--workers", "2", "--backend", "process", "run", "wcc", "g"]
        assert main(argv) == 0
        assert "WCC on g" in capsys.readouterr().out

    def test_process_backend_matches_inline(self, graph_files, capsys):
        def run(extra):
            argv = load_args(graph_files) + extra + [
                "--execute", "create view collection hist on g "
                             "[a: year <= 2016], [b: year <= 2019]",
                "run", "wcc", "hist", "--mode", "diff-only"]
            assert main(argv) == 0
            # Keep the deterministic columns (view, strategy, work);
            # wall seconds legitimately differ between backends.
            return [(line.split()[0], line.split()[1], line.split()[-2])
                    for line in capsys.readouterr().out.splitlines()
                    if line.strip().endswith("work")]

        process = run(["--workers", "2", "--backend", "process"])
        inline = run(["--workers", "2"])
        assert process and process == inline

    def test_process_backend_needs_two_workers(self, graph_files, capsys):
        argv = load_args(graph_files) + ["--backend", "process",
                                         "run", "wcc", "g"]
        assert main(argv) == 1
        assert "workers >= 2" in capsys.readouterr().err

    def test_serve_flags_override_globals(self, graph_files, capsys):
        # serve --backend process with the global default of one worker
        # is invalid and must be refused at boot with a ConfigError —
        # before any socket is bound.
        argv = load_args(graph_files) + [
            "serve", "--backend", "process"]
        assert main(argv) == 1
        assert "workers >= 2" in capsys.readouterr().err


class TestProfile:
    def collection_args(self, graph_files):
        return load_args(graph_files) + [
            "--execute", "create view collection hist on g "
                         "[a: year <= 2016], [b: year <= 2019]"]

    def test_profile_collection(self, graph_files, capsys):
        argv = self.collection_args(graph_files) + ["profile", "wcc", "hist"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "profile of hist: 2 view(s)" in out
        assert "critical path for 'a'" in out
        assert "critical path for 'b'" in out
        assert "work rollup" in out

    def test_profile_trace_out(self, graph_files, tmp_path, capsys):
        import json

        from repro.observe import validate_chrome_trace

        trace = tmp_path / "trace.json"
        argv = self.collection_args(graph_files) + [
            "profile", "wcc", "hist", "--trace-out", str(trace)]
        assert main(argv) == 0
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) > 0
        assert payload["otherData"]["parallel_time_units"] > 0

    def test_profile_single_graph(self, graph_files, capsys):
        argv = load_args(graph_files) + ["profile", "bfs", "g"]
        assert main(argv) == 0
        assert "critical path for 'g'" in capsys.readouterr().out

    def test_profile_unknown_target(self, graph_files, capsys):
        argv = load_args(graph_files) + ["profile", "wcc", "missing"]
        assert main(argv) == 1


class TestComputationFactory:
    def test_all_names_resolve(self):
        import argparse

        args = argparse.Namespace(source=None, iterations=5, k=3,
                                  pairs="0:1,0:2")
        for name in ("wcc", "scc", "bfs", "bf", "pagerank", "mpsp",
                     "kcore", "triangles", "degrees", "maxdegree"):
            computation = build_computation(name, args)
            assert computation.name

    def test_parameters_flow(self):
        import argparse

        args = argparse.Namespace(source=7, iterations=3, k=4,
                                  pairs="1:2")
        assert build_computation("bfs", args).source == 7
        assert build_computation("pagerank", args).iterations == 3
        assert build_computation("kcore", args).k == 4
        assert build_computation("mpsp", args).pairs == [(1, 2)]
