"""The Graphsurge facade: GVDL execution end to end."""

import pytest

from repro import ExecutionMode, Graphsurge
from repro.algorithms import Wcc
from repro.errors import StoreError, UnknownGraphError


@pytest.fixture
def session(call_graph):
    gs = Graphsurge()
    gs.add_graph(call_graph)
    return gs


class TestGraphManagement:
    def test_load_graph_from_csv(self, tmp_path):
        (tmp_path / "nodes.csv").write_text("id,city:str\n1,LA\n2,NY\n")
        (tmp_path / "edges.csv").write_text("src,dst,d:int\n1,2,5\n")
        gs = Graphsurge()
        graph = gs.load_graph("g", tmp_path / "nodes.csv",
                              tmp_path / "edges.csv")
        assert graph.num_edges == 1
        assert gs.resolve("g") is graph

    def test_resolve_unknown(self, session):
        with pytest.raises(UnknownGraphError):
            session.resolve("nope")

    def test_duplicate_graph_rejected(self, session, call_graph):
        with pytest.raises(StoreError):
            session.add_graph(call_graph)


class TestGvdlExecution:
    def test_filtered_view_listing_1_style(self, session):
        created = session.execute(
            "create view LA-Long on Calls edges where "
            "src.city = 'LA' and dst.city = 'LA' and duration > 10")
        assert created == ["LA-Long"]
        view = session.views.get_view("LA-Long")
        assert view.num_edges == 3  # (2->1,19), (2->6,13), (6->3,12)

    def test_view_over_view(self, session):
        session.execute(
            "create view recent on Calls edges where year >= 2018")
        session.execute(
            "create view recent-long on recent edges where duration > 15")
        inner = session.views.get_view("recent-long")
        assert all(e.properties["duration"] > 15
                   and e.properties["year"] >= 2018 for e in inner.edges)

    def test_collection_materialization(self, session):
        session.execute(
            "create view collection hist on Calls "
            "[y2015: year <= 2015], [y2017: year <= 2017], "
            "[y2019: year <= 2019]")
        collection = session.views.get_collection("hist")
        assert collection.num_views == 3
        assert collection.view_sizes[-1] == 15
        # Inclusion chain: monotone sizes and addition-only diffs.
        assert collection.view_sizes == sorted(collection.view_sizes)
        for diff in collection.diffs:
            assert all(mult == 1 for mult in diff.values())

    def test_aggregate_view_via_gvdl(self, session):
        session.execute(
            "create view cities on Calls nodes group by city "
            "aggregate n: count(*)")
        view = session.views.get_view("cities")
        assert {n.properties["n"] for n in view.nodes.values()} == {5, 3}

    def test_multi_statement_program(self, session):
        created = session.execute(
            "create view a on Calls edges where year = 2019; "
            "create view b on a edges where duration > 10")
        assert created == ["a", "b"]

    def test_unknown_source_graph(self, session):
        with pytest.raises(UnknownGraphError):
            session.execute("create view v on Missing edges where x = 1")


class TestAnalytics:
    def test_run_on_base_graph(self, session):
        result = session.run_analytics(Wcc(), "Calls")
        components = result.vertex_map()
        assert len(components) == 8
        # The call graph is weakly connected through node 5->2 etc.
        assert len(set(components.values())) == 1

    def test_run_on_filtered_view(self, session):
        session.execute("create view y2019 on Calls edges where year = 2019")
        result = session.run_analytics(Wcc(), "y2019")
        assert set(result.vertex_map()) == {1, 2, 4, 5, 6, 7, 8}

    def test_run_on_collection_all_modes(self, session):
        session.execute(
            "create view collection hist on Calls "
            "[y2015: year <= 2015], [y2017: year <= 2017], "
            "[y2019: year <= 2019]")
        for mode in ExecutionMode:
            result = session.run_analytics(
                Wcc(), "hist", mode=mode, keep_outputs=True)
            assert len(result.views) == 3
            final = result.views[-1].vertex_map()
            assert len(final) == 8

    def test_collection_ordering_enabled_session(self, call_graph):
        gs = Graphsurge(order_collections="christofides")
        gs.add_graph(call_graph)
        gs.execute(
            "create view collection mixed on Calls "
            "[a: year <= 2015], [b: year <= 2019], [c: year <= 2013], "
            "[d: year <= 2017]")
        collection = gs.views.get_collection("mixed")
        assert collection.ordering is not None
        # Inclusion-chain views must come out chain-ordered.
        sizes = collection.view_sizes
        assert sizes == sorted(sizes) or sizes == sorted(sizes, reverse=True)
