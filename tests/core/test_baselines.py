"""GraphBolt-style specialized maintainers: correctness vs references."""

import random

import pytest

from repro.algorithms.pagerank import SCALE
from repro.algorithms.reference import reference_pagerank, reference_sssp
from repro.baselines import IncrementalPageRank, IncrementalSssp


def churn_sequence(seed, num_nodes=30, initial=90, steps=8, churn=6,
                   weighted=False):
    """Initial edge set plus per-step (additions, removals) lists."""
    rng = random.Random(seed)
    current = {}
    while len(current) < initial:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and (u, v) not in current:
            current[(u, v)] = rng.randrange(1, 6) if weighted else 1
    history = [([], [])]
    snapshot = [dict(current)]
    for _ in range(steps):
        removals = []
        for pair in rng.sample(sorted(current), churn):
            removals.append((pair[0], pair[1], current.pop(pair)))
        additions = []
        while len(additions) < churn:
            u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if u != v and (u, v) not in current:
                w = rng.randrange(1, 6) if weighted else 1
                current[(u, v)] = w
                additions.append((u, v, w))
        history.append((additions, removals))
        snapshot.append(dict(current))
    return history, snapshot


class TestIncrementalSssp:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_across_churn(self, seed):
        history, snapshots = churn_sequence(seed, weighted=True)
        initial = snapshots[0]
        source = min(src for src, _dst in initial)
        sssp = IncrementalSssp(source)
        sssp.initialize([(u, v, w) for (u, v), w in initial.items()])
        for step, (additions, removals) in enumerate(history):
            if step > 0:
                sssp.apply_diff(additions, removals)
            triples = [(u, v, w)
                       for (u, v), w in snapshots[step].items()]
            expected = reference_sssp(triples, source)
            assert sssp.dist == expected, (seed, step)

    def test_source_losing_out_edges_clears(self):
        sssp = IncrementalSssp(0)
        sssp.initialize([(0, 1, 2)])
        assert sssp.dist == {0: 0, 1: 2}
        sssp.apply_diff([], [(0, 1, 2)])
        assert sssp.dist == {}

    def test_deletion_invalidates_downstream(self):
        sssp = IncrementalSssp(0)
        sssp.initialize([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)])
        assert sssp.dist[3] == 3
        sssp.apply_diff([], [(1, 2, 1)])
        assert sssp.dist == {0: 0, 1: 1, 3: 10}


class TestIncrementalPageRank:
    @pytest.mark.parametrize("seed", range(4))
    def test_tracks_reference_fixed_point(self, seed):
        history, snapshots = churn_sequence(seed, churn=3)
        pr = IncrementalPageRank(iterations=30)
        initial = snapshots[0]
        pr.initialize([pair for pair in initial])
        for step, (additions, removals) in enumerate(history):
            if step > 0:
                pr.apply_diff([(u, v) for u, v, _w in additions],
                              [(u, v) for u, v, _w in removals])
            triples = [(u, v, 1) for (u, v) in snapshots[step]]
            expected = reference_pagerank(triples, iterations=60)
            assert set(pr.ranks) == set(expected), (seed, step)
            # Warm-start refinement and cold synchronous iteration may
            # settle on nearby quantization grid points (the quantized
            # update map's fixed point is not unique); they must agree to
            # within 1% of a unit rank everywhere.
            for vertex, rank in pr.ranks.items():
                assert abs(rank - expected[vertex]) <= SCALE // 100, \
                    (seed, step, vertex)

    def test_vertex_leaves_when_isolated(self):
        pr = IncrementalPageRank()
        pr.initialize([(0, 1), (1, 0)])
        assert set(pr.ranks) == {0, 1}
        pr.apply_diff([], [(0, 1), (1, 0)])
        assert pr.ranks == {}

    def test_work_counter_increases(self):
        pr = IncrementalPageRank()
        pr.initialize([(0, 1), (1, 2), (2, 0)])
        before = pr.work
        pr.apply_diff([(0, 2)], [])
        assert pr.work > before
