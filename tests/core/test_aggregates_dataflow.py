"""The dataflow-based aggregate-view path must match the direct evaluator."""

import pytest

from repro.core.aggregates import (
    compute_aggregate_view,
    compute_aggregate_view_dataflow,
)
from repro.gvdl.parser import parse


def graphs_equal(a, b):
    nodes_a = {n.id: n.properties for n in a.nodes.values()}
    nodes_b = {n.id: n.properties for n in b.nodes.values()}
    edges_a = sorted((e.src, e.dst, sorted(e.properties.items()))
                     for e in a.edges)
    edges_b = sorted((e.src, e.dst, sorted(e.properties.items()))
                     for e in b.edges)
    return nodes_a == nodes_b and edges_a == edges_b


STATEMENTS = [
    "create view v on Calls nodes group by city aggregate n: count(*) "
    "edges aggregate total: sum(duration)",
    "create view v on Calls nodes group by city, profession "
    "aggregate count(*)",
    "create view v on Calls nodes group by [(city = 'LA'), "
    "(profession = 'Lawyer')] aggregate count(*) "
    "edges aggregate m: max(duration), s: min(duration)",
    "create view v on Calls nodes group by city "
    "edges aggregate a: avg(duration)",
]


@pytest.mark.parametrize("statement_text", STATEMENTS)
@pytest.mark.parametrize("workers", [1, 4])
def test_dataflow_matches_direct(call_graph, statement_text, workers):
    statement = parse(statement_text)
    direct = compute_aggregate_view(call_graph, statement)
    dataflow = compute_aggregate_view_dataflow(call_graph, statement,
                                               workers=workers)
    assert graphs_equal(direct, dataflow)


def test_dataflow_drops_unmatched_nodes(call_graph):
    statement = parse("create view v on Calls nodes group by "
                      "[(city = 'NY')] aggregate count(*)")
    view = compute_aggregate_view_dataflow(call_graph, statement)
    assert view.num_nodes == 1
    assert all(edge.src == 0 and edge.dst == 0 for edge in view.edges)
