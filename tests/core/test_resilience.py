"""Fault-tolerant execution: checkpoints, resume, budgets, fault injection.

The acceptance-critical scenarios live here:

* a 20-view collection run killed mid-flight at a seeded view resumes from
  its checkpoint and produces per-view outputs identical to an
  uninterrupted run;
* a view that keeps failing differentially is retried, degrades to a
  from-scratch run, and the collection run completes with the failure
  recorded.
"""

import json

import pytest

from repro.algorithms import Bfs, Wcc
from repro.algorithms.reference import reference_wcc
from repro.core.diagnostics import checkpoint_status, summarize_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.resilience import (
    CheckpointWriter,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RunBudget,
    decode_diff,
    decode_value,
    encode_diff,
    encode_value,
    load_checkpoint,
)
from repro.core.splitting.optimizer import SplitDecision
from repro.core.view_collection import collection_from_diffs
from repro.differential.dataflow import Dataflow
from repro.errors import (
    BudgetExceededError,
    CheckpointError,
    InjectedFault,
)


def chain_collection(num_views=20, name="chain"):
    """Views growing a chain 0->1->...->k one edge per view."""
    return collection_from_diffs(
        name, [{(i, i, i + 1, 1): 1} for i in range(num_views)])


def churn_collection(num_views=14):
    """A collection with periodic full rewrites (induces real splits)."""
    diffs = []
    accumulated = {}
    for index in range(num_views):
        if index and index % 4 == 0:
            # Rewrite: retract the whole view, install a small fresh chain.
            diff = {edge: -mult for edge, mult in accumulated.items()}
            for j in range(2):
                edge = (1000 * index + j, j, j + 1, 1)
                diff[edge] = diff.get(edge, 0) + 1
        else:
            diff = {(index, index, index + 1, 1): 1}
        for edge, mult in diff.items():
            accumulated[edge] = accumulated.get(edge, 0) + mult
        accumulated = {e: m for e, m in accumulated.items() if m}
        diffs.append({e: m for e, m in diff.items() if m})
    return collection_from_diffs("churny", diffs)


def reference_maps(collection):
    out = []
    for index in range(collection.num_views):
        triples = [(s, d, w) for (_e, s, d, w)
                   in collection.full_view_edges(index)]
        out.append(reference_wcc(triples))
    return out


class TestFaultPlan:
    def test_fires_at_exact_invocations(self):
        plan = FaultPlan([FaultSpec("epoch", (1, 3))])
        plan.fire("epoch")
        with pytest.raises(InjectedFault, match="invocation 1"):
            plan.fire("epoch")
        plan.fire("epoch")
        with pytest.raises(InjectedFault, match="invocation 3"):
            plan.fire("epoch")
        assert plan.invocations("epoch") == 4
        assert [f[:2] for f in plan.fired] == [("epoch", 1), ("epoch", 3)]

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec("operator", (0,))])
        plan.fire("epoch")  # does not consume the operator fault
        with pytest.raises(InjectedFault):
            plan.fire("operator")

    def test_seeded_plans_are_reproducible(self):
        first = FaultPlan.seeded(seed=11, site="epoch", lo=5, hi=50, count=3)
        second = FaultPlan.seeded(seed=11, site="epoch", lo=5, hi=50, count=3)
        assert first.specs == second.specs
        different = FaultPlan.seeded(seed=12, site="epoch", lo=5, hi=50,
                                     count=3)
        assert first.specs != different.specs

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("warp-core", (0,))
        plan = FaultPlan()
        with pytest.raises(KeyError):
            plan.fire("warp-core")

    def test_corrupt_kind_inflates_meter(self):
        from repro.timely.meter import WorkMeter

        plan = FaultPlan([FaultSpec("operator", (1,), kind="corrupt")])
        meter = WorkMeter(1, fault_plan=plan)
        meter.record("a", 1)
        meter.record("b", 1)  # corrupted: recorded as 1000
        assert meter.total_work == 1001


class TestRecordEncoding:
    @pytest.mark.parametrize("value", [
        1, -3, 2.5, "x", None, True,
        (1, 2), (1, (2, 3)), ("v", (1.5, ("deep", 0))), [1, (2, 3)],
    ])
    def test_value_round_trip(self, value):
        assert decode_value(encode_value(value)) == value
        # Tuples must come back as tuples, not lists.
        assert type(decode_value(encode_value(value))) is type(value)

    def test_diff_round_trip(self):
        diff = {(1, (2, 3)): 2, ("v", 0): -1}
        assert decode_diff(encode_diff(diff)) == diff
        assert encode_diff(None) is None
        assert decode_diff(None) is None

    def test_encoding_is_json_safe(self):
        diff = {(1, (2, 3)): 2}
        assert json.loads(json.dumps(encode_diff(diff))) == encode_diff(diff)


class TestRunBudget:
    def test_non_converging_iterate_raises_structured_error(self):
        budget = RunBudget(max_iterations=25)
        dataflow = Dataflow(budget=budget)
        nums = dataflow.new_input("nums")

        def diverge(inner, scope):
            # (k, v) -> (k, v + 1): the value changes every iteration, so
            # the loop never produces an empty difference.
            return inner.map(lambda rec: (rec[0], rec[1] + 1))

        dataflow.capture(nums.iterate(diverge), "out")
        with pytest.raises(BudgetExceededError) as info:
            dataflow.step({"nums": {(1, 0): 1}})
        assert info.value.limit == "iterations"
        assert info.value.allowed == 25
        assert info.value.spent > 25
        assert "iterate" in info.value.site

    def test_work_budget_carries_partial_progress(self):
        collection = chain_collection(10)
        full = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work")
        budget = RunBudget(max_work=full.total_work // 2)
        with pytest.raises(BudgetExceededError) as info:
            AnalyticsExecutor().run_on_collection(
                Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
                cost_metric="work", budget=budget)
        error = info.value
        assert error.limit == "work"
        assert error.partial is not None
        assert 0 < len(error.partial.views) < 10
        # The partial views are real, completed results.
        assert all(v.work > 0 for v in error.partial.views)

    def test_wall_budget_with_injected_clock(self):
        ticks = iter(range(1000))
        budget = RunBudget(max_wall_seconds=3, clock=lambda: next(ticks))
        budget.start()
        with pytest.raises(BudgetExceededError) as info:
            for _ in range(10):
                budget.charge(1, site="test")
        assert info.value.limit == "wall_seconds"

    def test_budget_spans_dataflow_restarts(self):
        collection = chain_collection(8)
        budget = RunBudget(max_work=10)
        with pytest.raises(BudgetExceededError):
            # SCRATCH mode uses a fresh dataflow (and meter) per view; the
            # budget must still accumulate across them.
            AnalyticsExecutor().run_on_collection(
                Wcc(), collection, mode=ExecutionMode.SCRATCH,
                cost_metric="work", budget=budget)
        assert budget.work_spent > 10

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError, match="max_work"):
            RunBudget(max_work=0)


class TestCheckpointJournal:
    def test_full_run_journals_every_view(self, tmp_path):
        path = tmp_path / "run.ckpt"
        collection = chain_collection(6)
        AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", keep_outputs=True, checkpoint_path=path)
        state = load_checkpoint(path)
        assert state is not None
        assert state.completed_views == 6
        assert state.is_complete()
        assert not state.truncated
        assert state.header["computation"] == Wcc().name
        assert state.header["num_views"] == 6
        assert [r["view_name"] for r in state.views] == \
            collection.view_names
        # Outputs survive the journal round trip.
        assert decode_diff(state.views[-1]["output"]) is not None

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.ckpt") is None

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "run.ckpt"
        AnalyticsExecutor().run_on_collection(
            Wcc(), chain_collection(5), mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", checkpoint_path=path)
        with path.open("a") as handle:
            handle.write('{"sha256": "feed", "record": {"type": "vi')
        state = load_checkpoint(path)
        assert state.truncated
        assert state.completed_views == 5

    def test_corrupt_middle_line_drops_suffix(self, tmp_path):
        path = tmp_path / "run.ckpt"
        AnalyticsExecutor().run_on_collection(
            Wcc(), chain_collection(5), mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", checkpoint_path=path)
        lines = path.read_text().splitlines(keepends=True)
        lines[3] = lines[3].replace('"sha256": "', '"sha256": "00', 1)
        path.write_text("".join(lines))
        state = load_checkpoint(path)
        assert state.truncated
        assert state.completed_views == 2  # header + 2 intact views

    def test_resume_rewrites_torn_tail(self, tmp_path):
        path = tmp_path / "run.ckpt"
        AnalyticsExecutor().run_on_collection(
            Wcc(), chain_collection(5), mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", checkpoint_path=path)
        with path.open("a") as handle:
            handle.write("garbage that is not json\n")
        state = load_checkpoint(path)
        writer = CheckpointWriter.resume(path, state)
        writer.close()
        assert "garbage" not in path.read_text()
        assert not load_checkpoint(path).truncated

    def test_non_contiguous_prefix_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        AnalyticsExecutor().run_on_collection(
            Wcc(), chain_collection(5), mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", checkpoint_path=path)
        lines = path.read_text().splitlines(keepends=True)
        del lines[2]  # drop view 1 but keep later (intact) records
        path.write_text("".join(lines))
        with pytest.raises(CheckpointError, match="contiguous"):
            load_checkpoint(path)


class TestResume:
    def run(self, collection, mode=ExecutionMode.DIFF_ONLY, **kwargs):
        return AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=mode, cost_metric="work",
            keep_outputs=True, **kwargs)

    def test_kill_midflight_then_resume_matches_uninterrupted(self, tmp_path):
        """A 20-view run dies at a seeded view; resume completes it and the
        final result is indistinguishable from an uninterrupted run."""
        baseline = self.run(chain_collection(20))
        path = tmp_path / "run.ckpt"
        plan = FaultPlan.seeded(seed=7, site="epoch", lo=4, hi=18)
        with pytest.raises(InjectedFault):
            self.run(chain_collection(20), checkpoint_path=path,
                     fault_plan=plan)
        state = load_checkpoint(path)
        assert 0 < state.completed_views < 20
        resumed = self.run(chain_collection(20), resume_from=path)
        assert resumed.resumed_views == state.completed_views
        assert len(resumed.views) == 20
        for index in range(20):
            assert resumed.views[index].vertex_map() == \
                baseline.views[index].vertex_map(), f"view {index}"
        assert resumed.split_points == baseline.split_points
        assert [v.view_name for v in resumed.views] == \
            [v.view_name for v in baseline.views]
        # The journal now covers the whole run.
        assert load_checkpoint(path).is_complete()

    def test_resume_adaptive_with_real_splits(self, tmp_path):
        collection = churn_collection(14)
        baseline = self.run(collection, mode=ExecutionMode.ADAPTIVE,
                            batch_size=1)
        assert baseline.split_points  # the scenario must actually split
        path = tmp_path / "run.ckpt"
        plan = FaultPlan.single("epoch", at=7)
        with pytest.raises(InjectedFault):
            self.run(churn_collection(14), mode=ExecutionMode.ADAPTIVE,
                     batch_size=1, checkpoint_path=path, fault_plan=plan)
        resumed = self.run(churn_collection(14),
                           mode=ExecutionMode.ADAPTIVE, batch_size=1,
                           resume_from=path)
        for index in range(14):
            assert resumed.views[index].vertex_map() == \
                baseline.views[index].vertex_map(), f"view {index}"
        assert resumed.split_points == baseline.split_points

    def test_crash_during_checkpoint_write_resumes_cleanly(self, tmp_path):
        """The 'checkpoint' fault site tears the journal line mid-append;
        resume drops the torn line, recomputes that view, and finishes."""
        baseline = self.run(chain_collection(10))
        path = tmp_path / "run.ckpt"
        plan = FaultPlan.single("checkpoint", at=6)
        with pytest.raises(InjectedFault):
            self.run(chain_collection(10), checkpoint_path=path,
                     fault_plan=plan)
        state = load_checkpoint(path)
        assert state.truncated
        assert state.completed_views == 6  # view 6's line was torn
        resumed = self.run(chain_collection(10), resume_from=path)
        assert resumed.resumed_views == 6
        for index in range(10):
            assert resumed.views[index].vertex_map() == \
                baseline.views[index].vertex_map()

    def test_resume_of_complete_run_reexecutes_nothing(self, tmp_path):
        path = tmp_path / "run.ckpt"
        baseline = self.run(chain_collection(6), checkpoint_path=path)
        resumed = self.run(chain_collection(6), resume_from=path)
        assert resumed.resumed_views == 6
        # Nothing re-ran: every record (costs included) is restored verbatim.
        assert [v.work for v in resumed.views] == \
            [v.work for v in baseline.views]
        assert resumed.total_work == baseline.total_work
        for index in range(6):
            assert resumed.views[index].vertex_map() == \
                baseline.views[index].vertex_map()

    def test_resume_missing_file_runs_fresh(self, tmp_path):
        path = tmp_path / "never-written.ckpt"
        result = self.run(chain_collection(4), resume_from=path)
        assert result.resumed_views == 0
        assert len(result.views) == 4
        # The fresh run journals to the resume path for next time.
        assert load_checkpoint(path).is_complete()

    def test_resume_rejects_mismatched_collection(self, tmp_path):
        path = tmp_path / "run.ckpt"
        self.run(chain_collection(6), checkpoint_path=path)
        with pytest.raises(CheckpointError, match="fingerprint"):
            self.run(chain_collection(7), resume_from=path)

    def test_resume_rejects_mismatched_computation(self, tmp_path):
        path = tmp_path / "run.ckpt"
        self.run(chain_collection(6), checkpoint_path=path)
        with pytest.raises(CheckpointError, match="computation"):
            AnalyticsExecutor().run_on_collection(
                Bfs(source=0), chain_collection(6),
                mode=ExecutionMode.DIFF_ONLY, cost_metric="work",
                resume_from=path)

    def test_resume_rejects_missing_outputs(self, tmp_path):
        path = tmp_path / "run.ckpt"
        AnalyticsExecutor().run_on_collection(
            Wcc(), chain_collection(6), mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", checkpoint_path=path)  # no keep_outputs
        with pytest.raises(CheckpointError, match="keep_outputs"):
            self.run(chain_collection(6), resume_from=path)


class TestRetryAndDegrade:
    def test_differential_failure_degrades_to_scratch(self):
        """Acceptance: a view that fails differentially is retried,
        degrades to SCRATCH, and the run completes with the failure
        recorded."""
        collection = chain_collection(6)
        # Epoch invocations: views 0,1 -> 0,1; view 2's first attempt is
        # invocation 2 and its rebuilt differential retry replays at
        # invocation 3 — both fail, forcing the scratch fallback.
        plan = FaultPlan([FaultSpec("epoch", (2, 3))])
        policy = RetryPolicy(max_retries=1, backoff_seconds=0.0)
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", keep_outputs=True, fault_plan=plan,
            retry_policy=policy)
        view = result.views[2]
        assert view.degraded
        assert view.strategy is SplitDecision.SCRATCH
        assert view.attempts == 3
        assert len(view.failures) == 2
        assert all("InjectedFault" in f for f in view.failures)
        assert 2 in result.split_points
        assert result.failed_views() == [view]
        # Correctness is untouched: every view matches the reference.
        for index, expected in enumerate(reference_maps(collection)):
            assert result.views[index].vertex_map() == expected
        # Later views keep running differentially off the fallback state.
        assert result.views[3].strategy is SplitDecision.DIFFERENTIAL

    def test_transient_failure_retries_without_degrading(self):
        collection = chain_collection(6)
        plan = FaultPlan([FaultSpec("epoch", (2,))])
        policy = RetryPolicy(max_retries=1, backoff_seconds=0.0)
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", keep_outputs=True, fault_plan=plan,
            retry_policy=policy)
        view = result.views[2]
        assert not view.degraded
        assert view.strategy is SplitDecision.DIFFERENTIAL
        assert view.attempts == 2
        assert len(view.failures) == 1
        assert result.split_points == []
        for index, expected in enumerate(reference_maps(collection)):
            assert result.views[index].vertex_map() == expected

    def test_midoperator_fault_recovers(self):
        """The 'operator' site poisons a dataflow mid-apply; the rebuilt
        retry still converges to the right answer."""
        collection = chain_collection(8)
        clean = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work")
        # Fire somewhere strictly inside the run's metered work.
        plan = FaultPlan.single("operator", at=clean.total_work // 2)
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.0)
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), chain_collection(8), mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work", keep_outputs=True, fault_plan=plan,
            retry_policy=policy)
        assert result.failed_views()
        for index, expected in enumerate(reference_maps(collection)):
            assert result.views[index].vertex_map() == expected

    def test_without_policy_the_fault_propagates(self):
        plan = FaultPlan([FaultSpec("epoch", (2,))])
        with pytest.raises(InjectedFault):
            AnalyticsExecutor().run_on_collection(
                Wcc(), chain_collection(6), mode=ExecutionMode.DIFF_ONLY,
                cost_metric="work", fault_plan=plan)

    def test_persistent_failure_exhausts_and_raises(self):
        plan = FaultPlan([FaultSpec("epoch", tuple(range(2, 40)))])
        policy = RetryPolicy(max_retries=1, backoff_seconds=0.0)
        with pytest.raises(InjectedFault):
            AnalyticsExecutor().run_on_collection(
                Wcc(), chain_collection(6), mode=ExecutionMode.DIFF_ONLY,
                cost_metric="work", fault_plan=plan, retry_policy=policy)

    def test_budget_errors_are_never_retried(self):
        policy = RetryPolicy(max_retries=5, backoff_seconds=0.0)
        budget = RunBudget(max_work=5)
        with pytest.raises(BudgetExceededError):
            AnalyticsExecutor().run_on_collection(
                Wcc(), chain_collection(6), mode=ExecutionMode.DIFF_ONLY,
                cost_metric="work", budget=budget, retry_policy=policy)
        assert budget.work_spent <= 5 + 50  # one view's worth, not 6 tries

    def test_backoff_schedule(self):
        slept = []
        policy = RetryPolicy(max_retries=3, backoff_seconds=1.0,
                             backoff_factor=2.0, sleep=slept.append)
        policy.pause(1)
        policy.pause(2)
        policy.pause(3)
        assert slept == [1.0, 2.0, 4.0]


class TestCheckpointDiagnostics:
    def test_summary_reports_resumability(self, tmp_path):
        collection = chain_collection(10)
        path = tmp_path / "run.ckpt"
        plan = FaultPlan.single("epoch", at=4)
        with pytest.raises(InjectedFault):
            AnalyticsExecutor().run_on_collection(
                Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
                cost_metric="work", checkpoint_path=path, fault_plan=plan)
        status = checkpoint_status(path)
        assert status.resumable
        assert status.completed_views == 4
        assert status.last_view_name == "view-3"
        summary = summarize_collection(collection, checkpoint_path=path)
        text = summary.render()
        assert "resumable at view 4/10" in text
        assert "view-3" in text

    def test_summary_without_checkpoint_is_unchanged(self):
        collection = chain_collection(4)
        text = summarize_collection(collection).render()
        assert "checkpoint" not in text

    def test_absent_journal_is_none(self, tmp_path):
        assert checkpoint_status(tmp_path / "never-written.ckpt") is None

    def test_corrupt_journal_is_reported_not_hidden(self, tmp_path):
        """Regression: ``checkpoint_status`` used to swallow
        ``CheckpointError`` and return ``None``, making a damaged journal
        indistinguishable from a clean slate. It must surface as a
        corrupt (non-resumable) status with a warning render."""
        path = tmp_path / "run.ckpt"
        path.write_text("this is not a checkpoint journal\n{torn json")
        status = checkpoint_status(path)
        assert status is not None
        assert status.corrupt
        assert not status.resumable
        assert status.error
        text = status.render()
        assert "WARNING" in text
        assert "corrupt" in text
        assert str(path) in text

    def test_corrupt_journal_warning_in_summary(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text('{"record": {"type": "header"}, "sha256": "bad"}\n')
        collection = chain_collection(4)
        text = summarize_collection(collection, checkpoint_path=path).render()
        assert "WARNING" in text and "corrupt" in text

    def test_explain_via_facade(self, tmp_path, call_graph):
        from repro.core.system import Graphsurge

        session = Graphsurge()
        session.add_graph(call_graph, "Calls")
        session.execute("""create view collection hist on Calls
            [y2015: year <= 2015], [y2017: year <= 2017],
            [y2019: year <= 2019]""")
        path = tmp_path / "hist.ckpt"
        session.run_analytics(Wcc(), "hist", mode=ExecutionMode.DIFF_ONLY,
                              checkpoint_path=path)
        text = session.explain("hist", checkpoint_path=path)
        assert "checkpoint: complete (3/3 views)" in text


class TestRunOnViewName:
    def test_view_name_threads_through(self):
        from repro.graph.edge_stream import EdgeStream

        stream = EdgeStream([(0, 0, 1, 1)])
        result = AnalyticsExecutor().run_on_view(
            Wcc(), stream, view_name="my-view")
        assert result.view_name == "my-view"

    def test_default_stays_view(self):
        from repro.graph.edge_stream import EdgeStream

        stream = EdgeStream([(0, 0, 1, 1)])
        assert AnalyticsExecutor().run_on_view(Wcc(), stream).view_name \
            == "view"


class TestCli:
    def run_cli(self, tmp_path, capsys, extra):
        from repro.cli import main

        nodes = tmp_path / "nodes.csv"
        edges = tmp_path / "edges.csv"
        nodes.write_text("id\n0\n1\n2\n3\n")
        edges.write_text("src,dst,year:int\n0,1,2015\n1,2,2017\n2,3,2019\n")
        argv = [
            "--load", f"G={nodes},{edges}",
            "--execute", ("create view collection hist on G "
                          "[a: year <= 2015], [b: year <= 2017], "
                          "[c: year <= 2019]"),
            "run", "wcc", "hist", "--mode", "diff-only",
        ] + extra
        code = main(argv)
        return code, capsys.readouterr()

    def test_checkpoint_flag_writes_journal(self, tmp_path, capsys):
        path = tmp_path / "run.ckpt"
        code, captured = self.run_cli(tmp_path, capsys,
                                      ["--checkpoint", str(path)])
        assert code == 0
        assert load_checkpoint(path).is_complete()
        assert "3 views" in captured.out

    def test_resume_flag(self, tmp_path, capsys):
        path = tmp_path / "run.ckpt"
        code, _ = self.run_cli(tmp_path, capsys, ["--checkpoint", str(path)])
        assert code == 0
        code, captured = self.run_cli(
            tmp_path, capsys, ["--checkpoint", str(path), "--resume"])
        assert code == 0
        assert "resumed at view 3" in captured.out

    def test_resume_requires_checkpoint(self, tmp_path, capsys):
        code, captured = self.run_cli(tmp_path, capsys, ["--resume"])
        assert code == 1
        assert "--resume requires --checkpoint" in captured.err

    def test_budget_flag_reports_partial_progress(self, tmp_path, capsys):
        code, captured = self.run_cli(tmp_path, capsys, ["--max-work", "1"])
        assert code == 1
        assert "budget exceeded" in captured.err
        assert "partial progress" in captured.err
