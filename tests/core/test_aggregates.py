"""Aggregate views (paper §6) over the Figure 1 call graph."""

import pytest

from repro.core.aggregates import compute_aggregate_view
from repro.errors import UnknownPropertyError
from repro.gvdl.parser import parse


class TestGroupByProperty:
    def test_city_calls_city(self, call_graph):
        stmt = parse(
            "create view City-Calls-City on Calls "
            "nodes group by city "
            "aggregate num-phones: count(*) "
            "edges aggregate total-duration: sum(duration)")
        view = compute_aggregate_view(call_graph, stmt)
        cities = {n.properties["city"]: n for n in view.nodes.values()}
        assert set(cities) == {"LA", "NY"}
        assert cities["LA"].properties["num-phones"] == 5
        assert cities["NY"].properties["num-phones"] == 3
        # Every original edge lands in exactly one super-edge bucket.
        assert sum(e.properties["count"] for e in view.edges) == 15
        # Total duration is preserved across super-edges.
        total = sum(e.properties["total-duration"] for e in view.edges)
        assert total == sum(e.properties["duration"]
                            for e in call_graph.edges)

    def test_multi_property_grouping(self, call_graph):
        stmt = parse("create view v on Calls nodes group by city, profession")
        view = compute_aggregate_view(call_graph, stmt)
        labels = {n.properties["group"] for n in view.nodes.values()}
        assert "LA,Engineer" in labels
        assert len(labels) == 5

    def test_unknown_group_property(self, call_graph):
        stmt = parse("create view v on Calls nodes group by height")
        with pytest.raises(UnknownPropertyError):
            compute_aggregate_view(call_graph, stmt)

    @pytest.mark.parametrize("func,expected", [
        ("min", 1), ("max", 34), ("count", 15),
    ])
    def test_edge_aggregate_functions(self, call_graph, func, expected):
        arg = "*" if func == "count" else "duration"
        stmt = parse(
            f"create view v on Calls nodes group by city "
            f"edges aggregate out: {func}({arg})")
        view = compute_aggregate_view(call_graph, stmt)
        values = [e.properties["out"] for e in view.edges]
        if func == "count":
            assert sum(values) == expected
        elif func == "min":
            assert min(values) == expected
        else:
            assert max(values) == expected

    def test_avg_aggregate(self, call_graph):
        stmt = parse("create view v on Calls nodes group by city "
                     "aggregate avg(duration)")
        # duration is an edge property: must fail on nodes.
        with pytest.raises(UnknownPropertyError):
            compute_aggregate_view(call_graph, stmt)


class TestGroupByPredicates:
    def test_paper_triangle_view(self, call_graph):
        stmt = parse(
            "create view NY-Dr-LA-Lawyer on Calls nodes group by ["
            "(profession = 'Doctor' and city = 'NY'),"
            "(profession = 'Lawyer' and city = 'LA'),"
            "(profession = 'Engineer' and city = 'LA')]"
            " aggregate count(*)")
        view = compute_aggregate_view(call_graph, stmt)
        counts = {n.properties["group"]: n.properties["count_all"]
                  for n in view.nodes.values()}
        assert counts == {"group-0": 1, "group-1": 1, "group-2": 3}

    def test_unmatched_nodes_dropped(self, call_graph):
        stmt = parse(
            "create view v on Calls nodes group by ["
            "(city = 'LA')] aggregate count(*)")
        view = compute_aggregate_view(call_graph, stmt)
        assert view.num_nodes == 1
        # Only LA->LA edges survive.
        for edge in view.edges:
            assert edge.src == 0 and edge.dst == 0

    def test_first_matching_predicate_wins(self, call_graph):
        stmt = parse(
            "create view v on Calls nodes group by ["
            "(city = 'LA'), (profession = 'Lawyer')] aggregate count(*)")
        view = compute_aggregate_view(call_graph, stmt)
        counts = {n.properties["group"]: n.properties["count_all"]
                  for n in view.nodes.values()}
        # LA lawyer (node 8) matches the first group.
        assert counts["group-0"] == 5
        assert counts["group-1"] == 2


class TestViewsOverViews:
    def test_aggregate_of_filtered_view(self, call_graph):
        filtered = call_graph.filter_edges(
            lambda e, s, d: e.properties["year"] == 2019, name="y2019")
        stmt = parse("create view v on y2019 nodes group by city "
                     "edges aggregate total: sum(duration)")
        view = compute_aggregate_view(filtered, stmt)
        total = sum(e.properties["total"] for e in view.edges)
        assert total == sum(e.properties["duration"]
                            for e in call_graph.edges
                            if e.properties["year"] == 2019)
