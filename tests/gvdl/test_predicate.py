"""Predicate compilation and evaluation."""

import pytest

from repro.errors import GvdlTypeError, UnknownPropertyError
from repro.graph.schema import PropertyType, Schema
from repro.gvdl.parser import parse
from repro.gvdl.predicate import (
    compile_node_predicate,
    compile_predicate,
    predicate_properties,
)


def pred_of(where_clause):
    return parse(f"create view v on g edges where {where_clause}").predicate


class TestEvaluation:
    def test_edge_property_comparison(self):
        f = compile_predicate(pred_of("duration > 10"))
        assert f({"duration": 11}, {}, {})
        assert not f({"duration": 10}, {}, {})

    def test_src_dst_lookup(self):
        f = compile_predicate(pred_of("src.city = 'LA' and dst.city = 'NY'"))
        assert f({}, {"city": "LA"}, {"city": "NY"})
        assert not f({}, {"city": "NY"}, {"city": "LA"})

    def test_prop_to_prop(self):
        f = compile_predicate(pred_of("src.city = dst.city"))
        assert f({}, {"city": "LA"}, {"city": "LA"})
        assert not f({}, {"city": "LA"}, {"city": "NY"})

    @pytest.mark.parametrize("clause,props,expected", [
        ("x = 5", {"x": 5}, True),
        ("x != 5", {"x": 5}, False),
        ("x < 5", {"x": 4}, True),
        ("x <= 5", {"x": 5}, True),
        ("x > 5", {"x": 6}, True),
        ("x >= 5", {"x": 4}, False),
    ])
    def test_all_operators(self, clause, props, expected):
        assert compile_predicate(pred_of(clause))(props, {}, {}) is expected

    def test_boolean_connectives(self):
        f = compile_predicate(pred_of("not (a = 1 or b = 2)"))
        assert f({"a": 0, "b": 0}, {}, {})
        assert not f({"a": 1, "b": 0}, {}, {})

    def test_bool_literals(self):
        assert compile_predicate(pred_of("true"))({}, {}, {})
        assert not compile_predicate(pred_of("false"))({}, {}, {})

    def test_missing_property_at_eval_raises(self):
        f = compile_predicate(pred_of("x = 1"))
        with pytest.raises(UnknownPropertyError, match="no property"):
            f({}, {}, {})

    def test_type_mismatch_raises(self):
        f = compile_predicate(pred_of("x < 5"))
        with pytest.raises(GvdlTypeError, match="cannot compare"):
            f({"x": "string"}, {}, {})


class TestSchemaValidation:
    def test_unknown_edge_property_rejected(self):
        schema = Schema({"duration": PropertyType.INT})
        with pytest.raises(UnknownPropertyError, match="edge property"):
            compile_predicate(pred_of("length > 3"), edge_schema=schema)

    def test_unknown_node_property_rejected(self):
        node_schema = Schema({"city": PropertyType.STRING})
        with pytest.raises(UnknownPropertyError, match="src.state"):
            compile_predicate(pred_of("src.state = 'CA'"),
                              node_schema=node_schema)

    def test_known_properties_pass(self):
        edge_schema = Schema({"duration": PropertyType.INT})
        node_schema = Schema({"city": PropertyType.STRING})
        compile_predicate(pred_of("duration > 1 and src.city = 'LA'"),
                          edge_schema=edge_schema, node_schema=node_schema)

    def test_empty_schema_skips_validation(self):
        compile_predicate(pred_of("anything = 1"), edge_schema=Schema())


class TestNodePredicates:
    def test_bare_names_resolve_to_node(self):
        f = compile_node_predicate(pred_of("profession = 'Doctor'"))
        assert f({"profession": "Doctor"})
        assert not f({"profession": "Lawyer"})

    def test_src_dst_rejected_in_node_context(self):
        with pytest.raises(GvdlTypeError, match="not allowed"):
            compile_node_predicate(pred_of("src.city = 'LA'"))


class TestIntrospection:
    def test_predicate_properties(self):
        refs = predicate_properties(
            pred_of("src.a = 1 and dst.b = 2 or not c = 3"))
        assert refs == {("src", "a"), ("dst", "b"), ("edge", "c")}
