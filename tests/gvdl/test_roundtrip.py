"""Property test: rendered predicates re-parse to semantically equal
predicates (renderer/parser consistency)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gvdl.ast import (
    And,
    BoolLiteral,
    Comparison,
    Literal,
    Not,
    Or,
    PropRef,
)
from repro.gvdl.parser import parse
from repro.gvdl.predicate import compile_predicate

_PROPS = ["duration", "year", "city"]
_TARGETS = ["edge", "src", "dst"]
_OPS = ["=", "!=", "<", "<=", ">", ">="]

literals = st.one_of(
    st.integers(0, 100).map(Literal),
    st.sampled_from(["LA", "NY", "DC"]).map(Literal),
    st.booleans().map(Literal),
)
prop_refs = st.tuples(st.sampled_from(_TARGETS),
                      st.sampled_from(_PROPS)).map(
    lambda pair: PropRef(pair[0], pair[1]))
comparisons = st.tuples(prop_refs, st.sampled_from(_OPS), literals).map(
    lambda triple: Comparison(triple[0], triple[1], triple[2]))


def predicates(depth=2):
    if depth == 0:
        return st.one_of(comparisons, st.booleans().map(BoolLiteral))
    sub = predicates(depth - 1)
    return st.one_of(
        comparisons,
        st.booleans().map(BoolLiteral),
        sub.map(Not),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda ops: And(tuple(ops))),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda ops: Or(tuple(ops))),
    )


def random_props(rng):
    return ({"duration": rng.randrange(100), "year": rng.randrange(100),
             "city": rng.choice(["LA", "NY", "DC", True, 5])},
            {"duration": rng.randrange(100), "year": rng.randrange(100),
             "city": rng.choice(["LA", "NY"])},
            {"duration": rng.randrange(100), "year": rng.randrange(100),
             "city": rng.choice(["LA", "DC"])})


@settings(max_examples=60, deadline=None)
@given(predicates(), st.integers(0, 1000))
def test_rendered_predicate_reparses_equivalently(predicate, seed):
    rendered = str(predicate)
    reparsed = parse(
        f"create view v on g edges where {rendered}").predicate
    original_fn = compile_predicate(predicate)
    reparsed_fn = compile_predicate(reparsed)
    rng = random.Random(seed)
    for _ in range(5):
        eprops, sprops, dprops = random_props(rng)
        try:
            expected = original_fn(eprops, sprops, dprops)
        except Exception as error:  # type mismatches must match too
            with pytest.raises(type(error)):
                reparsed_fn(eprops, sprops, dprops)
            continue
        assert reparsed_fn(eprops, sprops, dprops) == expected, rendered
