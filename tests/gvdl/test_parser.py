"""GVDL parser tests over the paper's listings and error paths."""

import pytest

from repro.errors import GvdlSyntaxError
from repro.gvdl.ast import (
    AggregateViewStmt,
    And,
    BoolLiteral,
    FilteredViewStmt,
    GroupByPredicates,
    GroupByProperties,
    Literal,
    Not,
    Or,
    PropRef,
    ViewCollectionStmt,
)
from repro.gvdl.parser import parse, parse_program


class TestFilteredViews:
    def test_listing_1(self):
        stmt = parse(
            "create view CA-Long-Calls on Calls edges where "
            "src.state = 'CA' and dst.state = 'CA' and duration > 10 "
            "and year = 2019")
        assert isinstance(stmt, FilteredViewStmt)
        assert stmt.name == "CA-Long-Calls"
        assert stmt.source == "Calls"
        assert isinstance(stmt.predicate, And)
        assert len(stmt.predicate.operands) == 4

    def test_src_dst_and_edge_refs(self):
        stmt = parse("create view v on g edges where src.a = 1 and "
                     "dst.b = 2 and c = 3")
        refs = stmt.predicate.operands
        assert refs[0].left == PropRef("src", "a")
        assert refs[1].left == PropRef("dst", "b")
        assert refs[2].left == PropRef("edge", "c")

    def test_literal_types(self):
        stmt = parse("create view v on g edges where a = 'x' and b = 5 "
                     "and c = true and d = false")
        literals = [c.right for c in stmt.predicate.operands]
        assert literals == [Literal("x"), Literal(5), Literal(True),
                            Literal(False)]

    def test_operator_precedence_or_binds_loosest(self):
        stmt = parse("create view v on g edges where a = 1 and b = 2 "
                     "or c = 3")
        assert isinstance(stmt.predicate, Or)
        assert isinstance(stmt.predicate.operands[0], And)

    def test_parentheses_override(self):
        stmt = parse("create view v on g edges where a = 1 and "
                     "(b = 2 or c = 3)")
        assert isinstance(stmt.predicate, And)
        assert isinstance(stmt.predicate.operands[1], Or)

    def test_not_and_diamond_operator(self):
        stmt = parse("create view v on g edges where not a <> 1")
        assert isinstance(stmt.predicate, Not)
        assert stmt.predicate.operand.op == "!="

    def test_prop_to_prop_comparison(self):
        stmt = parse("create view v on g edges where src.city = dst.city")
        cmp = stmt.predicate
        assert cmp.left == PropRef("src", "city")
        assert cmp.right == PropRef("dst", "city")


class TestViewCollections:
    def test_listing_3(self):
        stmt = parse(
            "create view collection call-analysis on Calls "
            "[D1-Y2010: duration <= 1 and year <= 2010], "
            "[D2-Y2010: duration <= 2 and year <= 2010], "
            "[D34-Y2010: duration <= 34 and year <= 2010]")
        assert isinstance(stmt, ViewCollectionStmt)
        assert [name for name, _p in stmt.views] == [
            "D1-Y2010", "D2-Y2010", "D34-Y2010"]

    def test_single_view_collection(self):
        stmt = parse("create view collection c on g [only: x = 1]")
        assert len(stmt.views) == 1

    def test_missing_bracket_raises(self):
        with pytest.raises(GvdlSyntaxError):
            parse("create view collection c on g only: x = 1")


class TestAggregateViews:
    def test_listing_4_city_calls(self):
        stmt = parse(
            "create view City-Calls-City on Calls "
            "nodes group by city aggregate num-phones: count(*) "
            "edges aggregate total-duration: sum(duration)")
        assert isinstance(stmt, AggregateViewStmt)
        assert stmt.group_by == GroupByProperties(("city",))
        assert stmt.node_aggregates[0].name == "num-phones"
        assert stmt.node_aggregates[0].func == "count"
        assert stmt.edge_aggregates[0].func == "sum"
        assert stmt.edge_aggregates[0].arg == "duration"

    def test_listing_4_predicate_groups(self):
        stmt = parse(
            "create view g on Calls nodes group by ["
            "(profession = 'Doctor' and city = 'NY'),"
            "(profession = 'Lawyer' and city = 'LA')]"
            " aggregate count(*)")
        assert isinstance(stmt.group_by, GroupByPredicates)
        assert len(stmt.group_by.predicates) == 2
        assert stmt.node_aggregates[0].output_name() == "count_all"

    def test_group_by_multiple_properties(self):
        stmt = parse("create view v on g nodes group by city, state")
        assert stmt.group_by == GroupByProperties(("city", "state"))

    def test_all_aggregate_functions(self):
        stmt = parse("create view v on g nodes group by city aggregate "
                     "count(*), sum(x), min(x), max(x), avg(x)")
        assert [a.func for a in stmt.node_aggregates] == [
            "count", "sum", "min", "max", "avg"]

    def test_star_only_for_count(self):
        with pytest.raises(GvdlSyntaxError, match=r"sum\(\*\)"):
            parse("create view v on g nodes group by c aggregate sum(*)")


class TestPrograms:
    def test_multiple_statements(self):
        statements = parse_program(
            "create view a on g edges where x = 1; "
            "create view b on g edges where y = 2;")
        assert len(statements) == 2

    def test_parse_rejects_multiple(self):
        with pytest.raises(GvdlSyntaxError, match="exactly one"):
            parse("create view a on g edges where x = 1; "
                  "create view b on g edges where y = 2")

    def test_empty_program(self):
        assert parse_program("") == []
        assert parse_program("  # just a comment\n") == []

    def test_garbage_statement(self):
        with pytest.raises(GvdlSyntaxError, match="expected 'create'"):
            parse_program("drop view v")

    def test_bool_literal_predicate(self):
        stmt = parse("create view v on g edges where true")
        assert stmt.predicate == BoolLiteral(True)

    def test_missing_comparison_operator(self):
        with pytest.raises(GvdlSyntaxError, match="comparison"):
            parse("create view v on g edges where duration")

    def test_str_rendering_round_readable(self):
        stmt = parse("create view v on g edges where "
                     "not (a = 1 or src.b >= 'x')")
        rendered = str(stmt.predicate)
        assert "not" in rendered and "or" in rendered
        assert "src.b" in rendered
