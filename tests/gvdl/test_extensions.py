"""GVDL language extensions: BETWEEN and IN."""

import pytest

from repro.errors import GvdlSyntaxError
from repro.gvdl.ast import And, Comparison, Not, Or
from repro.gvdl.parser import parse
from repro.gvdl.predicate import compile_predicate


def pred_of(clause):
    return parse(f"create view v on g edges where {clause}").predicate


class TestBetween:
    def test_desugars_to_range(self):
        predicate = pred_of("year between 2010 and 2015")
        assert isinstance(predicate, And)
        ops = [c.op for c in predicate.operands]
        assert ops == [">=", "<="]

    def test_evaluates(self):
        f = compile_predicate(pred_of("year between 2010 and 2015"))
        assert f({"year": 2012}, {}, {})
        assert f({"year": 2010}, {}, {})
        assert f({"year": 2015}, {}, {})
        assert not f({"year": 2016}, {}, {})

    def test_composes_with_and(self):
        f = compile_predicate(
            pred_of("year between 2010 and 2015 and duration > 3"))
        assert f({"year": 2012, "duration": 5}, {}, {})
        assert not f({"year": 2012, "duration": 2}, {}, {})

    def test_src_properties(self):
        f = compile_predicate(pred_of("src.age between 20 and 30"))
        assert f({}, {"age": 25}, {})
        assert not f({}, {"age": 31}, {})

    def test_incomplete_between(self):
        with pytest.raises(GvdlSyntaxError):
            pred_of("year between 2010")


class TestIn:
    def test_desugars_to_disjunction(self):
        predicate = pred_of("city in ('LA', 'NY', 'DC')")
        assert isinstance(predicate, Or)
        assert all(c.op == "=" for c in predicate.operands)

    def test_single_element(self):
        predicate = pred_of("city in ('LA')")
        assert isinstance(predicate, Comparison)

    def test_evaluates(self):
        f = compile_predicate(pred_of("city in ('LA', 'NY')"))
        assert f({"city": "LA"}, {}, {})
        assert not f({"city": "DC"}, {}, {})

    def test_not_in(self):
        predicate = pred_of("city not in ('LA', 'NY')")
        assert isinstance(predicate, Not)
        f = compile_predicate(predicate)
        assert f({"city": "DC"}, {}, {})
        assert not f({"city": "LA"}, {}, {})

    def test_numbers(self):
        f = compile_predicate(pred_of("year in (2010, 2012)"))
        assert f({"year": 2012}, {}, {})
        assert not f({"year": 2011}, {}, {})

    def test_empty_list_rejected(self):
        with pytest.raises(GvdlSyntaxError):
            pred_of("city in ()")

    def test_in_within_collection_statement(self):
        stmt = parse(
            "create view collection c on g "
            "[a: city in ('LA') and year between 2010 and 2012], "
            "[b: city not in ('LA')]")
        assert len(stmt.views) == 2
