"""GVDL lexer tests."""

import pytest

from repro.errors import GvdlSyntaxError
from repro.gvdl.lexer import tokenize
from repro.gvdl.tokens import TokenType


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("CREATE View") == [
            (TokenType.KEYWORD, "create"), (TokenType.KEYWORD, "view")]

    def test_hyphenated_identifiers(self):
        assert kinds("call-analysis D1-Y2010") == [
            (TokenType.IDENT, "call-analysis"),
            (TokenType.IDENT, "D1-Y2010")]

    def test_numbers_and_comparisons(self):
        assert kinds("duration<=34") == [
            (TokenType.IDENT, "duration"),
            (TokenType.SYMBOL, "<="),
            (TokenType.NUMBER, 34)]

    def test_string_literal(self):
        assert kinds("'CA'") == [(TokenType.STRING, "CA")]

    def test_unterminated_string(self):
        with pytest.raises(GvdlSyntaxError, match="unterminated"):
            tokenize("'CA")

    def test_all_symbols(self):
        text = "( ) [ ] , : . = != <> <= >= < > * ;"
        values = [v for _t, v in kinds(text)]
        assert values == ["(", ")", "[", "]", ",", ":", ".", "=", "!=",
                          "<>", "<=", ">=", "<", ">", "*", ";"]

    def test_comments_skipped(self):
        assert kinds("# a comment\nview") == [(TokenType.KEYWORD, "view")]

    def test_unexpected_character(self):
        with pytest.raises(GvdlSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_eof_token_present(self):
        tokens = tokenize("a")
        assert tokens[-1].type is TokenType.EOF

    def test_position_tracking(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4
