"""The epoch-validated, stale-retaining result cache."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.serve.cache import ResultCache


class TestLookup:
    def test_miss_then_fresh_hit(self):
        cache = ResultCache()
        assert cache.lookup("k", 0) == ("miss", None)
        cache.store("k", {"answer": 1}, epoch=0)
        state, entry = cache.lookup("k", 0)
        assert state == "fresh"
        assert entry.value == {"answer": 1}
        assert cache.stats.hits == 1

    def test_epoch_bump_makes_entry_stale_not_gone(self):
        cache = ResultCache()
        cache.store("k", {"answer": 1}, epoch=0)
        state, entry = cache.lookup("k", 1)
        assert state == "stale"
        assert entry is not None and entry.epoch == 0
        # Stale classification alone is not a served stale answer.
        assert cache.stats.stale_serves == 0
        cache.record_stale_serve(entry)
        assert cache.stats.stale_serves == 1
        assert entry.stale_hits == 1

    def test_refill_restores_freshness_and_counts_fills(self):
        cache = ResultCache()
        cache.store("k", {"v": 0}, epoch=0)
        cache.store("k", {"v": 1}, epoch=1)
        state, entry = cache.lookup("k", 1)
        assert state == "fresh"
        assert entry.value == {"v": 1}
        assert cache.fills_for("k") == 2
        assert cache.stats.fills == 2


class TestEviction:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.store("a", 1, epoch=0)
        cache.store("b", 2, epoch=0)
        cache.lookup("a", 0)  # touch a: b becomes least-recent
        cache.store("c", 3, epoch=0)
        assert cache.lookup("b", 0) == ("miss", None)
        assert cache.lookup("a", 0)[0] == "fresh"
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            ResultCache(capacity=0)

    def test_invalidate_all(self):
        cache = ResultCache()
        cache.store("a", 1, epoch=0)
        cache.store("b", 2, epoch=0)
        assert cache.invalidate_all() == 2
        assert cache.lookup("a", 0) == ("miss", None)


class TestSingleFlight:
    def test_lock_is_per_key_and_stable(self):
        async def scenario():
            cache = ResultCache()
            assert cache.lock_for("k") is cache.lock_for("k")
            assert cache.lock_for("k") is not cache.lock_for("other")

        asyncio.run(scenario())


class TestPayload:
    def test_to_payload_shape(self):
        cache = ResultCache(capacity=8)
        cache.store("k", 1, epoch=0)
        cache.lookup("k", 0)
        payload = cache.to_payload()
        assert payload == {"entries": 1, "capacity": 8, "hits": 1,
                           "stale_serves": 0, "misses": 0, "fills": 1,
                           "evictions": 0}
