"""Satellite 2: the GraphsurgeError taxonomy maps uniformly to payloads."""

import pytest

from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    ConfigError,
    GraphsurgeError,
    GvdlSyntaxError,
    InjectedFault,
    OverloadedError,
    RequestError,
    ShuttingDownError,
    UnknownGraphError,
)


class TestPayloadShape:
    def test_every_payload_has_code_message_context(self):
        errors = [
            GraphsurgeError("generic"),
            ConfigError("bad knob"),
            UnknownGraphError("no such graph"),
            RequestError("bad body"),
            ShuttingDownError("draining"),
            InjectedFault("operator", 3),
            BudgetExceededError("work", 10, 5, site="step"),
            OverloadedError(2, 4, 2, 4),
            CircuitOpenError("wcc", 3, 12.5),
        ]
        for error in errors:
            payload = error.to_payload()
            assert set(payload) == {"error", "message", "context"}, error
            assert payload["error"] == type(error).code
            assert payload["message"] == str(error)
            assert isinstance(payload["context"], dict)

    def test_statuses_cover_the_http_mapping(self):
        assert GraphsurgeError("x").http_status == 500
        assert ConfigError("x").http_status == 400
        assert RequestError("x").http_status == 400
        assert UnknownGraphError("x").http_status == 404
        assert OverloadedError(1, 1, 1, 1).http_status == 429
        assert CircuitOpenError("x", 1, 1.0).http_status == 503
        assert ShuttingDownError("x").http_status == 503
        assert BudgetExceededError("work", 2, 1).http_status == 503


class TestStructuredContext:
    def test_budget_context(self):
        context = BudgetExceededError(
            "wall_seconds", 1.5, 1.0, site="view:old").to_payload()["context"]
        assert context == {"limit": "wall_seconds", "spent": 1.5,
                           "allowed": 1.0, "site": "view:old"}

    def test_injected_fault_context(self):
        context = InjectedFault("epoch", 7).to_payload()["context"]
        assert context == {"site": "epoch", "invocation": 7}

    def test_syntax_error_context_carries_position(self):
        from repro.gvdl.parser import parse

        with pytest.raises(GvdlSyntaxError) as caught:
            parse("create nonsense;")
        payload = caught.value.to_payload()
        assert payload["error"] == "gvdl-syntax"
        assert caught.value.http_status == 400


class TestBackwardCompatibility:
    def test_config_error_is_value_error(self):
        error = ConfigError("bad")
        assert isinstance(error, ValueError)
        assert isinstance(error, GraphsurgeError)
