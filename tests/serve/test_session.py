"""Resident session state: the delta economy, mutation, checkpointing.

The acceptance demo lives here: two requests against one session where
the second, overlapping view collection is answered from resident
arrangements with *fewer work units*, asserted via the meter figures the
payload carries.
"""

import copy

import pytest

from repro.core.resilience import FaultPlan, load_checkpoint
from repro.core.system import Graphsurge
from repro.errors import (
    CheckpointError,
    InjectedFault,
    RequestError,
    UnknownGraphError,
)
from repro.serve.session import (
    ResidentDataflow,
    ServeSession,
    build_request_computation,
    computation_signature,
    multiset_delta,
)

WCC = computation_signature("wcc", {})


def wcc_run(session, target, **kwargs):
    return session.run(WCC, build_request_computation("wcc", {}), target,
                       **kwargs)


class TestRequestComputations:
    def test_known_names_build(self):
        assert build_request_computation("wcc", {}).name == "WCC"
        assert build_request_computation(
            "bfs", {"source": 1}).source == 1
        assert build_request_computation(
            "pagerank", {"iterations": 3}).iterations == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(RequestError, match="unknown computation"):
            build_request_computation("frobnicate", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(RequestError, match="unknown computation param"):
            build_request_computation("wcc", {"sauce": 1})

    def test_signature_is_canonical(self):
        assert computation_signature("WCC") == computation_signature(
            "wcc", {})
        assert computation_signature(
            "bfs", {"source": 1}) != computation_signature(
            "bfs", {"source": 2})


class TestMultisetDelta:
    def test_delta_advances_current_to_target(self):
        current = {"a": 1, "b": 2, "c": 1}
        target = {"a": 1, "b": 1, "d": 3}
        delta = multiset_delta(current, target)
        assert delta == {"b": -1, "c": -1, "d": 3}
        merged = dict(current)
        for record, mult in delta.items():
            merged[record] = merged.get(record, 0) + mult
        assert {k: v for k, v in merged.items() if v} == target

    def test_identical_multisets_have_empty_delta(self):
        assert multiset_delta({"a": 2}, {"a": 2}) == {}

    def test_zero_multiplicity_entries_in_current_are_ignored(self):
        # An (unconsolidated) zero entry in `current` must not emit a
        # spurious retraction, and a zero entry missing from `target`
        # must not emit -0.
        current = {"a": 0, "b": 1, "c": 0}
        target = {"a": 2, "b": 1}
        assert multiset_delta(current, target) == {"a": 2}

    def test_retract_to_empty_target(self):
        current = {"x": 3, "y": 1}
        assert multiset_delta(current, {}) == {"x": -3, "y": -1}

    def test_equal_counts_on_both_sides_cancel(self):
        current = {"x": 2, "y": 5, "z": 1}
        target = {"x": 2, "y": 5, "z": 4}
        assert multiset_delta(current, target) == {"z": 3}


class TestRenderOutput:
    """Regression: repr is not a canonical total order for records."""

    def test_mixed_type_keys_sort_by_canonical_order(self):
        from repro.serve.session import render_output

        # repr-sorting puts ("a", 2) before (1, "b") (quote < digit) and
        # (10, ...) before (9, ...) (string compare); the canonical order
        # ranks numbers before strings and compares them numerically.
        output = {(10, "j"): 1, (9, "i"): 1, (1, "b"): 1, ("a", 2): 1}
        rendered = render_output(output)
        assert rendered == [
            [{"t": [1, "b"]}, 1],
            [{"t": [9, "i"]}, 1],
            [{"t": [10, "j"]}, 1],
            [{"t": ["a", 2]}, 1],
        ]

    def test_equal_valued_numeric_spellings_sort_identically(self):
        from repro.serve.session import render_output
        from repro.timely.worker import canonical_order_key

        # 3 and 3.0 compare (and stable_hash) equal, so whichever spelling
        # a run's dict representative holds, its sort position is the same.
        ints = render_output({(3, "a"): 1, (2, "b"): 1, (4, "c"): 1})
        floats = render_output({(3.0, "a"): 1, (2, "b"): 1, (4, "c"): 1})
        assert [entry[0]["t"][1] for entry in ints] == ["b", "a", "c"]
        assert [entry[0]["t"][1] for entry in floats] == ["b", "a", "c"]
        assert canonical_order_key((3, "a")) == canonical_order_key(
            (3.0, "a"))


def _wcc_input(*edges):
    """Symmetric (src, (dst, w)) input multiset for a WCC dataflow."""
    diff = {}
    for src, dst in edges:
        for rec in ((src, (dst, 1)), (dst, (src, 1))):
            diff[rec] = diff.get(rec, 0) + 1
    return diff


class TestPoisonHardening:
    """A poisoned resident must release its dataflow unconditionally."""

    def test_poison_clears_state_even_when_close_raises(self):
        resident = ResidentDataflow(build_request_computation("wcc", {}))
        resident.advance(_wcc_input((1, 2)))

        def exploding_close():
            raise RuntimeError("close failed")

        resident.dataflow.close = exploding_close
        with pytest.raises(RuntimeError, match="close failed"):
            resident.poison()
        # Even though close() raised, the resident must not keep a
        # reference to the half-closed dataflow: the next advance has to
        # rebuild from scratch, not step a poisoned instance.
        assert resident.dataflow is None
        assert resident.capture is None
        assert resident.current == {}
        output, _ = resident.advance(_wcc_input((1, 2)))
        assert output
        assert resident.rebuilds == 2

    def test_fresh_rebuild_steps_even_for_empty_delta(self):
        resident = ResidentDataflow(build_request_computation("wcc", {}))
        resident.advance(_wcc_input((1, 2)))
        resident.poison()
        # The zero-delta shortcut must be gated on *this build* having
        # been stepped, not on the lifetime epochs_fed counter — else a
        # rebuilt dataflow reads output off epoch -1 it never computed.
        output, _ = resident.advance({})
        assert resident.dataflow.epoch == 0
        assert output == {}

    def test_injected_fault_releases_process_workers(self):
        import multiprocessing

        before = set(multiprocessing.active_children())
        plan = FaultPlan.single("epoch", 1)  # fire on the second step
        resident = ResidentDataflow(
            build_request_computation("wcc", {}), workers=2,
            backend="process", fault_plan=plan)
        first = _wcc_input((1, 2))
        second = _wcc_input((1, 2), (2, 3))
        resident.advance(first)
        with pytest.raises(InjectedFault):
            resident.advance(second)
        assert resident.dataflow is None
        # The worker children forked for the poisoned dataflow must be
        # gone — poison() closes the cluster, it does not abandon it.
        leaked = set(multiprocessing.active_children()) - before
        assert not leaked
        # The rebuilt resident absorbs the full target and answers.
        output, _ = resident.advance(second)
        assert output == {(1, 1): 1, (2, 1): 1, (3, 1): 1}
        assert resident.rebuilds == 2
        resident.poison()


class TestResidentEconomy:
    def test_overlapping_collection_costs_fewer_work_units(
            self, serve_session):
        """The acceptance demo: overlap across requests is nearly free."""
        serve_session.execute_gvdl(
            "create view collection early on Calls "
            "[old: year <= 2015], [mid: year <= 2018];")
        serve_session.execute_gvdl(
            "create view collection late on Calls "
            "[mid2: year <= 2018], [all: year <= 2030];")
        first = wcc_run(serve_session, "early")
        second = wcc_run(serve_session, "late")
        # The resident dataflow ends request 1 at `mid`; request 2's first
        # view is the same edge multiset, so it costs zero work.
        assert first["total_work"] > 0
        assert second["views"][0]["work"] == 0
        assert second["total_work"] > 0
        # Answers still match a cold session computing `late` from
        # scratch — which has to pay for the full first view the resident
        # arrangements already hold.
        cold_gs = Graphsurge()
        cold_gs.add_graph(
            copy.deepcopy(serve_session.gs.graphs.get("Calls")), "Calls")
        cold = ServeSession(cold_gs)
        cold.execute_gvdl(
            "create view collection late on Calls "
            "[mid2: year <= 2018], [all: year <= 2030];")
        cold_run = wcc_run(cold, "late")
        assert [view["output"] for view in second["views"]] == \
            [view["output"] for view in cold_run["views"]]
        assert second["total_work"] < cold_run["total_work"]

    def test_repeat_request_is_zero_work(self, serve_session):
        first = wcc_run(serve_session, "Calls")
        again = wcc_run(serve_session, "Calls")
        assert first["total_work"] > 0
        assert again["total_work"] == 0
        assert [view["output"] for view in again["views"]] == \
            [view["output"] for view in first["views"]]

    def test_mutation_absorbed_as_delta(self, serve_session, call_graph):
        cold = wcc_run(serve_session, "Calls")
        serve_session.mutate("Calls", add_edges=[(1, 8, {
            "duration": 5, "year": 2020})])
        assert serve_session.epoch == 1
        fresh = wcc_run(serve_session, "Calls")
        assert 0 < fresh["total_work"] < cold["total_work"]
        assert fresh["epoch"] == 1
        resident = serve_session._residents[WCC]
        assert resident.rebuilds == 1  # no rebuild for the mutation

    def test_mutation_rematerializes_views(self, serve_session):
        serve_session.execute_gvdl(
            "create view recent on Calls edges where year >= 2019;")
        before = serve_session.gs.resolve("recent").num_edges
        serve_session.mutate("Calls", add_edges=[(1, 8, {
            "duration": 5, "year": 2020})])
        assert serve_session.gs.resolve("recent").num_edges == before + 1

    def test_mutation_on_unknown_graph_rejected(self, serve_session):
        with pytest.raises(UnknownGraphError):
            serve_session.mutate("nope", add_edges=[(1, 2, {})])

    def test_retraction_shrinks_graph(self, serve_session):
        before = serve_session.gs.resolve("Calls").num_edges
        counts = serve_session.mutate("Calls", retract_edges=[(1, 2)])
        assert counts["edges_removed"] == 1
        assert serve_session.gs.resolve("Calls").num_edges == before - 1


class TestIntrospection:
    def test_describe_and_resident_memory(self, serve_session):
        serve_session.execute_gvdl(
            "create view recent on Calls edges where year >= 2019;")
        wcc_run(serve_session, "Calls")
        description = serve_session.describe()
        assert description["graphs"] == ["Calls"]
        assert description["views"] == ["recent"]
        assert description["epoch"] == 0
        assert description["journal_entries"] == 1
        memory = serve_session.resident_memory()
        assert memory["total_records"] > 0
        assert memory["residents"][WCC]["epochs_fed"] == 1


class TestCheckpointRestore:
    def test_roundtrip_reproduces_state(self, call_graph, tmp_path):
        # The session gets its own copy: replay must start from the graph
        # as loaded, *before* the journaled mutation was applied.
        gs = Graphsurge()
        gs.add_graph(copy.deepcopy(call_graph), "Calls")
        session = ServeSession(gs)
        session.execute_gvdl(
            "create view collection hist on Calls "
            "[old: year <= 2015], [all: year <= 2030];")
        session.mutate("Calls", add_edges=[(1, 8, {
            "duration": 5, "year": 2020})])
        original = wcc_run(session, "hist")
        path = tmp_path / "session.ckpt"
        assert session.checkpoint(path) == 2

        pristine = Graphsurge()
        pristine.add_graph(copy.deepcopy(call_graph), "Calls")
        restored = ServeSession(pristine)
        state = restored.restore(path)
        assert state is not None and state.completed_views == 2
        assert restored.epoch == 1
        assert restored.describe()["collections"] == ["hist"]
        replayed = wcc_run(restored, "hist")
        assert [view["output"] for view in replayed["views"]] == \
            [view["output"] for view in original["views"]]

    def test_restore_missing_file_is_none(self, serve_session, tmp_path):
        assert serve_session.restore(tmp_path / "absent.ckpt") is None

    def test_restore_rejects_foreign_journal(self, serve_session,
                                             tmp_path):
        from repro.core.resilience import CheckpointWriter

        path = tmp_path / "foreign.ckpt"
        CheckpointWriter.fresh(path, {"kind": "run"}).close()
        with pytest.raises(CheckpointError, match="serve-session"):
            serve_session.restore(path)

    def test_restore_requires_base_graphs(self, serve_session, tmp_path):
        path = tmp_path / "session.ckpt"
        serve_session.checkpoint(path)
        empty = ServeSession(Graphsurge())
        with pytest.raises(UnknownGraphError, match="Calls"):
            empty.restore(path)

    def test_checkpoint_readable_by_pr1_loader(self, serve_session,
                                               tmp_path):
        serve_session.execute_gvdl(
            "create view recent on Calls edges where year >= 2019;")
        path = tmp_path / "session.ckpt"
        serve_session.checkpoint(path)
        state = load_checkpoint(path)
        assert state.header["kind"] == "serve-session"
        assert not state.truncated
        assert state.views[0]["kind"] == "gvdl"
