"""Resident session state: the delta economy, mutation, checkpointing.

The acceptance demo lives here: two requests against one session where
the second, overlapping view collection is answered from resident
arrangements with *fewer work units*, asserted via the meter figures the
payload carries.
"""

import copy

import pytest

from repro.core.resilience import load_checkpoint
from repro.core.system import Graphsurge
from repro.errors import (
    CheckpointError,
    RequestError,
    UnknownGraphError,
)
from repro.serve.session import (
    ServeSession,
    build_request_computation,
    computation_signature,
    multiset_delta,
)

WCC = computation_signature("wcc", {})


def wcc_run(session, target, **kwargs):
    return session.run(WCC, build_request_computation("wcc", {}), target,
                       **kwargs)


class TestRequestComputations:
    def test_known_names_build(self):
        assert build_request_computation("wcc", {}).name == "WCC"
        assert build_request_computation(
            "bfs", {"source": 1}).source == 1
        assert build_request_computation(
            "pagerank", {"iterations": 3}).iterations == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(RequestError, match="unknown computation"):
            build_request_computation("frobnicate", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(RequestError, match="unknown computation param"):
            build_request_computation("wcc", {"sauce": 1})

    def test_signature_is_canonical(self):
        assert computation_signature("WCC") == computation_signature(
            "wcc", {})
        assert computation_signature(
            "bfs", {"source": 1}) != computation_signature(
            "bfs", {"source": 2})


class TestMultisetDelta:
    def test_delta_advances_current_to_target(self):
        current = {"a": 1, "b": 2, "c": 1}
        target = {"a": 1, "b": 1, "d": 3}
        delta = multiset_delta(current, target)
        assert delta == {"b": -1, "c": -1, "d": 3}
        merged = dict(current)
        for record, mult in delta.items():
            merged[record] = merged.get(record, 0) + mult
        assert {k: v for k, v in merged.items() if v} == target

    def test_identical_multisets_have_empty_delta(self):
        assert multiset_delta({"a": 2}, {"a": 2}) == {}


class TestResidentEconomy:
    def test_overlapping_collection_costs_fewer_work_units(
            self, serve_session):
        """The acceptance demo: overlap across requests is nearly free."""
        serve_session.execute_gvdl(
            "create view collection early on Calls "
            "[old: year <= 2015], [mid: year <= 2018];")
        serve_session.execute_gvdl(
            "create view collection late on Calls "
            "[mid2: year <= 2018], [all: year <= 2030];")
        first = wcc_run(serve_session, "early")
        second = wcc_run(serve_session, "late")
        # The resident dataflow ends request 1 at `mid`; request 2's first
        # view is the same edge multiset, so it costs zero work.
        assert first["total_work"] > 0
        assert second["views"][0]["work"] == 0
        assert second["total_work"] > 0
        # Answers still match a cold session computing `late` from
        # scratch — which has to pay for the full first view the resident
        # arrangements already hold.
        cold_gs = Graphsurge()
        cold_gs.add_graph(
            copy.deepcopy(serve_session.gs.graphs.get("Calls")), "Calls")
        cold = ServeSession(cold_gs)
        cold.execute_gvdl(
            "create view collection late on Calls "
            "[mid2: year <= 2018], [all: year <= 2030];")
        cold_run = wcc_run(cold, "late")
        assert [view["output"] for view in second["views"]] == \
            [view["output"] for view in cold_run["views"]]
        assert second["total_work"] < cold_run["total_work"]

    def test_repeat_request_is_zero_work(self, serve_session):
        first = wcc_run(serve_session, "Calls")
        again = wcc_run(serve_session, "Calls")
        assert first["total_work"] > 0
        assert again["total_work"] == 0
        assert [view["output"] for view in again["views"]] == \
            [view["output"] for view in first["views"]]

    def test_mutation_absorbed_as_delta(self, serve_session, call_graph):
        cold = wcc_run(serve_session, "Calls")
        serve_session.mutate("Calls", add_edges=[(1, 8, {
            "duration": 5, "year": 2020})])
        assert serve_session.epoch == 1
        fresh = wcc_run(serve_session, "Calls")
        assert 0 < fresh["total_work"] < cold["total_work"]
        assert fresh["epoch"] == 1
        resident = serve_session._residents[WCC]
        assert resident.rebuilds == 1  # no rebuild for the mutation

    def test_mutation_rematerializes_views(self, serve_session):
        serve_session.execute_gvdl(
            "create view recent on Calls edges where year >= 2019;")
        before = serve_session.gs.resolve("recent").num_edges
        serve_session.mutate("Calls", add_edges=[(1, 8, {
            "duration": 5, "year": 2020})])
        assert serve_session.gs.resolve("recent").num_edges == before + 1

    def test_mutation_on_unknown_graph_rejected(self, serve_session):
        with pytest.raises(UnknownGraphError):
            serve_session.mutate("nope", add_edges=[(1, 2, {})])

    def test_retraction_shrinks_graph(self, serve_session):
        before = serve_session.gs.resolve("Calls").num_edges
        counts = serve_session.mutate("Calls", retract_edges=[(1, 2)])
        assert counts["edges_removed"] == 1
        assert serve_session.gs.resolve("Calls").num_edges == before - 1


class TestIntrospection:
    def test_describe_and_resident_memory(self, serve_session):
        serve_session.execute_gvdl(
            "create view recent on Calls edges where year >= 2019;")
        wcc_run(serve_session, "Calls")
        description = serve_session.describe()
        assert description["graphs"] == ["Calls"]
        assert description["views"] == ["recent"]
        assert description["epoch"] == 0
        assert description["journal_entries"] == 1
        memory = serve_session.resident_memory()
        assert memory["total_records"] > 0
        assert memory["residents"][WCC]["epochs_fed"] == 1


class TestCheckpointRestore:
    def test_roundtrip_reproduces_state(self, call_graph, tmp_path):
        # The session gets its own copy: replay must start from the graph
        # as loaded, *before* the journaled mutation was applied.
        gs = Graphsurge()
        gs.add_graph(copy.deepcopy(call_graph), "Calls")
        session = ServeSession(gs)
        session.execute_gvdl(
            "create view collection hist on Calls "
            "[old: year <= 2015], [all: year <= 2030];")
        session.mutate("Calls", add_edges=[(1, 8, {
            "duration": 5, "year": 2020})])
        original = wcc_run(session, "hist")
        path = tmp_path / "session.ckpt"
        assert session.checkpoint(path) == 2

        pristine = Graphsurge()
        pristine.add_graph(copy.deepcopy(call_graph), "Calls")
        restored = ServeSession(pristine)
        state = restored.restore(path)
        assert state is not None and state.completed_views == 2
        assert restored.epoch == 1
        assert restored.describe()["collections"] == ["hist"]
        replayed = wcc_run(restored, "hist")
        assert [view["output"] for view in replayed["views"]] == \
            [view["output"] for view in original["views"]]

    def test_restore_missing_file_is_none(self, serve_session, tmp_path):
        assert serve_session.restore(tmp_path / "absent.ckpt") is None

    def test_restore_rejects_foreign_journal(self, serve_session,
                                             tmp_path):
        from repro.core.resilience import CheckpointWriter

        path = tmp_path / "foreign.ckpt"
        CheckpointWriter.fresh(path, {"kind": "run"}).close()
        with pytest.raises(CheckpointError, match="serve-session"):
            serve_session.restore(path)

    def test_restore_requires_base_graphs(self, serve_session, tmp_path):
        path = tmp_path / "session.ckpt"
        serve_session.checkpoint(path)
        empty = ServeSession(Graphsurge())
        with pytest.raises(UnknownGraphError, match="Calls"):
            empty.restore(path)

    def test_checkpoint_readable_by_pr1_loader(self, serve_session,
                                               tmp_path):
        serve_session.execute_gvdl(
            "create view recent on Calls edges where year >= 2019;")
        path = tmp_path / "session.ckpt"
        serve_session.checkpoint(path)
        state = load_checkpoint(path)
        assert state.header["kind"] == "serve-session"
        assert not state.truncated
        assert state.views[0]["kind"] == "gvdl"
