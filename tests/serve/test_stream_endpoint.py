"""The ``/stream`` endpoint: open / ingest / snapshot / close over HTTP."""

import asyncio


from tests.serve.conftest import call


def run(coroutine):
    return asyncio.run(coroutine)


def open_stream(app, queries=("wcc",), graph="Calls"):
    return run(call(app, "POST", "/stream", {
        "action": "open", "graph": graph, "queries": list(queries)}))


class TestValidation:
    def test_unknown_action_is_400(self, app):
        response = run(call(app, "POST", "/stream", {"action": "nope"}))
        assert response.status == 400
        assert "'action'" in response.payload["message"]

    def test_open_requires_queries(self, app):
        response = run(call(app, "POST", "/stream",
                            {"action": "open", "graph": "Calls"}))
        assert response.status == 400
        assert "queries" in response.payload["message"]

    def test_bad_triple_shape_is_400(self, app):
        open_stream(app)
        response = run(call(app, "POST", "/stream", {
            "action": "ingest", "appends": [[1]]}))
        assert response.status == 400
        assert "appends" in response.payload["message"]

    def test_ingest_without_open_is_400(self, app):
        response = run(call(app, "POST", "/stream", {
            "action": "ingest", "appends": [[1, 2]]}))
        assert response.status == 400
        assert "no stream session" in response.payload["message"]

    def test_double_open_is_400(self, app):
        open_stream(app)
        response = open_stream(app)
        assert response.status == 400
        assert "already open" in response.payload["message"]


class TestLifecycle:
    def test_open_ingest_snapshot_close(self, app):
        response = open_stream(app, queries=["wcc", ["degrees", {}]])
        assert response.status == 200
        assert len(response.payload["queries"]) == 2
        assert response.payload["stream"]["epoch"] == 0

        response = run(call(app, "POST", "/stream", {
            "action": "ingest", "appends": [[100, 101], [101, 102, 3]]}))
        assert response.status == 200
        assert response.payload["epoch"] == 1
        assert response.payload["batch_size"] == 2
        assert len(response.payload["results"]) == 2

        # Snapshot accepts the bare name for a parameterless query.
        response = run(call(app, "POST", "/stream", {
            "action": "snapshot", "query": "wcc"}))
        assert response.status == 200
        vertices = {record["t"][0]
                    for record, _mult in response.payload["output"]}
        assert {100, 101, 102} <= vertices

        response = run(call(app, "POST", "/stream",
                            {"action": "describe"}))
        assert response.status == 200
        assert response.payload["epoch"] == 1
        assert response.payload["meter"]["epochs"] == 1
        assert "resident_memory" in response.payload

        response = run(call(app, "POST", "/stream", {"action": "close"}))
        assert response.status == 200
        assert response.payload["closed"] is True
        # Close is idempotent through the session teardown path.
        response = run(call(app, "POST", "/stream", {"action": "close"}))
        assert response.payload["closed"] is False

    def test_invalid_retraction_maps_to_stream_error(self, app):
        open_stream(app)
        response = run(call(app, "POST", "/stream", {
            "action": "ingest", "retracts": [[900, 901]]}))
        assert response.status == 400
        assert response.payload["error"] == "stream"
        assert "beyond its multiplicity" in response.payload["message"]

    def test_stream_state_shows_in_healthz(self, app):
        open_stream(app)
        run(call(app, "POST", "/stream", {
            "action": "ingest", "appends": [[100, 101]]}))
        response = run(call(app, "GET", "/healthz"))
        assert response.status == 200
        assert "stream" in response.payload["resident_memory"]

    def test_session_close_tears_down_stream(self, app, serve_session):
        open_stream(app)
        serve_session.close()
        response = run(call(app, "POST", "/stream",
                            {"action": "describe"}))
        assert response.status == 400
        assert "no stream session" in response.payload["message"]
