"""Satellite 3: concurrent requests are deterministic and stampede-free.

N parallel ``/run`` requests must produce byte-identical responses to
the same requests issued sequentially, and each distinct computation
must fill the cache exactly once (single-flight coalescing).
"""

import asyncio
import copy


from repro.core.system import Graphsurge
from repro.serve.app import ServeApp
from repro.serve.session import ServeSession

from tests.serve.conftest import HIST_GVDL, call

#: Four distinct computations, each requested three times.
BODIES = [
    {"computation": "wcc", "target": "hist"},
    {"computation": "degrees", "target": "hist"},
    {"computation": "wcc", "target": "Calls"},
    {"computation": "pagerank", "target": "Calls",
     "params": {"iterations": 3}},
] * 3


def fresh_app(call_graph) -> ServeApp:
    gs = Graphsurge()
    gs.add_graph(copy.deepcopy(call_graph), "Calls")
    session = ServeSession(gs)
    session.execute_gvdl(HIST_GVDL)
    return ServeApp(session)


def test_parallel_matches_sequential_byte_for_byte(call_graph):
    async def sequential():
        app = fresh_app(call_graph)
        responses = []
        for body in BODIES:
            responses.append(await call(app, "POST", "/run", body))
        return app, responses

    async def parallel():
        app = fresh_app(call_graph)
        responses = await asyncio.gather(
            *(call(app, "POST", "/run", body) for body in BODIES))
        return app, responses

    seq_app, seq = asyncio.run(sequential())
    par_app, par = asyncio.run(parallel())
    assert [r.encode() for r in par] == [r.encode() for r in seq]
    # All twelve answered, none shed, none errored.
    assert all(r.status == 200 for r in par)
    assert par_app.admission.shed == 0
    assert par_app.admission.admitted == len(BODIES)


def test_exactly_one_fill_per_distinct_computation(call_graph):
    async def scenario():
        app = fresh_app(call_graph)
        responses = await asyncio.gather(
            *(call(app, "POST", "/run", body) for body in BODIES))
        return app, responses

    app, responses = asyncio.run(scenario())
    distinct = {frozenset((k, repr(v)) for k, v in body.items())
                for body in BODIES}
    assert app.cache.stats.fills == len(distinct) == 4
    # The duplicates were answered from the coalesced fill.
    cached_flags = [r.payload["cached"] for r in responses]
    assert cached_flags.count(False) == 4
    assert cached_flags.count(True) == len(BODIES) - 4
    # Every duplicate's answer is identical to its computing peer's.
    by_key = {}
    for body, response in zip(BODIES, responses):
        key = (body["computation"], body["target"])
        by_key.setdefault(key, []).append(response.payload["views"])
        assert response.payload["views"] == by_key[key][0]


def test_healthz_answers_while_computes_queue(call_graph):
    async def scenario():
        app = fresh_app(call_graph)
        computes = [
            asyncio.create_task(call(app, "POST", "/run", body))
            for body in BODIES[:4]]
        health = await call(app, "GET", "/healthz")
        await asyncio.gather(*computes)
        return health

    health = asyncio.run(scenario())
    assert health.status == 200
