"""Lifecycle: the drain gate, checkpoint-on-exit, and a live server loop."""

import asyncio
import json


from repro.core.resilience import load_checkpoint
from repro.serve.app import ServeApp
from repro.serve.lifecycle import ServerLifecycle, run_server

from tests.serve.conftest import HIST_GVDL, call

RUN_WCC = {"computation": "wcc", "target": "Calls"}


class TestDrainGate:
    def test_draining_server_refuses_new_work(self, app, tmp_path):
        async def scenario():
            lifecycle = ServerLifecycle(app.session, app.admission,
                                        checkpoint_path=None,
                                        drain_timeout=1.0)
            app.lifecycle = lifecycle
            lifecycle.mark_ready()
            ok = await call(app, "POST", "/run", RUN_WCC)
            lifecycle.request_shutdown("test")
            summary = await lifecycle.shutdown()
            refused_run = await call(app, "POST", "/run", RUN_WCC)
            refused_query = await call(app, "POST", "/query",
                                       {"gvdl": HIST_GVDL})
            refused_mutate = await call(app, "POST", "/mutate", {
                "graph": "Calls", "add_edges": [[1, 8, {
                    "duration": 1, "year": 2020}]]})
            health = await call(app, "GET", "/healthz")
            ready = await call(app, "GET", "/readyz")
            return (ok, summary, refused_run, refused_query,
                    refused_mutate, health, ready)

        (ok, summary, refused_run, refused_query, refused_mutate,
         health, ready) = asyncio.run(scenario())
        assert ok.status == 200
        assert summary["drained"] is True
        assert summary["reason"] == "test"
        for refused in (refused_run, refused_query, refused_mutate):
            assert refused.status == 503
            assert refused.payload["error"] == "shutting-down"
        # Health stays observable through the drain; readiness flips.
        assert health.status == 200
        assert health.payload["status"] == "draining"
        assert ready.status == 503

    def test_shutdown_checkpoints_the_journal(self, app, tmp_path):
        async def scenario():
            lifecycle = ServerLifecycle(
                app.session, app.admission,
                checkpoint_path=tmp_path / "session.ckpt",
                drain_timeout=1.0)
            app.lifecycle = lifecycle
            lifecycle.mark_ready()
            await call(app, "POST", "/query", {"gvdl": HIST_GVDL})
            lifecycle.request_shutdown()
            return await lifecycle.shutdown()

        summary = asyncio.run(scenario())
        assert summary["checkpoint_records"] == 1
        state = load_checkpoint(tmp_path / "session.ckpt")
        assert state.header["kind"] == "serve-session"
        assert state.views[0]["kind"] == "gvdl"

    def test_request_shutdown_is_idempotent(self, app):
        lifecycle = ServerLifecycle(app.session, app.admission)
        lifecycle.request_shutdown("first")
        lifecycle.request_shutdown("second")
        assert lifecycle.shutdown_reason == "first"

    def test_shutdown_closes_resident_dataflows(self, app):
        # With the process backend, residents hold live worker children;
        # the daemon must tear them down on the clean path rather than
        # leak them past exit (or hang multiprocessing's exit-time join).
        async def scenario():
            lifecycle = ServerLifecycle(app.session, app.admission,
                                        drain_timeout=1.0)
            app.lifecycle = lifecycle
            lifecycle.mark_ready()
            await call(app, "POST", "/query", {"gvdl": HIST_GVDL})
            await call(app, "POST", "/run",
                       {"computation": "wcc", "target": "hist"})
            assert app.session._residents
            residents = list(app.session._residents.values())
            lifecycle.request_shutdown()
            await lifecycle.shutdown()
            return residents

        residents = asyncio.run(scenario())
        assert app.session._residents == {}
        assert all(resident.dataflow is None for resident in residents)


class TestRunServerLoop:
    def test_boot_serve_drain_checkpoint(self, app, call_graph, tmp_path):
        """The full daemon loop over a real socket, ending in a restore."""
        lines = []

        async def scenario():
            server_task = asyncio.create_task(run_server(
                app, port=0, checkpoint_path=tmp_path / "session.ckpt",
                drain_timeout=2.0, install_signals=False,
                log=lambda msg, **kw: lines.append(msg)))
            while not any(line.startswith("listening on ")
                          for line in lines):
                await asyncio.sleep(0.01)
            listening = next(line for line in lines
                             if line.startswith("listening on "))
            port = int(listening.rsplit(":", 1)[1])

            async def http(method, path, body=None):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                data = json.dumps(body).encode() if body else b""
                head = (f"{method} {path} HTTP/1.1\r\n"
                        f"Content-Length: {len(data)}\r\n\r\n")
                writer.write(head.encode() + data)
                await writer.drain()
                raw = await reader.read()
                writer.close()
                head, _, payload = raw.partition(b"\r\n\r\n")
                return (int(head.split()[1]),
                        json.loads(payload) if payload else None)

            status, health = await http("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, created = await http("POST", "/query",
                                         {"gvdl": HIST_GVDL})
            assert status == 200 and created["created"] == ["hist"]
            status, result = await http("POST", "/run", RUN_WCC)
            assert status == 200 and result["cached"] is False
            app.lifecycle.request_shutdown("test-complete")
            return await server_task

        summary = asyncio.run(scenario())
        assert summary["drained"] is True
        assert summary["reason"] == "test-complete"
        assert summary["checkpoint_records"] == 1
        # A second boot — a fresh session over the same base graph —
        # restores the journal before serving.
        from repro.core.system import Graphsurge
        from repro.serve.session import ServeSession

        gs = Graphsurge()
        gs.add_graph(call_graph, "Calls")
        rebooted = ServeApp(ServeSession(gs))
        restored_lines = []

        async def reboot():
            task = asyncio.create_task(run_server(
                rebooted, port=0,
                checkpoint_path=tmp_path / "session.ckpt",
                install_signals=False,
                log=lambda msg, **kw: restored_lines.append(msg)))
            while rebooted.lifecycle is None or not rebooted.lifecycle.ready:
                await asyncio.sleep(0.01)
            assert rebooted.session.describe()["collections"] == ["hist"]
            rebooted.lifecycle.request_shutdown()
            return await task

        asyncio.run(reboot())
        assert any("restored session checkpoint" in line
                   for line in restored_lines)
