"""The community & scoring pack over the serve daemon's surfaces:
``/run`` requests, parameter validation, and ``/stream`` continuous
maintenance."""

import asyncio

from repro.algorithms.reference import (
    reference_composite_score,
    reference_ktruss,
    reference_label_propagation,
    reference_personalized_pagerank,
)
from repro.core.resilience import decode_value
from repro.graph.edge_stream import EdgeStream
from repro.serve.session import build_request_computation
from tests.serve.conftest import call


def run(coroutine):
    return asyncio.run(coroutine)


def graph_triples(session):
    graph = session.gs.resolve("Calls")
    return [(src, dst, w) for _eid, src, dst, w
            in EdgeStream.from_graph(graph)]


def run_output_map(response):
    assert response.status == 200
    (view,) = response.payload["views"]
    output = {}
    for record, mult in view["output"]:
        assert mult == 1
        key, value = decode_value(record)
        output[key] = value
    return output


PACK_REQUESTS = [
    ("labelprop", {"rounds": 4},
     lambda t: reference_label_propagation(t, rounds=4)),
    ("ppr", {"seeds": [1, 3], "iterations": 4},
     lambda t: reference_personalized_pagerank(t, seeds=[1, 3],
                                               iterations=4)),
    ("ktruss", {"k": 3}, lambda t: reference_ktruss(t, k=3)),
    ("score", {"degree_weight": 1, "triangle_weight": 2, "rank_weight": 1,
               "iterations": 3},
     lambda t: reference_composite_score(
         t, degree_weight=1, triangle_weight=2, rank_weight=1,
         iterations=3)),
]


class TestRunEndpoint:
    def test_pack_results_match_references(self, app, serve_session):
        triples = graph_triples(serve_session)
        for name, params, reference in PACK_REQUESTS:
            response = run(call(app, "POST", "/run", {
                "computation": name, "target": "Calls", "params": params}))
            assert run_output_map(response) == reference(triples), name

    def test_lpa_alias_matches_labelprop(self, app):
        body = {"target": "Calls", "params": {"rounds": 3}}
        direct = run(call(app, "POST", "/run",
                          dict(body, computation="labelprop")))
        alias = run(call(app, "POST", "/run", dict(body, computation="lpa")))
        assert run_output_map(alias) == run_output_map(direct)

    def test_ppr_without_seeds_is_rejected(self, app):
        response = run(call(app, "POST", "/run", {
            "computation": "ppr", "target": "Calls"}))
        assert response.status == 400
        assert response.payload["error"] == "invalid-config"
        assert "seeds" in response.payload["message"]

    def test_unknown_pack_parameter_is_rejected(self, app):
        response = run(call(app, "POST", "/run", {
            "computation": "score", "target": "Calls",
            "params": {"quantum": 5}}))
        assert response.status == 400
        assert "quantum" in response.payload["message"]

    def test_builder_accepts_every_pack_param(self):
        for name, params, _reference in PACK_REQUESTS:
            computation = build_request_computation(name, params)
            assert computation.name


class TestStreamEndpoint:
    def test_pack_queries_stream_and_snapshot(self, app):
        response = run(call(app, "POST", "/stream", {
            "action": "open", "graph": "Calls",
            "queries": [["labelprop", {"rounds": 4}],
                        ["ppr", {"seeds": [1, 3], "iterations": 4}],
                        ["ktruss", {"k": 3}]]}))
        assert response.status == 200
        signatures = response.payload["queries"]
        assert len(signatures) == 3

        response = run(call(app, "POST", "/stream", {
            "action": "ingest", "appends": [[100, 101], [101, 102, 2]]}))
        assert response.status == 200
        assert set(response.payload["results"]) == set(signatures)

        for signature in signatures:
            response = run(call(app, "POST", "/stream", {
                "action": "snapshot", "query": signature}))
            assert response.status == 200
            assert response.payload["epoch"] == 1
