"""The stdlib asyncio HTTP layer: framing, limits, live round-trips."""

import asyncio
import json

import pytest

from repro.errors import RequestError
from repro.serve.httpd import HttpServer, Request, Response, read_request


def decode(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = dict(line.split(": ", 1) for line in lines[1:])
    return status, headers, body


class TestResponse:
    def test_json_encoding(self):
        status, headers, body = decode(
            Response(payload={"b": 2, "a": 1}).encode())
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert headers["Connection"] == "close"
        assert int(headers["Content-Length"]) == len(body)
        assert body == b'{"a": 1, "b": 2}'

    def test_text_encoding(self):
        status, headers, body = decode(
            Response(status=503, text="nope").encode())
        assert status == 503
        assert headers["Content-Type"].startswith("text/plain")
        assert body == b"nope"

    def test_unknown_status_still_encodes(self):
        status, _headers, _body = decode(Response(status=418).encode())
        assert status == 418


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        request = Request("POST", "/run", {}, {}, b"")
        assert request.json() == {}

    def test_bad_json_raises_request_error(self):
        request = Request("POST", "/run", {}, {}, b"{nope")
        with pytest.raises(RequestError):
            request.json()


async def _roundtrip(raw: bytes, handler=None, *, half_close: bool = False,
                     request_timeout: float = 30.0) -> bytes:
    """Send raw bytes to a live server, return the raw response."""
    async def echo(request: Request) -> Response:
        return Response(payload={
            "method": request.method, "path": request.path,
            "query": request.query,
            "body": request.body.decode("utf-8")})

    server = HttpServer(handler or echo, port=0,
                        request_timeout=request_timeout)
    await server.start()
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        writer.write(raw)
        await writer.drain()
        if half_close:
            writer.write_eof()
        response = await reader.read()
        writer.close()
        return response
    finally:
        await server.stop()


class TestServerRoundtrip:
    def test_request_with_body(self):
        body = b'{"x": 1}'
        raw = (b"POST /run?mode=fast HTTP/1.1\r\n"
               b"Content-Type: application/json\r\n"
               b"Content-Length: " + str(len(body)).encode() + b"\r\n"
               b"\r\n" + body)
        status, _headers, payload = decode(
            asyncio.run(_roundtrip(raw)))
        data = json.loads(payload)
        assert status == 200
        assert data == {"method": "POST", "path": "/run",
                        "query": {"mode": "fast"}, "body": '{"x": 1}'}

    def test_malformed_request_line_is_400(self):
        status, _headers, payload = decode(
            asyncio.run(_roundtrip(b"NONSENSE\r\n\r\n")))
        assert status == 400
        assert json.loads(payload)["error"] == "bad-request"

    def test_truncated_body_is_400(self):
        raw = (b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        status, _headers, payload = decode(
            asyncio.run(_roundtrip(raw, half_close=True)))
        assert status == 400

    def test_stalled_client_gets_408_not_a_hung_read(self):
        # Short body, connection held open: the read deadline answers.
        raw = (b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        status, _headers, payload = decode(
            asyncio.run(_roundtrip(raw, request_timeout=0.1)))
        assert status == 408
        assert "timed out" in json.loads(payload)["message"]

    def test_bad_content_length_is_400(self):
        raw = b"POST /run HTTP/1.1\r\nContent-Length: pony\r\n\r\n"
        status, _headers, _payload = decode(
            asyncio.run(_roundtrip(raw)))
        assert status == 400

    def test_ephemeral_port_resolved(self):
        async def scenario():
            server = HttpServer(lambda request: None, port=0)
            await server.start()
            port = server.port
            await server.stop()
            return port

        assert asyncio.run(scenario()) > 0


class TestReadRequestLimits:
    def test_closed_connection_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_request(reader)

        assert asyncio.run(scenario()) is None

    def test_header_without_colon_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")
            reader.feed_eof()
            with pytest.raises(RequestError):
                await read_request(reader)

        asyncio.run(scenario())
