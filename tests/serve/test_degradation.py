"""Satellite 4: the degradation ladder under deterministic fault injection.

A ``FaultPlan`` scripts exactly which dataflow-operator invocations
fail; the tests then walk the ladder rung by rung: retry succeeds →
retries exhaust into a stale-cache serve → no stale entry leaves the
machine-readable error → repeated failures trip the breaker into 503
fail-fast → the breaker half-opens on schedule and a probe closes it.
No test sleeps real wall-clock: retry backoff records into a list and
the breaker runs on a hand-advanced clock.
"""

import asyncio

import pytest

from repro.core.resilience import FaultPlan, FaultSpec, RetryPolicy
from repro.core.system import Graphsurge
from repro.serve.app import ServeApp
from repro.serve.breakers import BreakerBoard, BreakerState
from repro.serve.session import ServeSession

from tests.serve.conftest import call

RUN_WCC = {"computation": "wcc", "target": "Calls"}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def faulty_app(call_graph, plan: FaultPlan, *, retries: int,
               clock: FakeClock, threshold: int = 2,
               reset_seconds: float = 30.0):
    gs = Graphsurge()
    gs.add_graph(call_graph, "Calls")
    session = ServeSession(gs, fault_plan=plan)
    slept = []
    policy = RetryPolicy(max_retries=retries, backoff_seconds=0.01,
                         jitter_seconds=0.005, jitter_seed=7,
                         sleep=slept.append)
    app = ServeApp(session,
                   breakers=BreakerBoard(failure_threshold=threshold,
                                         reset_seconds=reset_seconds,
                                         clock=clock),
                   retry_policy=policy)
    return app, slept


def fail_from_now_on(plan: FaultPlan, horizon: int = 1_000_000) -> None:
    """Every operator invocation from the current counter on will raise."""
    start = plan.invocations("operator")
    plan.specs.append(
        FaultSpec("operator", tuple(range(start, start + horizon))))


class TestRetryRung:
    def test_first_attempt_fails_retry_succeeds(self, call_graph):
        # Invocation 0 of the operator site raises; the rebuilt dataflow
        # on the retry starts at invocation 1 and completes.
        plan = FaultPlan.single("operator", at=0)
        clock = FakeClock()
        app, slept = faulty_app(call_graph, plan, retries=1, clock=clock)
        response = asyncio.run(call(app, "POST", "/run", RUN_WCC))
        assert response.status == 200
        assert response.payload["cached"] is False
        assert response.payload["stale"] is False
        assert plan.fired == [("operator", 0, "raise")]
        assert len(slept) == 1 and slept[0] > 0  # recorded, not slept
        # The eventual success kept the breaker closed.
        assert app.breakers.get("wcc").state is BreakerState.CLOSED
        assert app.breakers.get("wcc").total_failures == 0

    def test_retry_count_is_bounded(self, call_graph):
        plan = FaultPlan([])
        clock = FakeClock()
        app, slept = faulty_app(call_graph, plan, retries=2, clock=clock)
        fail_from_now_on(plan)
        response = asyncio.run(call(app, "POST", "/run", RUN_WCC))
        assert response.status == 500
        assert response.payload["error"] == "injected-fault"
        assert response.payload["context"]["site"] == "operator"
        assert len(slept) == 2  # exactly max_retries pauses
        assert len(plan.fired) == 3  # initial attempt + two retries


class TestStaleRung:
    def test_exhausted_retries_serve_stale_marked_result(self, call_graph):
        plan = FaultPlan([])
        clock = FakeClock()
        app, _slept = faulty_app(call_graph, plan, retries=1, clock=clock)

        async def scenario():
            good = await call(app, "POST", "/run", RUN_WCC)
            await call(app, "POST", "/mutate", {
                "graph": "Calls",
                "add_edges": [[1, 8, {"duration": 5, "year": 2020}]]})
            fail_from_now_on(plan)
            return good, await call(app, "POST", "/run", RUN_WCC)

        good, degraded = asyncio.run(scenario())
        assert good.status == 200
        assert degraded.status == 200
        assert degraded.payload["stale"] is True
        assert degraded.payload["cached"] is True
        assert degraded.payload["served_epoch"] == 0
        assert degraded.payload["current_epoch"] == 1
        assert degraded.payload["degraded"]["error"] == "injected-fault"
        assert degraded.payload["views"] == good.payload["views"]
        assert app.cache.stats.stale_serves == 1

    def test_budget_exhaustion_never_retries(self, call_graph):
        plan = FaultPlan([])
        clock = FakeClock()
        app, slept = faulty_app(call_graph, plan, retries=3, clock=clock)
        response = asyncio.run(call(app, "POST", "/run",
                                    dict(RUN_WCC, max_work=1)))
        assert response.status == 503
        assert response.payload["error"] == "budget-exhausted"
        assert slept == []  # no retry pauses: deadlines fail at once


class TestBreakerRungs:
    def test_ladder_walks_to_circuit_open_503(self, call_graph):
        plan = FaultPlan([])
        clock = FakeClock()
        app, _slept = faulty_app(call_graph, plan, retries=0, clock=clock,
                                 threshold=2, reset_seconds=30.0)
        fail_from_now_on(plan)

        async def scenario():
            first = await call(app, "POST", "/run", RUN_WCC)
            second = await call(app, "POST", "/run", RUN_WCC)
            fired_before = len(plan.fired)
            tripped = await call(app, "POST", "/run", RUN_WCC)
            return first, second, fired_before, tripped

        first, second, fired_before, tripped = asyncio.run(scenario())
        # Rungs one and two: real failures, reported machine-readably.
        assert first.status == 500
        assert second.status == 500
        breaker = app.breakers.get("wcc")
        assert breaker.state is BreakerState.OPEN
        # Rung three: fail-fast — no compute happened at all.
        assert tripped.status == 503
        assert tripped.payload["error"] == "circuit-open"
        assert tripped.payload["context"]["breaker"] == "wcc"
        assert len(plan.fired) == fired_before

    def test_open_breaker_serves_stale_when_available(self, call_graph):
        plan = FaultPlan([])
        clock = FakeClock()
        app, _slept = faulty_app(call_graph, plan, retries=0, clock=clock,
                                 threshold=1)

        async def scenario():
            await call(app, "POST", "/run", RUN_WCC)
            await call(app, "POST", "/mutate", {
                "graph": "Calls",
                "add_edges": [[1, 8, {"duration": 5, "year": 2020}]]})
            fail_from_now_on(plan)
            tripping = await call(app, "POST", "/run", RUN_WCC)
            assert app.breakers.get("wcc").state is BreakerState.OPEN
            fired_before = len(plan.fired)
            shielded = await call(app, "POST", "/run", RUN_WCC)
            return tripping, fired_before, shielded

        tripping, fired_before, shielded = asyncio.run(scenario())
        # The trip itself degraded to the stale answer...
        assert tripping.status == 200
        assert tripping.payload["stale"] is True
        # ...and so does the breaker-shielded request, without computing.
        assert shielded.status == 200
        assert shielded.payload["stale"] is True
        assert shielded.payload["degraded"]["error"] == "circuit-open"
        assert len(plan.fired) == fired_before

    def test_breaker_half_opens_on_schedule_and_probe_closes(
            self, call_graph):
        plan = FaultPlan([])
        clock = FakeClock()
        app, _slept = faulty_app(call_graph, plan, retries=0, clock=clock,
                                 threshold=1, reset_seconds=30.0)
        fail_from_now_on(plan)

        async def scenario():
            await call(app, "POST", "/run", RUN_WCC)  # trips (threshold 1)
            clock.advance(29.0)
            early = await call(app, "POST", "/run", RUN_WCC)
            clock.advance(1.0)
            plan.specs.clear()  # the fault condition has passed
            probe = await call(app, "POST", "/run", RUN_WCC)
            after = await call(app, "POST", "/run", RUN_WCC)
            return early, probe, after

        early, probe, after = asyncio.run(scenario())
        assert early.status == 503
        assert early.payload["error"] == "circuit-open"
        assert early.payload["context"]["retry_after"] == pytest.approx(1.0)
        # The half-open probe recomputes and closes the breaker.
        assert probe.status == 200
        assert probe.payload["stale"] is False
        breaker = app.breakers.get("wcc")
        assert breaker.state is BreakerState.CLOSED
        assert after.payload["cached"] is True
