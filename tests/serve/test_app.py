"""The HTTP application: routing, caching, budgets, error mapping."""

import asyncio


from repro.serve.app import ServeApp

from tests.serve.conftest import HIST_GVDL, call


def run(coroutine):
    return asyncio.run(coroutine)


RUN_WCC = {"computation": "wcc", "target": "Calls"}


class TestRouting:
    def test_unknown_route_is_400_payload(self, app):
        response = run(call(app, "GET", "/nope"))
        assert response.status == 400
        assert response.payload["error"] == "bad-request"
        assert "unknown route" in response.payload["message"]

    def test_wrong_method_is_400(self, app):
        response = run(call(app, "GET", "/run"))
        assert response.status == 400
        assert "not allowed" in response.payload["message"]

    def test_unexpected_exception_maps_to_500_payload(self, serve_session):
        app = ServeApp(serve_session)

        async def boom(request):
            raise ZeroDivisionError("surprise")

        app._healthz = boom
        response = run(call(app, "GET", "/healthz"))
        assert response.status == 500
        assert response.payload["error"] == "internal-error"
        assert "ZeroDivisionError" in response.payload["message"]


class TestHealth:
    def test_healthz_surfaces_all_subsystems(self, app):
        response = run(call(app, "GET", "/healthz"))
        assert response.status == 200
        payload = response.payload
        assert payload["status"] == "ok"
        assert payload["session"]["graphs"] == ["Calls"]
        assert set(payload["cache"]) >= {"entries", "hits", "fills"}
        assert payload["admission"]["max_inflight"] == 4
        assert payload["breakers"] == {}
        assert payload["resident_memory"]["total_records"] == 0

    def test_readyz_true_without_lifecycle(self, app):
        response = run(call(app, "GET", "/readyz"))
        assert response.status == 200
        assert response.payload["ready"] is True


class TestQueryAndExplain:
    def test_query_creates_collection(self, app):
        response = run(call(app, "POST", "/query", {"gvdl": HIST_GVDL}))
        assert response.status == 200
        assert response.payload == {"created": ["hist"], "epoch": 0}
        assert app.session.describe()["collections"] == ["hist"]

    def test_query_requires_gvdl(self, app):
        response = run(call(app, "POST", "/query", {"gvdl": "  "}))
        assert response.status == 400

    def test_gvdl_syntax_error_maps_to_400(self, app):
        response = run(call(app, "POST", "/query",
                            {"gvdl": "create nonsense;"}))
        assert response.status == 400
        assert response.payload["error"] == "gvdl-syntax"

    def test_explain_returns_text(self, app):
        run(call(app, "POST", "/query", {"gvdl": HIST_GVDL}))
        response = run(call(app, "GET", "/explain",
                            query={"target": "hist"}))
        assert response.status == 200
        assert "hist" in response.text

    def test_explain_requires_target(self, app):
        response = run(call(app, "GET", "/explain"))
        assert response.status == 400


class TestRun:
    def test_cold_then_cached(self, app):
        async def scenario():
            cold = await call(app, "POST", "/run", RUN_WCC)
            warm = await call(app, "POST", "/run", RUN_WCC)
            return cold, warm

        cold, warm = run(scenario())
        assert cold.status == 200
        assert cold.payload["cached"] is False
        assert cold.payload["stale"] is False
        assert cold.payload["total_work"] > 0
        assert warm.payload["cached"] is True
        assert warm.payload["views"] == cold.payload["views"]
        assert app.cache.stats.hits == 1
        assert app.cache.stats.fills == 1

    def test_force_refresh_recomputes(self, app):
        async def scenario():
            await call(app, "POST", "/run", RUN_WCC)
            return await call(app, "POST", "/run",
                              dict(RUN_WCC, force_refresh=True))

        refreshed = run(scenario())
        assert refreshed.payload["cached"] is False
        assert app.cache.stats.fills == 2

    def test_include_output_false_omits_records(self, app):
        response = run(call(app, "POST", "/run",
                            dict(RUN_WCC, include_output=False)))
        view = response.payload["views"][0]
        assert "output" not in view
        assert view["output_size"] > 0

    def test_trace_attaches_profile(self, app):
        response = run(call(app, "POST", "/run", dict(RUN_WCC, trace=True)))
        profile = response.payload["views"][0]["profile"]
        assert profile["critical_path_length"] > 0
        assert profile["top"]

    def test_unknown_computation_is_400(self, app):
        response = run(call(app, "POST", "/run",
                            {"computation": "frobnicate", "target": "Calls"}))
        assert response.status == 400
        assert response.payload["error"] == "bad-request"

    def test_unknown_target_is_404(self, app):
        response = run(call(app, "POST", "/run",
                            {"computation": "wcc", "target": "nope"}))
        assert response.status == 404
        assert response.payload["error"] == "unknown-graph"

    def test_work_budget_exhaustion_is_503(self, app):
        response = run(call(app, "POST", "/run",
                            dict(RUN_WCC, max_work=1)))
        assert response.status == 503
        assert response.payload["error"] == "budget-exhausted"
        assert response.payload["context"]["limit"] == "work"

    def test_server_default_deadline_applies(self, serve_session):
        app = ServeApp(serve_session, max_work=1)
        response = run(call(app, "POST", "/run", RUN_WCC))
        assert response.status == 503
        assert response.payload["error"] == "budget-exhausted"


class TestMutate:
    def test_mutate_bumps_epoch_and_invalidates(self, app):
        async def scenario():
            await call(app, "POST", "/run", RUN_WCC)
            mutated = await call(app, "POST", "/mutate", {
                "graph": "Calls",
                "add_edges": [[1, 8, {"duration": 5, "year": 2020}]]})
            fresh = await call(app, "POST", "/run", RUN_WCC)
            return mutated, fresh

        mutated, fresh = run(scenario())
        assert mutated.status == 200
        assert mutated.payload["epoch"] == 1
        assert mutated.payload["edges_added"] == 1
        assert fresh.payload["cached"] is False
        assert fresh.payload["epoch"] == 1

    def test_mutate_validates_shapes(self, app):
        bad = [
            {"graph": "Calls"},
            {"graph": "Calls", "add_edges": [[1]]},
            {"graph": "Calls", "add_nodes": [[9, "not-an-object"]]},
            {"graph": "Calls", "retract_edges": [[1, 2, 3]]},
            {"add_edges": [[1, 2]]},
        ]
        for body in bad:
            response = run(call(app, "POST", "/mutate", body))
            assert response.status == 400, body

    def test_mutate_unknown_graph_is_404(self, app):
        response = run(call(app, "POST", "/mutate", {
            "graph": "nope", "add_edges": [[1, 2]]}))
        assert response.status == 404
