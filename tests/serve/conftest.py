"""Shared fixtures for the serving layer: sessions, apps, fake requests."""

from __future__ import annotations

import json

import pytest

from repro.core.system import Graphsurge
from repro.serve.app import ServeApp
from repro.serve.httpd import Request
from repro.serve.session import ServeSession

#: Three nested year-windows over the Figure 1 call graph.
HIST_GVDL = ("create view collection hist on Calls "
             "[old: year <= 2015], [mid: year <= 2018], "
             "[all: year <= 2030];")


@pytest.fixture
def serve_session(call_graph):
    gs = Graphsurge()
    gs.add_graph(call_graph, "Calls")
    return ServeSession(gs)


@pytest.fixture
def app(serve_session):
    return ServeApp(serve_session)


def make_request(method: str, path: str, body=None, query=None) -> Request:
    data = json.dumps(body).encode("utf-8") if body is not None else b""
    return Request(method=method, path=path, query=dict(query or {}),
                   headers={}, body=data)


async def call(app: ServeApp, method: str, path: str, body=None,
               query=None):
    """Drive one request through the app without sockets."""
    return await app.handle(make_request(method, path, body=body,
                                         query=query))
