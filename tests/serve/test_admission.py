"""Admission control: bounded concurrency, bounded queue, 429 shedding."""

import asyncio

import pytest

from repro.errors import ConfigError, OverloadedError
from repro.serve.admission import AdmissionController


def run(coroutine):
    return asyncio.run(coroutine)


class TestValidation:
    def test_bounds_validated(self):
        with pytest.raises(ConfigError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigError):
            AdmissionController(max_queue=-1)


class TestAdmission:
    def test_serial_requests_all_admitted(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=0)
            for _ in range(3):
                async with admission:
                    assert admission.inflight == 1
            return admission

        admission = run(scenario())
        assert admission.admitted == 3
        assert admission.shed == 0
        assert admission.inflight == 0

    def test_overload_sheds_with_429_error(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=1)
            release = asyncio.Event()

            async def hold():
                async with admission:
                    await release.wait()

            async def wait_in_queue():
                async with admission:
                    pass

            holder = asyncio.create_task(hold())
            await asyncio.sleep(0)  # holder takes the only slot
            queued = asyncio.create_task(wait_in_queue())
            await asyncio.sleep(0)  # queued fills the queue
            assert admission.inflight == 1 and admission.queued == 1
            with pytest.raises(OverloadedError) as caught:
                async with admission:
                    pass
            assert caught.value.http_status == 429
            assert caught.value.to_payload()["context"] == {
                "inflight": 1, "queued": 1, "max_inflight": 1,
                "max_queue": 1}
            release.set()
            await asyncio.gather(holder, queued)
            return admission

        admission = run(scenario())
        assert admission.shed == 1
        assert admission.admitted == 2

    def test_exception_inside_still_releases_slot(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=0)
            with pytest.raises(RuntimeError):
                async with admission:
                    raise RuntimeError("boom")
            async with admission:  # the slot came back
                pass

        run(scenario())


class TestDrain:
    def test_drained_waits_for_inflight(self):
        async def scenario():
            admission = AdmissionController(max_inflight=2, max_queue=2)
            release = asyncio.Event()

            async def hold():
                async with admission:
                    await release.wait()

            holder = asyncio.create_task(hold())
            await asyncio.sleep(0)
            assert await admission.drained(timeout=0.01) is False
            release.set()
            await holder
            assert await admission.drained(timeout=1.0) is True

        run(scenario())

    def test_idle_controller_is_drained_immediately(self):
        async def scenario():
            admission = AdmissionController()
            assert await admission.drained(timeout=0.01) is True

        run(scenario())
