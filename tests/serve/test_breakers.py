"""Circuit breakers: trip, fail fast, half-open probe — on a fake clock."""

import pytest

from repro.errors import CircuitOpenError, ConfigError
from repro.serve.breakers import BreakerBoard, BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("wcc", failure_threshold=3, reset_seconds=30.0,
                          clock=clock)


class TestValidation:
    def test_bad_parameters(self, clock):
        with pytest.raises(ConfigError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", reset_seconds=0.0)


class TestTripSchedule:
    def test_trips_only_at_threshold(self, breaker):
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
            assert breaker.state is BreakerState.CLOSED
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_breaker_fails_fast_with_retry_after(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        with pytest.raises(CircuitOpenError) as caught:
            breaker.allow()
        assert caught.value.http_status == 503
        context = caught.value.to_payload()["context"]
        assert context["breaker"] == "wcc"
        assert context["retry_after"] == pytest.approx(20.0)


class TestHalfOpen:
    def test_probe_after_reset_window(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.allow()  # the single probe is admitted
        assert breaker.state is BreakerState.HALF_OPEN
        # A concurrent attempt during the probe is still rejected.
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()  # closed again: no gate

    def test_failed_probe_reopens_full_window(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        clock.advance(29.0)  # window restarts from the probe failure
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(1.0)
        breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN


class TestBoard:
    def test_one_breaker_per_name(self, clock):
        board = BreakerBoard(failure_threshold=2, reset_seconds=5.0,
                             clock=clock)
        assert board.get("wcc") is board.get("wcc")
        assert board.get("wcc") is not board.get("pagerank")
        board.get("wcc").record_failure()
        payload = board.to_payload()
        assert set(payload) == {"pagerank", "wcc"}
        assert payload["wcc"]["consecutive_failures"] == 1
        assert payload["wcc"]["state"] == "closed"
