"""Dataset generators: determinism, property shapes, workload helpers."""

import pytest

from repro.datasets import (
    citations_like,
    community_graph,
    random_edge_pairs,
    social_like,
    stackoverflow_like,
)
from repro.datasets.citation import YEAR_MAX, YEAR_MIN
from repro.datasets.community import (
    community_sizes,
    perturbation_views,
    removal_predicate,
)
from repro.datasets.social import locality_affinity_views
from repro.datasets.synthetic import zipf_sizes
from repro.datasets.temporal import EPOCH_START, ts_after
from repro.gvdl.predicate import compile_predicate


class TestRandomEdgePairs:
    def test_deterministic(self):
        assert random_edge_pairs(50, 200, seed=7) == \
            random_edge_pairs(50, 200, seed=7)

    def test_simple_graph(self):
        pairs = random_edge_pairs(40, 300, seed=1)
        assert len(pairs) == 300
        assert len(set(pairs)) == 300
        assert all(u != v for u, v in pairs)

    def test_heavy_tail(self):
        pairs = random_edge_pairs(200, 1000, seed=2)
        degree = {}
        for _u, v in pairs:
            degree[v] = degree.get(v, 0) + 1
        average = sum(degree.values()) / len(degree)
        assert max(degree.values()) > 4 * average

    def test_density_guard(self):
        with pytest.raises(ValueError, match="exceed"):
            random_edge_pairs(3, 100, seed=0)

    def test_zipf_sizes_sum(self):
        sizes = zipf_sizes(100, 7, __import__("random").Random(0))
        assert sum(sizes) == 100
        assert sizes == sorted(sizes, reverse=True)
        assert all(s >= 1 for s in sizes)


class TestStackOverflowLike:
    def test_schema_and_span(self):
        graph = stackoverflow_like(num_nodes=100, num_edges=400, seed=0)
        assert "ts" in graph.edge_schema
        stamps = [e.properties["ts"] for e in graph.edges]
        assert min(stamps) >= EPOCH_START
        assert max(stamps) <= ts_after(years=8.0)
        # Time-ordered like the SNAP file.
        assert stamps == sorted(stamps)

    def test_activity_grows(self):
        graph = stackoverflow_like(num_nodes=150, num_edges=900, seed=1)
        midpoint = ts_after(years=4.0)
        early = sum(1 for e in graph.edges if e.properties["ts"] < midpoint)
        assert early < len(graph.edges) / 2


class TestCitationsLike:
    def test_near_dag_structure(self):
        graph = citations_like(num_nodes=120, num_edges=500, seed=0)
        for edge in graph.edges:
            src_year = graph.node_property(edge.src, "year")
            dst_year = graph.node_property(edge.dst, "year")
            assert dst_year <= src_year

    def test_property_ranges(self):
        graph = citations_like(num_nodes=100, num_edges=300, seed=1,
                               max_authors=20)
        for node in graph.nodes.values():
            assert YEAR_MIN <= node.properties["year"] <= YEAR_MAX
            assert 1 <= node.properties["authors"] <= 20


class TestCommunityGraph:
    def test_membership_properties(self):
        graph = community_graph(num_nodes=80, num_communities=5,
                                intra_edges=200, background_edges=50, seed=0)
        assert all(f"c{i}" in graph.node_schema for i in range(5))
        sizes = community_sizes(graph)
        assert len(sizes) == 5
        assert sizes[0][1] >= sizes[-1][1]

    def test_perturbation_views_combinatorics(self):
        graph = community_graph(num_nodes=60, num_communities=6,
                                intra_edges=150, background_edges=30, seed=1)
        views = perturbation_views(graph, top_n=4, k=2)
        assert len(views) == 6  # C(4, 2)
        names = [name for name, _p in views]
        assert len(set(names)) == 6

    def test_removal_predicate_semantics(self):
        predicate = removal_predicate([0, 2])
        evaluate = compile_predicate(predicate)
        keep = evaluate({}, {"c0": False, "c2": False},
                        {"c0": False, "c2": False})
        drop_src = evaluate({}, {"c0": True, "c2": False},
                            {"c0": False, "c2": False})
        drop_dst = evaluate({}, {"c0": False, "c2": False},
                            {"c0": False, "c2": True})
        assert keep and not drop_src and not drop_dst

    def test_empty_removal_keeps_everything(self):
        evaluate = compile_predicate(removal_predicate([]))
        assert evaluate({}, {}, {})


class TestSocialLike:
    def test_attribute_hierarchy(self):
        graph = social_like(num_nodes=60, num_edges=240, seed=0,
                            with_attributes=True)
        for node in graph.nodes.values():
            city = int(node.properties["city"].removeprefix("city"))
            state = int(node.properties["state"].removeprefix("state"))
            country = int(node.properties["country"].removeprefix("country"))
            assert state == city // 3
            assert country == state // 2
        for edge in graph.edges:
            assert 1 <= edge.properties["affinity"] <= 3

    def test_plain_variant_has_no_schema(self):
        graph = social_like(num_nodes=40, num_edges=100, seed=0)
        assert len(graph.node_schema) == 0

    def test_locality_affinity_views(self):
        views = locality_affinity_views()
        assert len(views) == 9
        names = [name for name, _p in views]
        assert "city-low" in names and "country-high" in names
        # Check one predicate's semantics.
        predicate = dict(views)["state-medium"]
        evaluate = compile_predicate(predicate)
        assert evaluate({"affinity": 2}, {"state": "s1"}, {"state": "s1"})
        assert not evaluate({"affinity": 1}, {"state": "s1"}, {"state": "s1"})
        assert not evaluate({"affinity": 3}, {"state": "s1"}, {"state": "s2"})
