"""The fuzz campaign runner, including the acceptance mutation check:
a deliberately injected off-by-one in the reduce-family ``count_by_key``
operator must be caught, shrunk to a tiny repro, and replayable."""

import pytest

from repro.differential.collection import Collection
from repro.verify.replay import load_repro, replay_repro
from repro.verify.runner import FuzzConfig, FuzzReport, run_fuzz


@pytest.fixture
def off_by_one_count(monkeypatch):
    """Plant `+ 1` into count_by_key — the classic reduce-operator bug."""
    def broken(self, name: str = "count") -> Collection:
        return self.reduce(lambda key, vals: [sum(vals.values()) + 1],
                           name=name)

    monkeypatch.setattr(Collection, "count_by_key", broken)


class TestCleanCampaign:
    def test_small_campaign_is_green(self, tmp_path):
        config = FuzzConfig(seed=3, iterations=3,
                            repro_out=str(tmp_path / "r.json"))
        report = run_fuzz(config)
        assert report.ok
        assert report.iterations == 3
        assert report.oracle_checks > 0
        assert report.invariant_checks > 0
        assert not (tmp_path / "r.json").exists()
        assert "OK" in report.summary()

    def test_determinism(self, tmp_path):
        first = run_fuzz(FuzzConfig(seed=5, iterations=2))
        second = run_fuzz(FuzzConfig(seed=5, iterations=2))
        assert first.cases_by_kind == second.cases_by_kind
        assert first.oracle_checks == second.oracle_checks

    def test_restricted_algorithms(self):
        report = run_fuzz(FuzzConfig(seed=1, iterations=2,
                                     algorithms="wcc"))
        assert report.ok
        # 1 algorithm x 3 modes per iteration.
        assert report.oracle_checks == 6

    def test_log_callback(self):
        lines = []
        run_fuzz(FuzzConfig(seed=1, iterations=1), log=lines.append)
        assert any("iter 1/1" in line for line in lines)
        assert any("OK" in line for line in lines)


class TestMutationIsCaught:
    """Acceptance criterion: the injected off-by-one is detected and
    shrunk to a repro file of <= 3 views."""

    def test_caught_shrunk_and_replayable(self, off_by_one_count,
                                          tmp_path, monkeypatch):
        out = tmp_path / "repro.json"
        report = run_fuzz(FuzzConfig(seed=7, iterations=10,
                                     algorithms=["degrees"],
                                     repro_out=str(out)))
        assert not report.ok
        mismatch = report.mismatches[0]
        assert mismatch.invariant == "oracle"
        assert mismatch.algorithm == "degrees"
        assert report.shrunk_views is not None
        assert report.shrunk_views <= 3
        assert report.repro_paths == [str(out)]

        repro = load_repro(out)
        assert repro.algorithm == "degrees"
        assert repro.collection.num_views <= 3
        # The repro records the failing plan's static-analysis verdict.
        assert repro.analysis is not None and repro.analysis["ok"]
        # Still failing while the mutation is planted...
        assert replay_repro(out) is not None
        # ...and green again once the operator is fixed.
        monkeypatch.undo()
        assert replay_repro(out) is None

    def test_keep_going_collects_multiple_repros(self, off_by_one_count,
                                                 tmp_path):
        report = run_fuzz(FuzzConfig(seed=7, iterations=3,
                                     algorithms=["degrees"],
                                     repro_out=str(tmp_path / "r.json"),
                                     stop_on_mismatch=False))
        assert not report.ok
        assert report.iterations == 3
        assert len(report.mismatches) == 3


def test_report_summary_counts():
    report = FuzzReport(seed=9, iterations=2,
                        cases_by_kind={"churn": 2}, oracle_checks=12,
                        invariant_checks=4, wall_seconds=0.5)
    text = report.summary()
    assert "seed 9" in text and "churn=2" in text and "OK" in text
