"""The ``fuzz`` CLI subcommand: exit codes, flags, replay mode."""

import json

from repro.cli import main
from repro.verify.generator import random_churn_collection
from repro.verify.replay import ReproFile, write_repro


def test_fuzz_green_campaign_exits_zero(tmp_path, capsys):
    code = main(["fuzz", "--seed", "3", "--iterations", "2",
                 "--repro-out", str(tmp_path / "r.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "OK" in out
    assert not (tmp_path / "r.json").exists()


def test_fuzz_quiet_prints_only_summary(tmp_path, capsys):
    code = main(["fuzz", "--seed", "3", "--iterations", "1", "--quiet",
                 "--repro-out", str(tmp_path / "r.json")])
    out = capsys.readouterr().out.strip()
    assert code == 0
    assert len(out.splitlines()) == 1
    assert out.startswith("fuzz seed 3")


def test_fuzz_algorithm_and_kind_filters(tmp_path, capsys):
    code = main(["fuzz", "--seed", "1", "--iterations", "2",
                 "--algorithms", "wcc,degrees", "--kinds", "churn",
                 "--repro-out", str(tmp_path / "r.json")])
    out = capsys.readouterr().out
    assert code == 0
    assert "churn case" in out and "gvdl case" not in out


def test_fuzz_unknown_algorithm_exits_one(capsys):
    code = main(["fuzz", "--algorithms", "nope"])
    assert code == 1
    assert "unknown fuzz algorithm" in capsys.readouterr().err


def test_replay_missing_file_exits_one(tmp_path, capsys):
    code = main(["fuzz", "--replay", str(tmp_path / "absent.json")])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_replay_passing_repro_exits_zero(tmp_path, capsys):
    repro = ReproFile(
        seed=0, kind="churn", algorithm="wcc", params={},
        check={"invariant": "oracle", "mode": "scratch", "workers": 1},
        detail="", collection=random_churn_collection(2, num_views=2))
    path = write_repro(tmp_path / "r.json", repro)
    code = main(["fuzz", "--replay", str(path)])
    assert code == 0
    assert "no longer reproduces" in capsys.readouterr().out


def test_replay_corrupt_repro_exits_one(tmp_path, capsys):
    path = tmp_path / "r.json"
    repro = ReproFile(
        seed=0, kind="churn", algorithm="wcc", params={},
        check={"invariant": "oracle", "mode": "scratch", "workers": 1},
        detail="", collection=random_churn_collection(2, num_views=2))
    write_repro(path, repro)
    document = json.loads(path.read_text())
    document["payload"]["seed"] = 5
    path.write_text(json.dumps(document))
    code = main(["fuzz", "--replay", str(path)])
    assert code == 1
    assert "checksum" in capsys.readouterr().err
