"""The fuzzer's invariant battery, parametrized over the community &
scoring pack (labelprop, ppr, ktruss, score).

The generic batteries in ``test_invariants.py`` exercise one
representative algorithm; this file pins every pack member through the
mode-equivalence, worker-invariance, inline-vs-process byte-equality,
view-order permutation, kill/resume, and ``stream`` (streamed ≡
from-scratch at every churn epoch) checks — plus a guard that the
``stream`` check is *live* for the pack, not vacuously passing because
a name or parameter failed to register as a continuous query.
"""

import pytest

from repro.core.executor import ExecutionMode
from repro.stream import StreamEngine
from repro.verify.generator import random_churn_collection
from repro.verify.invariants import (
    check_backends,
    check_checkpoint,
    check_oracle,
    check_permutation,
    check_stream,
    check_workers,
)
from repro.verify.oracles import ALGORITHMS

PACK_PARAMS = {
    "labelprop": {"rounds": 5},
    "ppr": {"seeds": [1, 4, 99], "iterations": 4},
    "ktruss": {"k": 3},
    "score": {"degree_weight": 1, "triangle_weight": 2, "rank_weight": 1,
              "iterations": 3},
}


@pytest.fixture(scope="module")
def collection():
    return random_churn_collection(seed=11, num_views=4, num_nodes=8,
                                   churn=5)


@pytest.fixture(params=sorted(PACK_PARAMS), ids=sorted(PACK_PARAMS))
def pack(request):
    return ALGORITHMS[request.param], PACK_PARAMS[request.param]


class TestPackBattery:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_oracle_equivalence_across_modes(self, collection, pack, mode):
        spec, params = pack
        assert check_oracle(collection, spec, params, mode) is None

    def test_worker_invariance(self, collection, pack):
        spec, params = pack
        assert check_workers(collection, spec, params,
                             worker_counts=(1, 3)) is None

    def test_inline_process_byte_equality(self, collection, pack):
        spec, params = pack
        assert check_backends(collection, spec, params,
                              backends=("inline", "process")) is None

    def test_view_order_permutation(self, collection, pack):
        spec, params = pack
        assert check_permutation(collection, spec, params,
                                 perm_seed=3) is None

    def test_kill_resume(self, collection, pack):
        spec, params = pack
        assert check_checkpoint(collection, spec, params, kill_at=2) is None

    def test_streamed_equals_scratch_every_epoch(self, collection, pack):
        spec, params = pack
        assert check_stream(collection, spec, params,
                            backends=("inline",)) is None

    def test_stream_check_is_live_not_vacuous(self, pack):
        # check_stream treats a failed registration as "not servable"
        # and passes vacuously; the pack must actually register.
        spec, params = pack
        engine = StreamEngine(None)
        try:
            signature = engine.register(spec.name, params)
        finally:
            engine.close()
        assert spec.name in signature
