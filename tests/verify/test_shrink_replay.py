"""Shrinking and repro files: minimization, persistence, replay."""

import json

import pytest

from repro.algorithms import Wcc
from repro.errors import StoreError
from repro.verify.generator import random_churn_collection
from repro.verify.invariants import build_check
from repro.verify.oracles import AlgorithmSpec
from repro.verify.replay import (
    ReproFile,
    load_repro,
    replay_repro,
    write_repro,
)
from repro.verify.shrinker import _valid_stream, shrink

#: An oracle that is wrong whenever vertex 1 has an outgoing edge — the
#: shrinker should strip everything else away.
BROKEN = AlgorithmSpec(
    "wcc", Wcc,
    lambda edges: {"bad": 1} if any(src == 1 for src, _d, _w in edges)
    else {})

CHECK = {"invariant": "oracle", "mode": "diff-only", "workers": 1}


def _failing_setup():
    collection = random_churn_collection(seed=21, num_views=5,
                                         num_nodes=8, churn=5)
    check = build_check(BROKEN, {}, CHECK)
    if check(collection) is None:  # pragma: no cover - seed guard
        pytest.skip("seed 21 no longer triggers the planted oracle bug")
    return collection, check


class TestShrink:
    def test_minimizes_while_still_failing(self):
        collection, check = _failing_setup()
        result = shrink(collection, check)
        assert result.mismatch.invariant == "oracle"
        assert check(result.collection) is not None
        assert result.collection.num_views <= collection.num_views
        assert result.collection.total_diffs <= collection.total_diffs
        # The planted bug needs only one view with one edge out of 1.
        assert result.collection.num_views == 1
        assert result.collection.total_diffs == 1

    def test_refuses_passing_check(self):
        collection = random_churn_collection(seed=21, num_views=3)
        with pytest.raises(ValueError):
            shrink(collection, lambda _collection: None)

    def test_valid_stream_guard(self):
        ok = [{("e", 1, 2, 1): 1}, {("e", 1, 2, 1): -1}]
        assert _valid_stream(ok)
        # Dropping the addition leaves a dangling removal.
        assert not _valid_stream([{}, {("e", 1, 2, 1): -1}])


class TestReproFiles:
    def _repro(self):
        collection, check = _failing_setup()
        result = shrink(collection, check)
        return ReproFile(seed=21, kind="churn", algorithm="wcc",
                         params={}, check=dict(CHECK),
                         detail=result.mismatch.detail,
                         collection=result.collection,
                         shrink_info={"views_dropped":
                                      result.views_dropped},
                         analysis={"ok": True, "findings": []})

    def test_round_trip(self, tmp_path):
        repro = self._repro()
        path = write_repro(tmp_path / "r.json", repro)
        loaded = load_repro(path)
        assert loaded.seed == 21
        assert loaded.algorithm == "wcc"
        assert loaded.check == CHECK
        assert loaded.collection.num_views == repro.collection.num_views
        assert loaded.collection.diffs == repro.collection.diffs
        assert loaded.shrink_info == repro.shrink_info
        assert loaded.analysis == {"ok": True, "findings": []}

    def test_checksum_rejects_tampering(self, tmp_path):
        path = write_repro(tmp_path / "r.json", self._repro())
        document = json.loads(path.read_text())
        document["payload"]["seed"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(StoreError, match="checksum"):
            load_repro(path)

    def test_unreadable_and_malformed_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            load_repro(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(StoreError):
            load_repro(bad)
        bad.write_text(json.dumps({"format": 99}))
        with pytest.raises(StoreError, match="format"):
            load_repro(bad)

    def test_replay_unknown_algorithm_rejected(self, tmp_path):
        repro = self._repro()
        repro.algorithm = "not-an-algorithm"
        path = write_repro(tmp_path / "r.json", repro)
        with pytest.raises(StoreError, match="unknown algorithm"):
            replay_repro(path)

    def test_replay_passes_on_healthy_code(self, tmp_path):
        # The repro records the *descriptor*; replay runs it against the
        # session's real (healthy) ALGORITHMS registry, so it passes.
        path = write_repro(tmp_path / "r.json", self._repro())
        assert replay_repro(path) is None

    def test_replay_mpsp_params_survive_json(self, tmp_path):
        collection = random_churn_collection(seed=4, num_views=2,
                                             num_nodes=6, churn=3)
        repro = ReproFile(seed=4, kind="churn", algorithm="mpsp",
                          params={"pairs": [(0, 1), (2, 3)]},
                          check=dict(CHECK), detail="",
                          collection=collection)
        path = write_repro(tmp_path / "m.json", repro)
        assert load_repro(path).params == {"pairs": [(0, 1), (2, 3)]}
        assert replay_repro(path) is None
