"""The fuzzer's backend-invariance property (inline vs process)."""

from repro.verify.generator import random_churn_collection
from repro.verify.invariants import INVARIANTS, build_check, check_backends
from repro.verify.oracles import ALGORITHMS

WCC = ALGORITHMS["wcc"]
BFS = ALGORITHMS["bfs"]


def collection(seed=11):
    return random_churn_collection(seed=seed, num_views=4, num_nodes=8,
                                   churn=5)


class TestBackendInvariant:
    def test_passes_on_healthy_engine(self):
        assert check_backends(collection(), WCC, {}) is None

    def test_passes_with_params_and_more_workers(self):
        coll = collection(seed=23)
        params = BFS.sample_params(__import__("random").Random(0),
                                   list(range(8)))
        assert check_backends(coll, BFS, params, workers=3) is None

    def test_registered_in_invariants(self):
        assert "backend" in INVARIANTS

    def test_build_check_round_trip(self):
        check = {"invariant": "backend",
                 "backends": ["inline", "process"], "workers": 2}
        rebuilt = build_check(WCC, {}, check)
        assert rebuilt(collection()) is None

    def test_detects_counter_divergence(self, monkeypatch):
        # Force the "process" leg to see a perturbed meter by patching
        # _run to inflate total_work for that backend: the check must
        # report a backend mismatch naming both values.
        from repro.verify import invariants

        real_run = invariants._run

        def crooked_run(coll, spec, params, mode, workers=1, tracer=None,
                        backend="inline", **kwargs):
            result = real_run(coll, spec, params, mode, workers=workers,
                              tracer=tracer, backend="inline", **kwargs)
            if backend == "process":
                result.total_work += 1
            return result

        monkeypatch.setattr(invariants, "_run", crooked_run)
        mismatch = invariants.check_backends(collection(), WCC, {})
        assert mismatch is not None
        assert mismatch.invariant == "backend"
        assert "backend=process" in mismatch.detail
