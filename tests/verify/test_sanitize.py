"""Shadow-sanitizer battery: clean-run transparency, planted divergence,
static/dynamic agreement, and the gates that depend on the new passes."""

import pytest

from repro.analyze import analyze_computation
from repro.core.computation import GraphComputation
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.errors import AnalysisError, ConfigError, SanitizerError
from repro.verify.generator import random_churn_collection
from repro.verify.invariants import check_sanitize
from repro.verify.oracles import resolve_algorithms

WORKERS = 2


def small_collection(seed=11):
    return random_churn_collection(seed, num_views=3, num_nodes=10, churn=3)


class DivergentReduce(GraphComputation):
    """Reduce whose emit cardinality tracks per-process closure state:
    forked workers see only their shard's keys, the inline shadow sees
    all of them, so the backends diverge on the very first epoch."""

    name = "divergent-reduce"
    directed = True

    def build(self, dataflow, edges):
        seen = set()

        def logic(key, vals):
            seen.add(key)
            return list(range(len(seen)))

        keyed = edges.flat_map(lambda rec: [(rec[0], rec[1])], name="keyed")
        return keyed.reduce(logic, name="poison")


class UnpicklableCapture(GraphComputation):
    """Reduce closing over state that fails a pickle round-trip — the
    GS-S304 planted defect for the strict-mode refusal test."""

    name = "unpicklable-capture"
    directed = True

    class _Poison:
        def __reduce__(self):
            raise TypeError("deliberately unpicklable")

    def build(self, dataflow, edges):
        poison = self._Poison()

        def logic(key, vals):
            return [len(vals) if poison else 0]

        keyed = edges.flat_map(lambda rec: [(rec[0], rec[1])], name="keyed")
        return keyed.reduce(logic, name="doomed")


class TestCleanRunTransparency:
    def test_sanitized_wcc_run_is_silent_and_byte_identical(self):
        spec = resolve_algorithms(["wcc"])[0]
        mismatch = check_sanitize(small_collection(), spec, {},
                                  workers=WORKERS)
        assert mismatch is None, str(mismatch)


class TestPlantedDivergence:
    def test_caught_at_the_offending_reduce_on_epoch_zero(self):
        executor = AnalyticsExecutor(workers=WORKERS, backend="process",
                                     sanitize=True)
        with pytest.raises(SanitizerError) as excinfo:
            executor.run_on_collection(
                DivergentReduce(), small_collection(),
                mode=ExecutionMode.DIFF_ONLY, keep_outputs=True,
                cost_metric="work")
        error = excinfo.value
        assert error.operator.endswith("/poison#2")
        assert error.timestamp == (0,)
        assert "inline shadow" in error.detail

    def test_static_and_dynamic_checks_name_the_same_operator(self):
        # Satellite contract: GS-S302 flags the kernel statically and the
        # shadow run catches it dynamically — at the same plan address.
        computation = DivergentReduce()
        report = analyze_computation(computation, workers=WORKERS,
                                     concurrency=True)
        hits = [f for f in report.findings if f.rule == "GS-S302"]
        assert hits, report.render()
        static_address = hits[0].operator.split(" udf ")[0]

        executor = AnalyticsExecutor(workers=WORKERS, backend="process",
                                     sanitize=True)
        with pytest.raises(SanitizerError) as excinfo:
            executor.run_on_collection(
                DivergentReduce(), small_collection(),
                mode=ExecutionMode.DIFF_ONLY, keep_outputs=True,
                cost_metric="work")
        assert excinfo.value.operator == static_address


class TestConfiguration:
    def test_sanitize_requires_process_backend(self):
        with pytest.raises(ConfigError) as excinfo:
            AnalyticsExecutor(workers=WORKERS, sanitize=True)
        assert "backend='process'" in str(excinfo.value)

    def test_sanitize_with_process_backend_constructs(self):
        executor = AnalyticsExecutor(workers=WORKERS, backend="process",
                                     sanitize=True)
        assert executor.sanitize


class TestStrictShardGate:
    def test_strict_process_run_refuses_unpicklable_capture(self):
        # The pickle probe refuses the plan at build time — before any
        # epoch — instead of dying mid-superstep with WorkerFailedError.
        executor = AnalyticsExecutor(workers=WORKERS, backend="process",
                                     strict=True)
        with pytest.raises(AnalysisError) as excinfo:
            executor.run_on_collection(
                UnpicklableCapture(), small_collection(),
                mode=ExecutionMode.DIFF_ONLY, cost_metric="work")
        assert "GS-S304" in str(excinfo.value)
        assert "GS-S304" in excinfo.value.payload_context()["rules"]

    def test_strict_inline_run_skips_the_shard_pass(self):
        # The same plan is legal inline: captures never cross a channel.
        executor = AnalyticsExecutor(workers=1, strict=True)
        result = executor.run_on_collection(
            UnpicklableCapture(), small_collection(),
            mode=ExecutionMode.DIFF_ONLY, cost_metric="work")
        assert result is not None


class TestStreamRegisterGate:
    def test_register_rejects_error_severity_plan(self, monkeypatch):
        import repro.stream.engine as engine_mod

        class RootNegate(GraphComputation):
            name = "root-negate"

            def build(self, dataflow, edges):
                return edges.map(lambda rec: (rec[0], 0),
                                 name="keyed").negate()

        monkeypatch.setattr(engine_mod, "build_request_computation",
                            lambda name, params: RootNegate())
        engine = engine_mod.StreamEngine()
        with pytest.raises(AnalysisError) as excinfo:
            engine.register("wcc")
        assert excinfo.value.http_status == 400
        assert "GS-M402" in excinfo.value.payload_context()["rules"]
        assert not engine.queries  # nothing was seeded

    def test_register_accepts_clean_builtin(self):
        from repro.stream.engine import StreamEngine

        engine = StreamEngine()
        signature = engine.register("wcc")
        assert signature in engine.queries


class TestCliFlags:
    def test_stream_pass_warns_on_scc_nested_iterate(self, capsys):
        from repro.cli import main

        assert main(["analyze", "scc", "--stream"]) == 0
        assert "GS-M404" in capsys.readouterr().out

    def test_strict_warnings_promotes_scc_warning_to_failure(self, capsys):
        from repro.cli import main

        assert main(["analyze", "scc", "--stream",
                     "--strict-warnings"]) == 1

    def test_concurrency_pass_is_clean_over_builtins(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--concurrency", "--strict-warnings"]) == 0
        assert "0 error(s)" in capsys.readouterr().out
