"""The invariant battery: passes on healthy code, pins down corruptions."""

import pytest

from repro.algorithms import Wcc
from repro.core.executor import ExecutionMode
from repro.errors import GraphsurgeError
from repro.verify.generator import random_churn_collection
from repro.verify.invariants import (
    build_check,
    check_analysis,
    check_checkpoint,
    check_oracle,
    check_permutation,
    check_stream,
    check_tracing,
    check_workers,
)
from repro.errors import ConfigError
from repro.verify.oracles import (
    ALGORITHMS,
    AlgorithmSpec,
    algorithm_names,
    output_map,
    resolve_algorithms,
)


@pytest.fixture(scope="module")
def collection():
    return random_churn_collection(seed=11, num_views=4, num_nodes=8,
                                   churn=5)


WCC = ALGORITHMS["wcc"]

#: A spec whose oracle is deliberately wrong — every check_oracle call
#: must flag it.
BROKEN = AlgorithmSpec("wcc", Wcc, lambda edges: {"bogus": -1})


class TestChecksPassOnHealthyEngine:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    def test_oracle(self, collection, mode):
        assert check_oracle(collection, WCC, {}, mode) is None

    def test_workers(self, collection):
        assert check_workers(collection, WCC, {}) is None

    def test_permutation(self, collection):
        assert check_permutation(collection, WCC, {}, perm_seed=3) is None

    def test_checkpoint(self, collection):
        assert check_checkpoint(collection, WCC, {}, kill_at=2) is None

    def test_tracing(self, collection):
        assert check_tracing(collection, WCC, {}) is None

    def test_analysis(self, collection):
        assert check_analysis(collection, WCC, {}, perm_seed=5) is None

    def test_stream(self, collection):
        assert check_stream(collection, WCC, {}) is None

    def test_stream_vacuous_for_unservable_spec(self, collection):
        from repro.algorithms import ClusteringCoefficient

        unservable = AlgorithmSpec("clustering", ClusteringCoefficient,
                                   lambda edges: {})
        assert check_stream(collection, unservable, {}) is None


class TestChecksCatchViolations:
    def test_oracle_mismatch_reported_with_view(self, collection):
        mismatch = check_oracle(collection, BROKEN, {},
                                ExecutionMode.DIFF_ONLY)
        assert mismatch is not None
        assert mismatch.invariant == "oracle"
        assert mismatch.view is not None
        assert mismatch.check["mode"] == "diff-only"
        assert "wcc" in str(mismatch)

    def test_mismatch_check_is_rebuildable(self, collection):
        mismatch = check_oracle(collection, BROKEN, {},
                                ExecutionMode.ADAPTIVE)
        check = build_check(BROKEN, {}, mismatch.check)
        again = check(collection)
        assert again is not None and again.invariant == "oracle"
        # The same descriptor against the healthy spec passes.
        assert build_check(WCC, {}, mismatch.check)(collection) is None

    def test_build_check_rejects_unknown_invariant(self):
        with pytest.raises(GraphsurgeError):
            build_check(WCC, {}, {"invariant": "gremlins"})

    def test_stream_mismatch_is_rebuildable(self, collection):
        mismatch = check_stream(collection, BROKEN, {})
        assert mismatch is not None
        assert mismatch.invariant == "stream"
        assert "epoch 1" in mismatch.detail
        rebuilt = build_check(BROKEN, {}, mismatch.check)(collection)
        assert rebuilt is not None and rebuilt.invariant == "stream"
        assert build_check(WCC, {}, mismatch.check)(collection) is None

    def test_analysis_flags_error_findings(self, collection):
        from tests.analyze.test_gating import BadLoop

        unsound = AlgorithmSpec("wcc", BadLoop, lambda edges: {})
        mismatch = check_analysis(collection, unsound, {})
        assert mismatch is not None
        assert mismatch.invariant == "analysis"
        assert "GS-P102" in mismatch.detail
        # The recorded descriptor rebuilds the same check.
        rebuilt = build_check(unsound, {}, mismatch.check)(collection)
        assert rebuilt is not None and rebuilt.invariant == "analysis"
        assert build_check(WCC, {}, mismatch.check)(collection) is None


class TestOutputMap:
    def test_happy_path(self):
        assert output_map({(1, 5): 1, (2, 7): 1}) == {1: 5, 2: 7}

    def test_multiplicity_corruption_raises(self):
        with pytest.raises(GraphsurgeError):
            output_map({(1, 5): 2})

    def test_duplicate_key_raises(self):
        with pytest.raises(GraphsurgeError):
            output_map({(1, 5): 1, (1, 6): 1})


class TestResolveAlgorithms:
    def test_default_is_all(self):
        assert {spec.name for spec in resolve_algorithms()} == \
            set(ALGORITHMS)

    def test_comma_string(self):
        specs = resolve_algorithms("wcc, bfs")
        assert [spec.name for spec in specs] == ["wcc", "bfs"]

    def test_unknown_name_rejected(self):
        with pytest.raises(GraphsurgeError):
            resolve_algorithms(["wcc", "nope"])

    def test_unknown_name_is_config_error_listing_registry(self):
        # Pins the exact error shape: a ConfigError (so CLI/serve config
        # handling applies) whose message names the offender and lists
        # every registered algorithm.
        with pytest.raises(ConfigError) as excinfo:
            resolve_algorithms(["nope"])
        message = str(excinfo.value)
        assert message == ("unknown fuzz algorithm 'nope'; known: "
                           + ", ".join(algorithm_names()))
        for name in ALGORITHMS:
            assert name in message

    def test_empty_selection_is_config_error(self):
        with pytest.raises(ConfigError):
            resolve_algorithms("  ,  ")

    def test_pack_is_registered(self):
        for name in ("labelprop", "ppr", "ktruss", "score"):
            assert name in ALGORITHMS
