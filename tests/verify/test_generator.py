"""The fuzzer's case generator: determinism, validity, grammar coverage."""

import pytest

from repro.verify.generator import (
    KINDS,
    generate_case,
    random_churn_collection,
    random_gvdl_collection,
    random_window_collection,
)


def _fingerprint(collection):
    """The deterministic identity of a collection (collection_payload
    also carries wall-clock provenance, which may not repeat)."""
    return (collection.name, tuple(collection.view_names),
            tuple(tuple(sorted(diff.items())) for diff in collection.diffs))


def _no_negative_accumulation(collection):
    acc = {}
    for diff in collection.diffs:
        for edge, mult in diff.items():
            acc[edge] = acc.get(edge, 0) + mult
            assert acc[edge] >= 0, (edge, acc[edge])


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 99, 12345])
    def test_same_seed_same_collection(self, seed):
        first = generate_case(seed)
        second = generate_case(seed)
        assert first.kind == second.kind
        assert _fingerprint(first.collection) == \
            _fingerprint(second.collection)
        assert first.gvdl_text == second.gvdl_text

    def test_different_seeds_differ(self):
        payloads = {_fingerprint(generate_case(seed).collection)
                    for seed in range(8)}
        assert len(payloads) > 1


class TestChurn:
    @pytest.mark.parametrize("seed", range(10))
    def test_streams_are_valid(self, seed):
        collection = random_churn_collection(seed)
        assert collection.num_views >= 2
        _no_negative_accumulation(collection)

    def test_explicit_shape(self):
        collection = random_churn_collection(3, num_views=6, num_nodes=10,
                                             churn=4)
        assert collection.num_views == 6

    def test_stable_edge_identity(self):
        # The same (src, dst, weight) triple always maps to one edge id,
        # so a removal cancels the exact addition it undoes.
        collection = random_churn_collection(7, num_views=5)
        identities = {}
        for diff in collection.diffs:
            for (eid, src, dst, w) in diff:
                assert identities.setdefault((src, dst, w), eid) == eid


class TestWindowAndGvdl:
    @pytest.mark.parametrize("seed", range(5))
    def test_window_collections_materialize(self, seed):
        collection = random_window_collection(seed)
        assert collection.num_views >= 2
        _no_negative_accumulation(collection)

    @pytest.mark.parametrize("seed", range(5))
    def test_gvdl_text_is_replayable(self, seed):

        collection, text = random_gvdl_collection(seed)
        assert text.startswith("create view collection")
        assert collection.num_views >= 2
        _no_negative_accumulation(collection)


class TestGenerateCase:
    def test_kind_restriction(self):
        for seed in range(6):
            case = generate_case(seed, kinds=["churn"])
            assert case.kind == "churn"
            assert case.gvdl_text is None

    def test_all_kinds_reachable(self):
        seen = {generate_case(seed).kind for seed in range(40)}
        assert seen == set(KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_case(0, kinds=["nope"])

    def test_vertices_sorted_union(self):
        case = generate_case(5, kinds=["churn"])
        verts = case.vertices()
        assert verts == sorted(set(verts))
        assert verts
