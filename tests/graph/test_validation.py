"""Graph validation."""

from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema
from repro.graph.validation import validate


def test_clean_graph_passes(call_graph):
    report = validate(call_graph)
    assert report.ok
    assert report.self_loops == 0
    assert report.duplicate_edges == 0
    assert "OK" in report.render()


def test_self_loops_and_duplicates_warned():
    graph = PropertyGraph("g")
    graph.add_node(1)
    graph.add_node(2)
    graph.add_edge(1, 1)
    graph.add_edge(1, 2)
    graph.add_edge(1, 2)
    report = validate(graph)
    assert report.ok  # warnings, not errors
    assert report.self_loops == 1
    assert report.duplicate_edges == 1
    assert len(report.warnings) == 2


def test_missing_node_property_is_error():
    graph = PropertyGraph("g", node_schema=Schema({"city": PropertyType.STRING}))
    graph.add_node(1, {"city": "LA"})
    # Bypass the constructor check to simulate corrupted data.
    graph.nodes[1].properties.pop("city")
    report = validate(graph)
    assert not report.ok
    assert "missing properties" in report.errors[0]


def test_type_mismatch_is_error():
    graph = PropertyGraph("g", node_schema=Schema({"age": PropertyType.INT}))
    graph.add_node(1, {"age": 30})
    graph.nodes[1].properties["age"] = "thirty"
    report = validate(graph)
    assert not report.ok
    assert "schema says int" in report.errors[0]


def test_bool_masquerading_as_int_is_error():
    graph = PropertyGraph("g", node_schema=Schema({"age": PropertyType.INT}))
    graph.add_node(1, {"age": 30})
    graph.nodes[1].properties["age"] = True
    report = validate(graph)
    assert not report.ok


def test_undeclared_property_is_warning():
    graph = PropertyGraph("g", node_schema=Schema({"city": PropertyType.STRING}))
    graph.add_node(1, {"city": "LA"})
    graph.nodes[1].properties["extra"] = 1
    report = validate(graph)
    assert report.ok
    assert "undeclared" in report.warnings[0]


def test_dangling_endpoint_is_error():
    graph = PropertyGraph("g")
    graph.add_node(1)
    graph.add_node(2)
    graph.add_edge(1, 2)
    del graph.nodes[2]  # simulate corruption
    report = validate(graph)
    assert not report.ok
    assert "dangling destination" in report.errors[0]


def test_findings_capped():
    graph = PropertyGraph("g", node_schema=Schema({"x": PropertyType.INT}))
    for node_id in range(100):
        graph.add_node(node_id, {"x": 1})
        graph.nodes[node_id].properties.pop("x")
    report = validate(graph, max_findings=10)
    assert len(report.errors) == 10
