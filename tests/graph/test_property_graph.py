"""PropertyGraph construction, queries, filtered views, edge records."""

import pytest

from repro.errors import SchemaError, UnknownPropertyError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema


class TestConstruction:
    def test_counts(self, call_graph):
        assert call_graph.num_nodes == 8
        assert call_graph.num_edges == 15

    def test_duplicate_node_rejected(self):
        graph = PropertyGraph("g")
        graph.add_node(1)
        with pytest.raises(SchemaError, match="duplicate node"):
            graph.add_node(1)

    def test_edge_requires_known_endpoints(self):
        graph = PropertyGraph("g")
        graph.add_node(1)
        with pytest.raises(SchemaError, match="unknown destination"):
            graph.add_edge(1, 2)
        with pytest.raises(SchemaError, match="unknown source"):
            graph.add_edge(3, 1)

    def test_schema_enforced_on_properties(self):
        graph = PropertyGraph(
            "g", node_schema=Schema({"age": PropertyType.INT}))
        graph.add_node(1, {"age": "30"})
        assert graph.nodes[1].properties["age"] == 30
        with pytest.raises(SchemaError):
            graph.add_node(2, {})

    def test_edge_ids_sequential(self, call_graph):
        assert [e.id for e in call_graph.edges] == list(range(15))


class TestQueries:
    def test_node_property(self, call_graph):
        assert call_graph.node_property(1, "city") == "LA"

    def test_node_property_errors(self, call_graph):
        with pytest.raises(UnknownPropertyError, match="unknown node id"):
            call_graph.node_property(99, "city")
        with pytest.raises(UnknownPropertyError, match="no property"):
            call_graph.node_property(1, "height")

    def test_out_neighbors(self, call_graph):
        assert sorted(call_graph.out_neighbors(1)) == [2, 3]

    def test_degree_index_includes_isolated(self):
        graph = PropertyGraph("g")
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(1, 2)
        assert graph.degree_index() == {1: 1, 2: 0}


class TestFilteredViews:
    def test_filter_keeps_matching_edges(self, call_graph):
        view = call_graph.filter_edges(
            lambda edge, src, dst: edge.properties["year"] == 2019)
        assert view.num_edges == 8
        assert view.num_nodes == call_graph.num_nodes

    def test_filter_with_node_predicates(self, call_graph):
        view = call_graph.filter_edges(
            lambda edge, src, dst: src["city"] == "LA"
            and dst["city"] == "LA")
        for edge in view.edges:
            assert view.node_property(edge.src, "city") == "LA"
            assert view.node_property(edge.dst, "city") == "LA"

    def test_view_is_independent_copy(self, call_graph):
        view = call_graph.filter_edges(lambda e, s, d: True)
        view.add_edge(1, 2, {"duration": 1, "year": 2000})
        assert view.num_edges == call_graph.num_edges + 1


class TestEdgeRecords:
    def test_default_weight(self, call_graph):
        records = list(call_graph.edge_records())
        assert (1, (2, 1)) in records

    def test_weight_from_property(self, call_graph):
        records = list(call_graph.edge_records(weight="duration"))
        assert (1, (2, 7)) in records
