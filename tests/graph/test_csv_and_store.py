"""CSV loading/saving round trips and the graph/view stores."""

import pytest

from repro.errors import SchemaError, StoreError, UnknownGraphError
from repro.graph.csv_loader import (
    load_graph_csv,
    save_graph_csv,
)
from repro.graph.property_graph import PropertyGraph
from repro.graph.store import GraphStore, ViewStore


@pytest.fixture
def csv_files(tmp_path):
    nodes = tmp_path / "nodes.csv"
    edges = tmp_path / "edges.csv"
    nodes.write_text(
        "id,city:str,vip:bool\n"
        "1,LA,true\n"
        "2,NY,false\n"
        "3,LA,true\n")
    edges.write_text(
        "src,dst,duration:int\n"
        "1,2,7\n"
        "2,3,19\n")
    return nodes, edges


class TestCsvLoading:
    def test_load_graph(self, csv_files):
        nodes, edges = csv_files
        graph = load_graph_csv("calls", nodes, edges)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.node_property(1, "vip") is True
        assert graph.edges[0].properties["duration"] == 7

    def test_round_trip(self, csv_files, tmp_path):
        nodes, edges = csv_files
        graph = load_graph_csv("calls", nodes, edges)
        out_nodes = tmp_path / "out.nodes.csv"
        out_edges = tmp_path / "out.edges.csv"
        save_graph_csv(graph, out_nodes, out_edges)
        reloaded = load_graph_csv("calls", out_nodes, out_edges)
        assert reloaded.num_nodes == graph.num_nodes
        assert reloaded.num_edges == graph.num_edges
        assert reloaded.nodes[1].properties == graph.nodes[1].properties
        assert reloaded.edges[1].properties == graph.edges[1].properties

    def test_missing_id_column(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("name\nx\n")
        with pytest.raises(SchemaError, match="'id' column"):
            load_graph_csv("g", bad, bad)

    def test_bad_edges_header(self, csv_files, tmp_path):
        nodes, _edges = csv_files
        bad = tmp_path / "bad_edges.csv"
        bad.write_text("from,to\n1,2\n")
        with pytest.raises(SchemaError, match="src,dst"):
            load_graph_csv("g", nodes, bad)

    def test_column_count_mismatch(self, csv_files, tmp_path):
        nodes, _ = csv_files
        bad = tmp_path / "bad_edges.csv"
        bad.write_text("src,dst,duration:int\n1,2\n")
        with pytest.raises(SchemaError, match="expected 3 columns"):
            load_graph_csv("g", nodes, bad)

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            load_graph_csv("g", empty, empty)


class TestGraphStore:
    def test_add_get(self):
        store = GraphStore()
        graph = PropertyGraph("g")
        store.add(graph)
        assert store.get("g") is graph
        assert "g" in store

    def test_duplicate_rejected(self):
        store = GraphStore()
        store.add(PropertyGraph("g"))
        with pytest.raises(StoreError, match="already exists"):
            store.add(PropertyGraph("g"))

    def test_unknown_raises(self):
        with pytest.raises(UnknownGraphError):
            GraphStore().get("nope")

    def test_persistence_round_trip(self, csv_files, tmp_path):
        nodes, edges = csv_files
        store = GraphStore()
        store.add(load_graph_csv("calls", nodes, edges))
        directory = tmp_path / "store"
        store.save(directory)
        reloaded = GraphStore.load(directory)
        assert reloaded.get("calls").num_edges == 2

    def test_load_without_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            GraphStore.load(tmp_path)


class TestViewStore:
    def test_views_and_collections_share_namespace(self):
        store = ViewStore()
        store.add_view("v", PropertyGraph("v"))
        with pytest.raises(StoreError):
            store.add_collection("v", object())
        store.add_collection("c", object())
        with pytest.raises(StoreError):
            store.add_view("c", PropertyGraph("c"))

    def test_lookups(self):
        store = ViewStore()
        view = PropertyGraph("v")
        store.add_view("v", view)
        assert store.get_view("v") is view
        assert store.has_view("v")
        assert not store.has_collection("v")
        with pytest.raises(UnknownGraphError):
            store.get_collection("v")
        with pytest.raises(UnknownGraphError):
            store.get_view("missing")
