"""Schema parsing and coercion."""

import pytest

from repro.errors import SchemaError
from repro.graph.schema import PropertyType, Schema


class TestPropertyType:
    def test_parse_all_types(self):
        assert PropertyType.parse("str") is PropertyType.STRING
        assert PropertyType.parse("int") is PropertyType.INT
        assert PropertyType.parse("bool") is PropertyType.BOOL

    def test_parse_unknown_raises(self):
        with pytest.raises(SchemaError, match="unknown property type"):
            PropertyType.parse("float")

    def test_int_coercion(self):
        assert PropertyType.INT.coerce("42") == 42
        assert PropertyType.INT.coerce(7) == 7
        with pytest.raises(SchemaError):
            PropertyType.INT.coerce("forty")

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("True", True), ("1", True), ("yes", True),
        ("false", False), ("0", False), ("no", False), (True, True),
        (False, False),
    ])
    def test_bool_coercion(self, raw, expected):
        assert PropertyType.BOOL.coerce(raw) is expected

    def test_bool_garbage_raises(self):
        with pytest.raises(SchemaError):
            PropertyType.BOOL.coerce("maybe")

    def test_string_coercion(self):
        assert PropertyType.STRING.coerce(42) == "42"


class TestSchema:
    def test_from_header_with_types(self):
        schema = Schema.from_header(["city:str", "age:int", "vip:bool"])
        assert schema.fields == {
            "city": PropertyType.STRING,
            "age": PropertyType.INT,
            "vip": PropertyType.BOOL,
        }

    def test_type_defaults_to_string(self):
        schema = Schema.from_header(["name"])
        assert schema.fields["name"] is PropertyType.STRING

    def test_duplicate_column_raises(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.from_header(["a:int", "a:str"])

    def test_empty_name_raises(self):
        with pytest.raises(SchemaError, match="empty property name"):
            Schema.from_header([":int"])

    def test_coerce_row(self):
        schema = Schema.from_header(["age:int", "vip:bool"])
        assert schema.coerce_row({"age": "30", "vip": "true"}) == {
            "age": 30, "vip": True}

    def test_coerce_row_missing_property(self):
        schema = Schema.from_header(["age:int"])
        with pytest.raises(SchemaError, match="missing property"):
            schema.coerce_row({})

    def test_header_round_trip(self):
        header = ("city:str", "age:int")
        assert Schema.from_header(header).header() == header

    def test_contains_and_len(self):
        schema = Schema.from_header(["a:int"])
        assert "a" in schema
        assert "b" not in schema
        assert len(schema) == 1
