"""Edge streams and diff-to-input conversion."""

from repro.graph.edge_stream import EdgeStream, edge_diff_to_input


class TestEdgeStream:
    def test_from_graph_default_weight(self, call_graph):
        stream = EdgeStream.from_graph(call_graph)
        assert len(stream) == 15
        assert all(w == 1 for _e, _s, _d, w in stream)

    def test_from_graph_property_weight(self, call_graph):
        stream = EdgeStream.from_graph(call_graph, weight="duration")
        weights = {w for _e, _s, _d, w in stream}
        assert 34 in weights and 1 in weights

    def test_as_input_diff_directed(self):
        stream = EdgeStream([(0, 1, 2, 5)])
        assert stream.as_input_diff() == {(1, (2, 5)): 1}

    def test_as_input_diff_undirected(self):
        stream = EdgeStream([(0, 1, 2, 5)])
        assert stream.as_input_diff(directed=False) == {
            (1, (2, 5)): 1, (2, (1, 5)): 1}

    def test_parallel_edges_accumulate(self):
        stream = EdgeStream([(0, 1, 2, 5), (1, 1, 2, 5)])
        assert stream.as_input_diff() == {(1, (2, 5)): 2}

    def test_vertices(self):
        stream = EdgeStream([(0, 1, 2, 1), (1, 3, 1, 1)])
        assert stream.vertices() == {1, 2, 3}


class TestEdgeDiffToInput:
    def test_signs_preserved(self):
        diff = {(0, 1, 2, 5): 1, (1, 3, 4, 2): -1}
        assert edge_diff_to_input(diff) == {
            (1, (2, 5)): 1, (3, (4, 2)): -1}

    def test_undirected_expansion(self):
        diff = {(0, 1, 2, 5): -1}
        assert edge_diff_to_input(diff, directed=False) == {
            (1, (2, 5)): -1, (2, (1, 5)): -1}

    def test_cancellation_dropped(self):
        diff = {(0, 1, 2, 5): 1, (1, 1, 2, 5): -1}
        assert edge_diff_to_input(diff) == {}
