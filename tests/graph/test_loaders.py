"""SNAP-format loaders."""

import pytest

from repro.errors import SchemaError
from repro.graph.loaders import (
    load_communities,
    load_snap_edge_list,
    load_snap_temporal,
)


class TestEdgeList:
    def test_basic(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n0 1\n1 2\n\n2 0\n")
        graph = load_snap_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_undirected_doubles_edges(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n")
        graph = load_snap_edge_list(path, undirected=True)
        assert graph.num_edges == 2

    def test_max_edges_cap(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("\n".join(f"{i} {i+1}" for i in range(100)))
        graph = load_snap_edge_list(path, max_edges=10)
        assert graph.num_edges == 10

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\n")
        with pytest.raises(SchemaError, match="expected 'src dst'"):
            load_snap_edge_list(path)


class TestTemporal:
    def test_timestamps_become_properties(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("% header\n0 1 1209600000\n1 2 1209700000\n")
        graph = load_snap_temporal(path)
        assert graph.edges[0].properties["ts"] == 1209600000
        assert "ts" in graph.edge_schema

    def test_missing_timestamp(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0 1\n")
        with pytest.raises(SchemaError, match="src dst ts"):
            load_snap_temporal(path)


class TestCommunities:
    def test_memberships_attached(self, tmp_path):
        graph_path = tmp_path / "g.txt"
        graph_path.write_text("0 1\n1 2\n2 3\n")
        graph = load_snap_edge_list(graph_path)
        cmty_path = tmp_path / "c.txt"
        cmty_path.write_text("0 1\n2 3\n")
        count = load_communities(graph, cmty_path)
        assert count == 2
        assert graph.nodes[0].properties == {"c0": True, "c1": False}
        assert graph.nodes[3].properties == {"c0": False, "c1": True}
        assert "c0" in graph.node_schema and "c1" in graph.node_schema

    def test_perturbation_workload_over_loaded_data(self, tmp_path):
        from repro.datasets.community import perturbation_views

        graph_path = tmp_path / "g.txt"
        graph_path.write_text("\n".join(
            f"{i} {(i + 1) % 8}" for i in range(8)))
        graph = load_snap_edge_list(graph_path)
        cmty_path = tmp_path / "c.txt"
        cmty_path.write_text("0 1 2 3\n4 5\n6 7\n")
        load_communities(graph, cmty_path)
        views = perturbation_views(graph, top_n=3, k=1)
        assert len(views) == 3

    def test_max_communities(self, tmp_path):
        graph_path = tmp_path / "g.txt"
        graph_path.write_text("0 1\n")
        graph = load_snap_edge_list(graph_path)
        cmty_path = tmp_path / "c.txt"
        cmty_path.write_text("0\n1\n0 1\n")
        assert load_communities(graph, cmty_path, max_communities=2) == 2
