"""Work meter and worker sharding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timely.meter import WorkMeter
from repro.timely.worker import shard_for, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash((1, "x")) == stable_hash((1, "x"))

    def test_spreads_small_ints(self):
        shards = {shard_for(i, 8) for i in range(100)}
        assert len(shards) == 8

    @given(st.one_of(st.integers(), st.text(), st.booleans(), st.none(),
                     st.tuples(st.integers(), st.text())))
    def test_hash_in_64_bit_range(self, value):
        h = stable_hash(value)
        assert 0 <= h < 2 ** 64

    def test_distinct_values_differ(self):
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash(True) != stable_hash(False)
        assert stable_hash(1) != stable_hash(2)


class TestShardFor:
    def test_single_worker_always_zero(self):
        assert shard_for("anything", 1) == 0

    @given(st.integers(), st.integers(2, 16))
    def test_in_range(self, key, workers):
        assert 0 <= shard_for(key, workers) < workers


class TestWorkMeter:
    def test_serial_work_outside_steps(self):
        meter = WorkMeter(workers=4)
        meter.record("k", 10)
        assert meter.total_work == 10
        assert meter.parallel_time == 10

    def test_parallel_time_is_max_per_worker(self):
        meter = WorkMeter(workers=2)
        meter.begin_step()
        # Find two keys on different workers.
        keys = {}
        for i in range(100):
            keys.setdefault(shard_for(i, 2), i)
            if len(keys) == 2:
                break
        meter.record(keys[0], 10)
        meter.record(keys[1], 4)
        meter.end_step()
        assert meter.total_work == 14
        assert meter.parallel_time == 10
        assert meter.supersteps == 1

    def test_empty_step_not_counted(self):
        meter = WorkMeter()
        meter.begin_step()
        meter.end_step()
        assert meter.supersteps == 0

    def test_zero_units_ignored(self):
        meter = WorkMeter()
        meter.record("k", 0)
        assert meter.total_work == 0

    def test_snapshot_delta(self):
        meter = WorkMeter()
        meter.record("k", 5)
        first = meter.snapshot()
        meter.record("k", 7)
        delta = first.delta(meter.snapshot())
        assert delta.total_work == 7

    def test_reset(self):
        meter = WorkMeter()
        meter.record("k", 5)
        meter.reset()
        assert meter.total_work == 0
        assert meter.parallel_time == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkMeter(workers=0)

    def test_more_workers_not_slower(self):
        """Simulated parallel time must be monotone in worker count."""
        def run(workers):
            meter = WorkMeter(workers=workers)
            meter.begin_step()
            for i in range(200):
                meter.record(i, 1)
            meter.end_step()
            return meter.parallel_time

        t1, t4, t8 = run(1), run(4), run(8)
        assert t1 >= t4 >= t8
        assert t1 == 200
