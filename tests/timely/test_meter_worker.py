"""Work meter and worker sharding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timely.meter import WorkMeter
from repro.timely.worker import shard_for, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash((1, "x")) == stable_hash((1, "x"))

    def test_spreads_small_ints(self):
        shards = {shard_for(i, 8) for i in range(100)}
        assert len(shards) == 8

    @given(st.one_of(st.integers(), st.text(), st.booleans(), st.none(),
                     st.tuples(st.integers(), st.text())))
    def test_hash_in_64_bit_range(self, value):
        h = stable_hash(value)
        assert 0 <= h < 2 ** 64

    def test_distinct_values_differ(self):
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash(True) != stable_hash(False)
        assert stable_hash(1) != stable_hash(2)


class TestShardFor:
    def test_single_worker_always_zero(self):
        assert shard_for("anything", 1) == 0

    @given(st.integers(), st.integers(2, 16))
    def test_in_range(self, key, workers):
        assert 0 <= shard_for(key, workers) < workers


class TestWorkMeter:
    def test_serial_work_outside_steps(self):
        meter = WorkMeter(workers=4)
        meter.record("k", 10)
        assert meter.total_work == 10
        assert meter.parallel_time == 10

    def test_parallel_time_is_max_per_worker(self):
        meter = WorkMeter(workers=2)
        meter.begin_step()
        # Find two keys on different workers.
        keys = {}
        for i in range(100):
            keys.setdefault(shard_for(i, 2), i)
            if len(keys) == 2:
                break
        meter.record(keys[0], 10)
        meter.record(keys[1], 4)
        meter.end_step()
        assert meter.total_work == 14
        assert meter.parallel_time == 10
        assert meter.supersteps == 1

    def test_empty_step_not_counted(self):
        meter = WorkMeter()
        meter.begin_step()
        meter.end_step()
        assert meter.supersteps == 0

    def test_zero_units_ignored(self):
        meter = WorkMeter()
        meter.record("k", 0)
        assert meter.total_work == 0

    def test_snapshot_delta(self):
        meter = WorkMeter()
        meter.record("k", 5)
        first = meter.snapshot()
        meter.record("k", 7)
        delta = first.delta(meter.snapshot())
        assert delta.total_work == 7

    def test_reset(self):
        meter = WorkMeter()
        meter.record("k", 5)
        meter.reset()
        assert meter.total_work == 0
        assert meter.parallel_time == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkMeter(workers=0)

    def test_more_workers_not_slower(self):
        """Simulated parallel time must be monotone in worker count."""
        def run(workers):
            meter = WorkMeter(workers=workers)
            meter.begin_step()
            for i in range(200):
                meter.record(i, 1)
            meter.end_step()
            return meter.parallel_time

        t1, t4, t8 = run(1), run(4), run(8)
        assert t1 >= t4 >= t8
        assert t1 == 200


class TestStableHashFloatCanonicalization:
    """Regression: keys that compare equal must hash (and shard) equal.

    ``stable_hash`` used to route every float through ``float.hex()``,
    so ``3.0`` and ``3`` — equal keys in Python — landed on different
    workers, and ``-0.0`` split from ``0.0`` via its ``'-0x0.0p+0'``
    spelling. Integral floats now canonicalize to the int path.
    """

    def test_integral_float_hashes_like_int(self):
        assert stable_hash(3.0) == stable_hash(3)
        assert stable_hash(-17.0) == stable_hash(-17)
        assert stable_hash(0.0) == stable_hash(0)

    def test_negative_zero_hashes_like_zero(self):
        assert stable_hash(-0.0) == stable_hash(0.0)
        assert stable_hash(-0.0) == stable_hash(0)

    def test_non_integral_floats_unaffected(self):
        assert stable_hash(3.5) == stable_hash((3.5).hex())
        assert stable_hash(3.5) != stable_hash(3)

    def test_nan_and_inf_do_not_crash(self):
        for value in (float("nan"), float("inf"), float("-inf")):
            assert 0 <= stable_hash(value) < 2 ** 64

    def test_tuples_with_integral_floats(self):
        assert stable_hash((1.0, "x")) == stable_hash((1, "x"))

    @given(st.integers(-2 ** 52, 2 ** 52), st.integers(2, 16))
    def test_equal_keys_shard_together(self, value, workers):
        assert shard_for(float(value), workers) == shard_for(value, workers)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_hash_is_deterministic(self, value):
        assert stable_hash(value) == stable_hash(value)


class TestMeterAttributionMatchesShardFor:
    """Property: the sink's per-worker attribution is exactly ``shard_for``.

    The meter is the single sharding authority — the trace sink receives
    the already-sharded worker id, so for every recorded key the units
    must land on ``shard_for(key, workers)`` and nowhere else, and the
    sink's frame totals must reproduce the meter's parallel time.
    """

    @given(st.lists(st.tuples(
        st.one_of(st.integers(), st.text(max_size=8),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.tuples(st.integers(), st.integers())),
        st.integers(1, 20)), min_size=1, max_size=40),
        st.integers(1, 8))
    def test_sink_workers_agree_with_shard_for(self, records, workers):
        from repro.observe import TraceSink

        sink = TraceSink(workers)
        meter = WorkMeter(workers=workers, tracer=sink)
        meter.begin_step()
        expected = {}
        for key, units in records:
            meter.record(key, units)
            worker = shard_for(key, workers)
            expected[worker] = expected.get(worker, 0) + units
        meter.end_step()
        sink.mark()
        assert len(sink.steps) == 1
        step = sink.steps[0]
        assert step.worker_units == expected
        assert step.critical_units == max(expected.values())
        assert meter.parallel_time == step.critical_units
        assert meter.total_work == sink.total_units

    @given(st.lists(st.tuples(st.integers(), st.integers(1, 9)),
                    min_size=1, max_size=30))
    def test_serial_attribution_matches_too(self, records):
        from repro.observe import TraceSink

        workers = 4
        sink = TraceSink(workers)
        meter = WorkMeter(workers=workers, tracer=sink)
        for key, units in records:
            meter.record(key, units)
        sink.mark()
        total = sum(units for _key, units in records)
        assert sink.total_units == total
        # Serial work is charged at its full sum, as the meter does.
        assert sum(s.critical_units for s in sink.steps) == \
            meter.parallel_time == total
        for step in sink.steps:
            for (_op, _time, worker), units in step.op_units.items():
                assert 0 <= worker < workers
