"""The timely batch dataflow layer."""

import pytest

from repro.errors import DataflowError
from repro.timely.dataflow import TimelyDataflow


class TestOperators:
    def test_map(self):
        td = TimelyDataflow(workers=3)
        out = td.input("in").map(lambda x: x * 2).capture()
        td.run({"in": [1, 2, 3]})
        assert sorted(out.records) == [2, 4, 6]

    def test_flat_map_and_filter(self):
        td = TimelyDataflow(workers=2)
        out = td.input("in").flat_map(lambda x: range(x)).filter(
            lambda x: x % 2 == 0).capture()
        td.run({"in": [3, 4]})
        assert sorted(out.records) == [0, 0, 2, 2]

    def test_concat(self):
        td = TimelyDataflow()
        a = td.input("a")
        b = td.input("b")
        out = a.concat(b).capture()
        td.run({"a": [1], "b": [2, 3]})
        assert sorted(out.records) == [1, 2, 3]

    def test_exchange_groups_keys_on_one_worker(self):
        td = TimelyDataflow(workers=4)
        stream = td.input("in").exchange(lambda rec: rec[0])
        stream.capture()
        td.run({"in": [("k", i) for i in range(10)]})
        shards = [shard for shard in stream.op.output if shard]
        assert len(shards) == 1  # all records of key "k" on one worker

    def test_aggregate(self):
        td = TimelyDataflow(workers=4)
        out = td.input("in").aggregate(
            lambda rec: rec[0], lambda recs: sum(v for _k, v in recs)
        ).capture()
        td.run({"in": [("a", 1), ("b", 2), ("a", 3)]})
        assert sorted(out.records) == [("a", 4), ("b", 2)]

    def test_join(self):
        td = TimelyDataflow(workers=4)
        left = td.input("l")
        right = td.input("r")
        out = left.join(right, lambda k, a, b: (k, a + b)).capture()
        td.run({"l": [("x", 1), ("y", 10)], "r": [("x", 2), ("x", 3)]})
        assert sorted(out.records) == [("x", 3), ("x", 4)]

    def test_workers_do_not_change_results(self):
        def run(workers):
            td = TimelyDataflow(workers=workers)
            out = td.input("in").aggregate(
                lambda rec: rec % 5, lambda recs: len(recs)).capture()
            td.run({"in": list(range(100))})
            return sorted(out.records)

        assert run(1) == run(7)

    def test_parallelism_reduces_simulated_time(self):
        def parallel_time(workers):
            td = TimelyDataflow(workers=workers)
            td.input("in").map(lambda x: x + 1).capture()
            td.run({"in": list(range(4000))})
            return td.meter.parallel_time

        assert parallel_time(8) < parallel_time(1)


class TestErrors:
    def test_duplicate_input(self):
        td = TimelyDataflow()
        td.input("in")
        with pytest.raises(DataflowError, match="duplicate"):
            td.input("in")

    def test_unknown_input_at_run(self):
        td = TimelyDataflow()
        td.input("in")
        with pytest.raises(DataflowError, match="unknown input"):
            td.run({"other": []})

    def test_missing_input_feeds_empty(self):
        td = TimelyDataflow()
        out = td.input("in").capture()
        td.run({})
        assert out.records == []
