"""The process backend's exchange machinery (`repro.timely.cluster`).

Covers backend validation, cluster lifecycle, FIFO update-before-task
ordering, error propagation, liveness under worker death (the
coordinator must raise a typed ``WorkerFailedError`` naming the worker
and superstep instead of hanging), and inline/process equality at the
timely layer.
"""

import pytest

from repro.errors import ConfigError, WorkerFailedError
from repro.timely.cluster import BACKENDS, ProcessCluster, validate_backend
from repro.timely.dataflow import TimelyDataflow


class EchoOp:
    """Minimal registry entry exercising all three remote hooks."""

    def __init__(self):
        self.state = {}

    def remote_update(self, payload):
        tag, _time, grouped = payload
        if tag == "boom":
            raise RuntimeError("bad update")
        for key, value in grouped.items():
            self.state[key] = value

    def remote_task(self, payload):
        header, items = payload
        if header == "raise":
            raise ValueError("kernel exploded")
        return {key: ((1,), (header, self.state.get(key), value))
                for key, value in items}

    def remote_stats(self):
        return len(self.state)


def make_cluster(workers=2, superstep=None, **kwargs):
    return ProcessCluster(workers, {0: EchoOp()}, superstep=superstep,
                          **kwargs)


class TestValidateBackend:
    def test_inline_always_valid(self):
        assert validate_backend("inline", 1) == "inline"
        assert validate_backend("inline", 64) == "inline"

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            validate_backend("threads", 4)

    def test_process_requires_two_workers(self):
        with pytest.raises(ConfigError, match="workers >= 2"):
            validate_backend("process", 1)
        with pytest.raises(ConfigError, match="workers >= 2"):
            validate_backend("process", 0)

    def test_process_with_enough_workers(self):
        assert validate_backend("process", 2) == "process"

    def test_backends_constant(self):
        assert BACKENDS == ("inline", "process")

    def test_cluster_itself_rejects_one_worker(self):
        with pytest.raises(ConfigError, match="workers >= 2"):
            ProcessCluster(1, {})


class TestClusterExchange:
    def test_task_round_trip_and_close(self):
        cluster = make_cluster()
        try:
            assert cluster.alive()
            replies = cluster.run_tasks(0, "hdr", [("a", 1), ("b", 2)])
            assert replies == {"a": ((1,), ("hdr", None, 1)),
                               "b": ((1,), ("hdr", None, 2))}
        finally:
            cluster.close()
        assert not cluster.alive()
        cluster.close()  # idempotent

    def test_updates_land_before_tasks(self):
        cluster = make_cluster()
        try:
            cluster.post_updates(0, "set", (0,), {"a": 10, "b": 20})
            replies = cluster.run_tasks(0, "hdr", [("a", None), ("b", None)])
            assert replies["a"][1] == ("hdr", 10, None)
            assert replies["b"][1] == ("hdr", 20, None)
        finally:
            cluster.close()

    def test_identity_routing(self):
        cluster = make_cluster(workers=3)
        try:
            cluster.post_updates(0, "set", (0,), {w: w * 100
                                                  for w in range(3)})
            replies = cluster.run_tasks(0, "h", [(w, None)
                                                 for w in range(3)],
                                        route=lambda worker: worker)
            # Each worker only holds the keys shard_for routed to it, so
            # an identity-routed probe of key w must find w*100 only if
            # shard_for(w) == w was also the update's route... instead
            # verify the reply set covers every key exactly once.
            assert set(replies) == {0, 1, 2}
        finally:
            cluster.close()

    def test_stats_sum_over_workers(self):
        cluster = make_cluster(workers=2)
        try:
            cluster.post_updates(0, "set", (0,),
                                 {f"k{i}": i for i in range(8)})
            assert cluster.stats() == {0: 8}
        finally:
            cluster.close()

    def test_task_error_propagates_typed(self):
        cluster = make_cluster()
        try:
            with pytest.raises(ValueError, match="kernel exploded"):
                cluster.run_tasks(0, "raise", [("a", 1)])
            # The channel stays frame-aligned: a later exchange works.
            assert cluster.run_tasks(0, "ok", [("a", 1)])["a"][0] == (1,)
        finally:
            cluster.close()

    def test_buffered_update_error_surfaces_at_next_sync(self):
        cluster = make_cluster()
        try:
            cluster.post_updates(0, "boom", (0,), {"a": 1})
            with pytest.raises(RuntimeError, match="bad update"):
                cluster.run_tasks(0, "hdr", [("a", 1)])
        finally:
            cluster.close()


class TestWorkerDeath:
    def test_workers_reset_inherited_sigterm_handler(self):
        # Fork copies the coordinator's signal dispositions. The serve
        # daemon installs a SIGTERM handler that only pokes an event-loop
        # wakeup fd — a worker inheriting it would swallow the SIGTERM
        # that multiprocessing's exit hook sends to daemon children, and
        # the coordinator would hang forever in the exit-time join().
        # Workers must restore SIG_DFL so SIGTERM actually kills them.
        import os
        import signal

        previous = signal.signal(signal.SIGTERM, lambda *_args: None)
        try:
            cluster = make_cluster(workers=2)
            try:
                # A synchronous exchange guarantees every worker has
                # finished its startup (including the handler reset)
                # before the kill — otherwise a SIGTERM landing between
                # fork and the reset still hits the inherited handler.
                cluster.stats()
                victim = cluster._procs[0]
                os.kill(victim.pid, signal.SIGTERM)
                victim.join(timeout=10.0)
                assert victim.exitcode == -signal.SIGTERM
            finally:
                cluster.close()
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_killed_worker_raises_worker_failed_not_hang(self):
        cluster = make_cluster(workers=2, superstep=lambda: 7,
                               task_timeout=30.0)
        try:
            victim = 1
            cluster._procs[victim].kill()
            cluster._procs[victim].join(timeout=10.0)
            with pytest.raises(WorkerFailedError) as excinfo:
                cluster.run_tasks(0, "hdr", [(0, None), (1, None)],
                                  route=lambda worker: worker)
            assert excinfo.value.worker == victim
            assert excinfo.value.superstep == 7
            assert excinfo.value.code == "worker-failed"
        finally:
            cluster.close()

    def test_unresponsive_worker_times_out(self):
        class SleepOp:
            def remote_task(self, payload):
                import time

                time.sleep(60)

            def remote_update(self, payload):
                pass

            def remote_stats(self):
                return 0

        cluster = ProcessCluster(2, {0: SleepOp()}, superstep=lambda: 3,
                                 task_timeout=1.0)
        try:
            with pytest.raises(WorkerFailedError, match="no reply"):
                cluster.run_tasks(0, None, [(0, None)],
                                  route=lambda worker: worker)
        finally:
            cluster.close(timeout=1.0)


class TestTimelyBackendEquality:
    @staticmethod
    def build_and_run(backend):
        td = TimelyDataflow(workers=4, backend=backend)
        data = td.input("in")
        mapped = data.map(lambda x: (x % 11, x))
        grouped = mapped.aggregate(
            lambda rec: rec[0], lambda recs: sum(v for _k, v in recs))
        other = td.input("other").filter(lambda rec: rec[1] % 2 == 0)
        out = grouped.join(other, lambda k, a, b: (k, a + b)).capture()
        td.run({"in": list(range(200)),
                "other": [(k, k) for k in range(11)]})
        return (sorted(out.records), td.meter.total_work,
                td.meter.parallel_time)

    def test_counters_and_outputs_identical(self):
        inline = self.build_and_run("inline")
        process = self.build_and_run("process")
        assert inline == process

    def test_process_backend_validation_at_construction(self):
        with pytest.raises(ConfigError):
            TimelyDataflow(workers=1, backend="process")
        with pytest.raises(ConfigError):
            TimelyDataflow(workers=4, backend="gpu")
