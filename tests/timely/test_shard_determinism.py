"""Cross-process determinism of ``stable_hash`` / ``shard_for``.

The process backend routes keys to forked workers by
``shard_for(key, W)``; if that assignment depended on Python's
per-process hash salting, the coordinator and a fresh CLI process (or
two CI runs) would disagree on key ownership and the backend's
byte-identical-counters contract would silently break. These tests pin
the hashes both in-process and across subprocesses launched with
*different* ``PYTHONHASHSEED`` values.
"""

import os
import subprocess
import sys

from repro.timely.worker import shard_for, stable_hash

#: A battery covering every type branch of stable_hash, including the
#: ones whose repr (and thus any fallback path) is salt-sensitive.
BATTERY = [
    0,
    -17,
    2 ** 63,
    3.5,
    -0.0,
    True,
    None,
    "",
    "vertex-42",
    "naïve-ünïcode",
    b"",
    b"raw\x00bytes",
    (),
    (1, "a"),
    ((1, 2), (3, (4, "five"))),
    frozenset(),
    frozenset({1, 2, 3}),
    frozenset({"a", "b", ("c", 7)}),
    frozenset({frozenset({1}), frozenset({2, 3})}),
]


def _battery_signature():
    return [(stable_hash(value), shard_for(value, 4), shard_for(value, 7))
            for value in BATTERY]


def _subprocess_signature(hash_seed: str):
    """Compute the battery signature in a fresh interpreter."""
    code = (
        "import sys, json\n"
        "sys.path.insert(0, sys.argv[1])\n"
        "from tests.timely.test_shard_determinism import "
        "_battery_signature\n"
        "json.dump(_battery_signature(), sys.stdout)\n"
    )
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.path.join(root, "src")
    result = subprocess.run(
        [sys.executable, "-c", code, root],
        capture_output=True, text=True, env=env, check=True, timeout=60)
    import json

    return json.loads(result.stdout)


def test_frozenset_hash_is_order_insensitive():
    assert stable_hash(frozenset({1, 2, 3})) == \
        stable_hash(frozenset({3, 1, 2}))


def test_bytes_and_str_hash_differently():
    assert stable_hash(b"abc") != stable_hash("abc")


def test_shard_for_spreads_and_is_stable():
    owners = {shard_for(("v", i), 4) for i in range(64)}
    assert owners == {0, 1, 2, 3}
    for value in BATTERY:
        assert shard_for(value, 4) == shard_for(value, 4)


def test_battery_identical_across_hash_seeds():
    """Two interpreters with different PYTHONHASHSEED agree exactly."""
    local = [list(entry) for entry in _battery_signature()]
    assert _subprocess_signature("0") == local
    assert _subprocess_signature("12345") == local
