"""The static plan analyzer and UDF determinism linter."""
