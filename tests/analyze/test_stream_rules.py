"""Planted-defect battery for the stream-maintainability rules (GS-M4xx).

Each rule gets a trigger and a near-miss. The pass is opt-in
(``analyze(df, stream=True)``); ``StreamEngine.register`` runs it on
every continuous query, which tests/stream covers end to end.
"""

from repro.analyze import analyze
from repro.differential import Dataflow


def lint(build, **kwargs):
    """Build a dataflow via ``build(df, edges)`` (returning the collection
    to capture) and analyze it with the stream pass enabled."""
    df = Dataflow()
    edges = df.new_input("edges")
    df.capture(build(df, edges), "out")
    return analyze(df, stream=True, **kwargs)


def rules_of(report):
    return {finding.rule for finding in report.findings}


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


def keyed(edges):
    return edges.map(lambda rec: (rec[0], rec[1]), name="keyed")


class TestLoopNegate:
    """GS-M401: non-cancelling negate inside an iterate scope."""

    def test_trigger_bare_negate_in_loop(self):
        report = lint(lambda df, edges: keyed(edges).iterate(
            lambda inner, scope: inner.concat(
                inner.map(lambda rec: rec, name="flip").negate()),
            name="loop"))
        hits = findings_for(report, "GS-M401")
        assert hits
        assert hits[0].severity.value == "error"
        assert "unpaired negative waves" in hits[0].message
        assert "antijoin" in hits[0].hint

    def test_near_miss_antijoin_idiom_in_loop(self):
        def build(df, edges):
            return keyed(edges).iterate(
                lambda inner, scope: inner.concat(
                    inner.semijoin(
                        scope.enter(edges).map(lambda rec: rec[0],
                                               name="keys")).negate()),
                name="loop")

        report = lint(build)
        assert "GS-M401" not in rules_of(report)


class TestRootNegate:
    """GS-M402: non-cancelling negate in the maintained root scope."""

    def test_trigger_bare_root_negate(self):
        report = lint(lambda df, edges: keyed(edges).negate())
        hits = findings_for(report, "GS-M402")
        assert hits
        assert hits[0].severity.value == "error"
        assert "snapshot negative" in hits[0].message

    def test_near_miss_root_antijoin(self):
        def build(df, edges):
            banned = edges.map(lambda rec: rec[0], name="banned")
            return keyed(edges).antijoin(banned)

        report = lint(build)
        assert "GS-M402" not in rules_of(report)

    def test_batch_analysis_allows_root_negate(self):
        # A bounded collection run tears the plan down; only maintained
        # plans treat a root negate as an error.
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(keyed(edges).negate(), "out")
        report = analyze(df)
        assert "GS-M402" not in rules_of(report)


class TestInspectAccumulation:
    """GS-M403: inspect taps buffering state compact can't reach."""

    def test_trigger_inspect_appends_to_closed_over_list(self):
        seen = []

        def tap(rec):
            seen.append(rec)

        report = lint(lambda df, edges: keyed(edges).inspect(tap))
        hits = findings_for(report, "GS-M403")
        assert hits
        assert hits[0].severity.value == "error"
        assert "'seen'" in hits[0].message
        assert "Dataflow.compact" in hits[0].message

    def test_near_miss_stateless_inspect(self):
        def tap(rec):
            print("saw", rec)

        report = lint(lambda df, edges: keyed(edges).inspect(tap))
        assert "GS-M403" not in rules_of(report)

    def test_near_miss_batch_analysis_exempts_inspect(self):
        # The default (batch) passes exempt inspect taps entirely.
        seen = []

        def tap(rec):
            seen.append(rec)

        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(keyed(edges).inspect(tap), "out")
        report = analyze(df)
        assert "GS-M403" not in rules_of(report)
        assert "GS-U204" not in rules_of(report)


class TestNestedIterate:
    """GS-M404: iterate scopes nested under maintenance."""

    def test_trigger_nested_fixed_point(self):
        report = lint(lambda df, edges: keyed(edges).iterate(
            lambda inner, scope: inner.iterate(
                lambda inner2, scope2: inner2.map(lambda rec: rec),
                name="inner.loop"),
            name="outer.loop"))
        hits = findings_for(report, "GS-M404")
        assert len(hits) == 1
        assert hits[0].severity.value == "warning"
        assert "inner.loop" in hits[0].message

    def test_near_miss_single_iterate(self):
        report = lint(lambda df, edges: keyed(edges).iterate(
            lambda inner, scope: inner.concat(
                scope.enter(keyed(edges))).min_by_key(),
            name="loop"))
        assert "GS-M404" not in rules_of(report)


class TestMaintainedCaptures:
    """GS-M405: maintained UDFs closing over mutable containers."""

    def test_trigger_map_captures_dict(self):
        table = {"a": 1}

        def translate(rec):
            return (table.get(rec[0], 0), rec[1])

        report = lint(lambda df, edges: edges.map(translate))
        hits = findings_for(report, "GS-M405")
        assert hits
        assert hits[0].severity.value == "warning"
        assert "'table'" in hits[0].message
        assert "already emitted" in hits[0].message

    def test_near_miss_immutable_capture(self):
        table = (("a", 1),)

        def translate(rec):
            return (dict(table).get(rec[0], 0), rec[1])

        report = lint(lambda df, edges: edges.map(translate))
        assert "GS-M405" not in rules_of(report)

    def test_near_miss_inspect_is_covered_by_m403_instead(self):
        # A read-only mutable capture in an inspect tap is not a result
        # hazard (taps don't emit records); only mutation is (GS-M403).
        labels = ["debug"]

        def tap(rec):
            print(labels[0], rec)

        report = lint(lambda df, edges: keyed(edges).inspect(tap))
        assert "GS-M405" not in rules_of(report)
        assert "GS-M403" not in rules_of(report)

    def test_suppression_on_def_line(self):
        table = {"a": 1}

        def translate(rec):  # analyze: ignore[GS-M405]
            return (table.get(rec[0], 0), rec[1])

        report = lint(lambda df, edges: edges.map(translate))
        assert "GS-M405" not in rules_of(report)


class TestPassIsOptIn:
    def test_default_analyze_reports_no_stream_findings(self):
        seen = []
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(keyed(edges).negate().inspect(
            lambda rec: seen.append(rec)), "out")
        report = analyze(df)
        assert not any(rule.startswith("GS-M4") for rule in rules_of(report))
