"""Planted-defect battery for the shard-safety rules (GS-S3xx).

Every rule gets a trigger (the hazard fires) and a near-miss (the
closest safe shape stays silent). The pass is opt-in, so the battery
also pins that a default ``analyze(df)`` never reports a GS-S3xx
finding — that contract keeps the corpus tests and the fuzz invariant
green without every plan opting in.
"""

import threading

from repro.analyze import analyze
from repro.differential import Dataflow


class _Unpicklable:
    """Deterministically fails any pickle round-trip."""

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


def lint(attach, **kwargs):
    """Build a one-operator dataflow via ``attach(edges)`` and analyze it
    with the shard-safety pass enabled."""
    df = Dataflow()
    edges = df.new_input("edges")
    df.capture(attach(edges), "out")
    return analyze(df, concurrency=True, **kwargs)


def rules_of(report):
    return {finding.rule for finding in report.findings}


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestProcessLocalCapture:
    """GS-S301: locks, files, RNGs, generators in closures."""

    def test_trigger_captured_lock(self):
        lock = threading.Lock()

        def guarded(rec):
            with lock:
                return rec

        report = lint(lambda edges: edges.map(guarded))
        hits = findings_for(report, "GS-S301")
        assert hits
        assert hits[0].severity.value == "error"
        assert "lock" in hits[0].message
        assert "'lock'" in hits[0].message

    def test_trigger_captured_rng_instance(self):
        import random
        rng = random.Random(7)

        def jitter(key, vals):
            return [sum(vals) if rng else 0]

        report = lint(lambda edges: edges.reduce(jitter))
        hits = findings_for(report, "GS-S301")
        assert hits and "RNG instance" in hits[0].message

    def test_trigger_captured_generator(self):
        gen = iter(x for x in range(10))

        def taker(rec):
            return (rec, next(gen))

        report = lint(lambda edges: edges.map(taker))
        hits = findings_for(report, "GS-S301")
        assert hits and "live generator" in hits[0].message

    def test_trigger_fires_on_any_role_not_just_shippable(self):
        lock = threading.Lock()
        report = lint(lambda edges: edges.filter(
            lambda rec: lock is not None))
        assert findings_for(report, "GS-S301")

    def test_near_miss_value_computed_before_capture(self):
        import random
        offset = random.Random(7).randint(0, 10)  # plain int by run time
        report = lint(lambda edges: edges.map(lambda rec: (rec, offset)))
        assert "GS-S301" not in rules_of(report)


class TestShippableMutation:
    """GS-S302: reduce/join kernels writing closed-over state."""

    def test_trigger_reduce_mutating_closed_over_dict(self):
        memo = {}

        def logic(key, vals):
            memo[key] = len(vals)
            return [memo[key]]

        report = lint(lambda edges: edges.reduce(logic))
        hits = findings_for(report, "GS-S302")
        assert hits
        assert hits[0].severity.value == "error"
        assert "forked worker" in hits[0].message

    def test_near_miss_same_mutation_in_a_map_is_not_shippable(self):
        # A map runs on the coordinator under backend='process'; the
        # base GS-U204 rule still flags the write, but the shard pass
        # must not double-report it as a worker-divergence hazard.
        memo = {}

        def tag(rec):
            memo[rec] = rec
            return rec

        report = lint(lambda edges: edges.map(tag))
        assert "GS-S302" not in rules_of(report)
        assert "GS-U204" in rules_of(report)

    def test_near_miss_local_accumulator(self):
        def logic(key, vals):
            acc = {}
            acc[key] = sum(vals)
            return [acc[key]]

        report = lint(lambda edges: edges.reduce(logic))
        assert "GS-S302" not in rules_of(report)


class TestHashDerivedKeys:
    """GS-S303: hash() feeding records in keyed roles."""

    def test_trigger_hash_in_map(self):
        report = lint(lambda edges: edges.map(
            lambda rec: (hash(str(rec)) % 5, rec)))
        hits = findings_for(report, "GS-S303")
        assert hits
        assert "PYTHONHASHSEED" in hits[0].message
        assert "stable_hash" in hits[0].hint

    def test_near_miss_hash_in_filter_predicate(self):
        # filter only drops records; its result never becomes a key.
        report = lint(lambda edges: edges.filter(
            lambda rec: hash(str(rec)) % 2 == 0))
        assert "GS-S303" not in rules_of(report)

    def test_near_miss_stable_hash(self):
        from repro.timely import stable_hash

        report = lint(lambda edges: edges.map(
            lambda rec: (stable_hash(rec) % 5, rec)))
        assert "GS-S303" not in rules_of(report)


class TestPickleProbe:
    """GS-S304: captured kernel state must survive a pickle round-trip."""

    def test_trigger_unpicklable_capture_in_reduce(self):
        poison = _Unpicklable()

        def logic(key, vals):
            return [len(vals) if poison else 0]

        report = lint(lambda edges: edges.reduce(logic))
        hits = findings_for(report, "GS-S304")
        assert hits
        assert hits[0].severity.value == "error"
        assert "fails a pickle round-trip" in hits[0].message
        assert "WorkerFailedError" in hits[0].message
        assert "'poison'" in hits[0].message

    def test_near_miss_picklable_capture(self):
        allow = frozenset({1, 2, 3})

        def logic(key, vals):
            return [v for v in vals if v in allow]

        report = lint(lambda edges: edges.reduce(logic))
        assert "GS-S304" not in rules_of(report)

    def test_near_miss_unpicklable_capture_outside_shippable_role(self):
        # The probe models the exchange channels; a map callable never
        # ships, so its captures need not pickle.
        poison = _Unpicklable()
        report = lint(lambda edges: edges.map(
            lambda rec: (rec, poison is not None)))
        assert "GS-S304" not in rules_of(report)

    def test_near_miss_captured_helper_function_is_code_not_data(self):
        def helper(v):
            return v + 1

        report = lint(lambda edges: edges.reduce(
            lambda key, vals: [helper(len(vals))]))
        assert "GS-S304" not in rules_of(report)


class TestSnapshotReads:
    """GS-S305: shippable kernels reading captured mutable containers."""

    def test_trigger_reduce_reading_closed_over_list(self):
        weights = [1.0, 0.5]

        def logic(key, vals):
            return [sum(vals) * weights[0]]

        report = lint(lambda edges: edges.reduce(logic))
        hits = findings_for(report, "GS-S305")
        assert hits
        assert hits[0].severity.value == "warning"
        assert "fork-time snapshot" in hits[0].message

    def test_near_miss_immutable_capture(self):
        weights = (1.0, 0.5)

        def logic(key, vals):
            return [sum(vals) * weights[0]]

        report = lint(lambda edges: edges.reduce(logic))
        assert "GS-S305" not in rules_of(report)

    def test_near_miss_mutable_capture_in_map(self):
        weights = [1.0, 0.5]
        report = lint(lambda edges: edges.map(
            lambda rec: (rec, weights[0])))
        assert "GS-S305" not in rules_of(report)

    def test_suppression_on_def_line(self):
        table = {"a": 1}

        def logic(key, vals):  # analyze: ignore[GS-S305]
            return [table.get(key, 0)]

        report = lint(lambda edges: edges.reduce(logic))
        assert "GS-S305" not in rules_of(report)


class TestWorkerIo:
    """GS-S306: console/file I/O inside shippable kernels."""

    def test_trigger_print_in_reduce(self):
        def logic(key, vals):
            print(key, vals)
            return [len(vals)]

        report = lint(lambda edges: edges.reduce(logic))
        hits = findings_for(report, "GS-S306")
        assert hits
        assert hits[0].severity.value == "warning"
        assert "print()" in hits[0].message
        assert "inspect()" in hits[0].hint

    def test_trigger_sys_stream_write(self):
        import sys

        def logic(key, vals):
            sys.stderr.write(str(key))
            return [len(vals)]

        report = lint(lambda edges: edges.reduce(logic))
        hits = findings_for(report, "GS-S306")
        assert hits and "sys." in hits[0].message

    def test_near_miss_print_in_inspect_tap(self):
        # inspect taps run on the coordinator — I/O is their job.
        report = lint(lambda edges: edges.inspect(print))
        assert "GS-S306" not in rules_of(report)

    def test_near_miss_print_in_map(self):
        report = lint(lambda edges: edges.map(
            lambda rec: (print(rec), rec)[1]))
        assert "GS-S306" not in rules_of(report)


class TestPassIsOptIn:
    def test_default_analyze_reports_no_shard_findings(self):
        memo = {}

        def logic(key, vals):
            memo[key] = sum(vals)
            print(key)
            return [hash(key) + memo[key]]

        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.reduce(logic), "out")
        report = analyze(df)
        assert not any(rule.startswith("GS-S3") for rule in rules_of(report))

    def test_whole_rule_ignore_list(self):
        weights = [1.0]
        report = lint(lambda edges: edges.reduce(
            lambda key, vals: [sum(vals) * weights[0]]),
            ignore=("GS-S305",))
        assert "GS-S305" not in rules_of(report)
        assert report.suppressed >= 1
