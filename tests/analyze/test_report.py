"""Findings, report rendering, serialization, and rule-level ignores."""

import json

import pytest

from repro.analyze import RULES, Severity, analyze
from repro.analyze.report import AnalysisReport, Finding
from repro.differential import Dataflow


def dirty_dataflow():
    """One ERROR (unguarded negate) and one WARNING (dangling chain)."""
    df = Dataflow()
    edges = df.new_input("edges")

    def body(inner, scope):
        return inner.concat(inner.map(lambda rec: rec, name="flip").negate())

    df.capture(edges.iterate(body, name="loop"), "out")
    edges.map(lambda rec: rec, name="dead")
    return df


class TestRuleCatalog:
    def test_ids_are_unique_and_namespaced(self):
        assert all(rule_id.startswith("GS-") for rule_id in RULES)
        plan = [r for r in RULES if r.startswith("GS-P")]
        udf = [r for r in RULES if r.startswith("GS-U")]
        assert len(plan) == 7 and len(udf) == 5

    def test_every_rule_has_catalog_text(self):
        for rule in RULES.values():
            assert rule.title and rule.rationale


class TestReport:
    def test_ok_reflects_error_findings_only(self):
        report = analyze(dirty_dataflow())
        assert not report.ok
        assert {f.rule for f in report.errors()} == {"GS-P102"}
        assert {f.rule for f in report.warnings()} == {"GS-P104"}
        assert report.by_rule() == {"GS-P102": 1, "GS-P104": 1}

    def test_sorted_findings_put_errors_first(self):
        report = analyze(dirty_dataflow())
        severities = [f.severity for f in report.sorted_findings()]
        assert severities == sorted(
            severities, key=[Severity.ERROR, Severity.WARNING,
                             Severity.INFO].index)

    def test_render_mentions_counts_and_hints(self):
        text = analyze(dirty_dataflow()).render()
        assert "1 error(s), 1 warning(s)" in text
        assert "GS-P102" in text and "hint:" in text

    def test_clean_render(self):
        df = Dataflow()
        df.capture(df.new_input("edges").map(lambda rec: rec), "out")
        text = analyze(df).render()
        assert "no findings: the plan is clean" in text

    def test_json_round_trip(self):
        report = analyze(dirty_dataflow())
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["by_rule"] == {"GS-P102": 1, "GS-P104": 1}
        restored = [Finding.from_dict(f) for f in payload["findings"]]
        assert restored == report.sorted_findings()

    def test_operator_paths_are_stable_addresses(self):
        report = analyze(dirty_dataflow())
        error = report.errors()[0]
        assert error.operator.startswith("root/loop/")
        assert "#" in error.operator


class TestRuleIgnores:
    def test_ignore_drops_rule_and_counts_suppressed(self):
        report = analyze(dirty_dataflow(), ignore=["GS-P102", "GS-P104"])
        assert report.ok and not report.findings
        assert report.suppressed == 2

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="GS-P999"):
            analyze(dirty_dataflow(), ignore=["GS-P999"])


class TestReportHelpers:
    def test_extend_appends(self):
        report = AnalysisReport()
        other = analyze(dirty_dataflow())
        report.extend(other.findings)
        assert len(report.findings) == 2
