"""Planted-defect battery for the plan rules (GS-P1xx).

Each rule gets a minimal dataflow that triggers it and a near-miss that
must stay silent — the near-miss is the legitimate idiom the rule must
not punish.
"""

import pytest

from repro.analyze import analyze
from repro.differential import Dataflow
from repro.differential.collection import Collection
from repro.errors import DataflowError


def rules_of(report):
    return {finding.rule for finding in report.findings}


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestScopeCrossing:
    """GS-P101: edges between scopes without an enter."""

    def test_trigger_consumer_in_child_reads_root_directly(self):
        df = Dataflow()
        edges = df.new_input("edges")

        def body(inner, scope):
            # Plant: wrap the ROOT input op in the child scope and consume
            # it there — the edge root->child is not an enter.
            smuggled = Collection(df, edges.op, scope).map(
                lambda rec: rec, name="smuggled")
            return inner.concat(smuggled).min_by_key()

        df.capture(edges.iterate(body, name="loop"), "out")
        report = analyze(df)
        hits = findings_for(report, "GS-P101")
        assert hits, report.render()
        assert "smuggled" in hits[0].operator
        assert "across a scope boundary" in hits[0].message

    def test_near_miss_proper_enter_is_clean(self):
        df = Dataflow()
        edges = df.new_input("edges")

        def body(inner, scope):
            stepped = scope.enter(edges).map(lambda rec: rec, name="stepped")
            return inner.concat(stepped).min_by_key()

        df.capture(edges.iterate(body, name="loop"), "out")
        assert "GS-P101" not in rules_of(analyze(df))


class TestUnguardedNegate:
    """GS-P102: a negate feeding the loop variable without a reduce."""

    def test_trigger_negate_reaches_variable(self):
        df = Dataflow()
        edges = df.new_input("edges")

        def body(inner, scope):
            return inner.concat(
                inner.map(lambda rec: rec, name="flip").negate())

        df.capture(edges.iterate(body, name="bad.loop"), "out")
        hits = findings_for(analyze(df), "GS-P102")
        assert hits
        assert hits[0].severity.value == "error"
        assert "loop variable" in hits[0].message
        assert "reduce" in hits[0].hint

    def test_near_miss_reduce_guard_on_feedback(self):
        df = Dataflow()
        edges = df.new_input("edges")

        def body(inner, scope):
            return inner.concat(
                inner.map(lambda rec: rec, name="flip").negate()).distinct()

        df.capture(edges.iterate(body, name="loop"), "out")
        assert "GS-P102" not in rules_of(analyze(df))

    def test_near_miss_antijoin_idiom_cancels_exactly(self):
        # The SCC-style antijoin A.concat(A.semijoin(K).negate()) is safe
        # without a guard: every negative cancels a positive one-for-one.
        df = Dataflow()
        edges = df.new_input("edges")
        keys = df.new_input("keys")

        def body(inner, scope):
            return inner.antijoin(scope.enter(keys))

        df.capture(edges.iterate(body, name="loop"), "out")
        assert "GS-P102" not in rules_of(analyze(df))

    def test_near_miss_negate_outside_any_loop(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        df.capture(a.concat(b.negate()), "out")
        assert "GS-P102" not in rules_of(analyze(df))


class TestRedundantArrange:
    """GS-P103: the same upstream arranged twice."""

    def test_trigger_same_collection_arranged_twice(self):
        df = Dataflow()
        edges = df.new_input("edges")
        other = df.new_input("other")
        first = edges.arrange(name="idx1")
        second = edges.arrange(name="idx2")
        df.capture(other.join_arranged(first, lambda k, a, b: (k, a)), "o1")
        df.capture(other.join_arranged(second, lambda k, a, b: (k, b)), "o2")
        hits = findings_for(analyze(df), "GS-P103")
        assert hits
        assert "duplicates" in hits[0].message

    def test_trigger_arrange_of_arrange(self):
        df = Dataflow()
        edges = df.new_input("edges")
        arr = edges.arrange(name="idx")
        arr.as_collection().arrange(name="idx.again")
        hits = findings_for(analyze(df), "GS-P103")
        assert any("re-indexes" in f.message for f in hits)

    def test_near_miss_one_arrangement_shared_by_two_joins(self):
        df = Dataflow()
        edges = df.new_input("edges")
        other = df.new_input("other")
        arr = edges.arrange(name="idx")
        df.capture(other.join_arranged(arr, lambda k, a, b: (k, a)), "o1")
        df.capture(other.join_arranged(arr, lambda k, a, b: (k, b)), "o2")
        assert "GS-P103" not in rules_of(analyze(df))

    def test_near_miss_distinct_upstreams(self):
        df = Dataflow()
        edges = df.new_input("edges")
        edges.arrange(name="idx1")
        edges.map(lambda rec: rec).arrange(name="idx2")
        assert "GS-P103" not in rules_of(analyze(df))


class TestDangling:
    """GS-P104: operators with no path to a capture/inspect sink."""

    def test_trigger_uncaptured_chain(self):
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.map(lambda rec: rec, name="kept"), "out")
        edges.map(lambda rec: rec, name="dead")
        hits = findings_for(analyze(df), "GS-P104")
        assert len(hits) == 1
        assert "dead" in hits[0].operator

    def test_trigger_dangling_input_called_out(self):
        df = Dataflow()
        edges = df.new_input("edges")
        unused = df.new_input("unused")
        df.capture(edges.map(lambda rec: rec), "out")
        hits = findings_for(analyze(df), "GS-P104")
        assert len(hits) == 1
        assert "input unused" in hits[0].message

    def test_near_miss_inspect_counts_as_sink(self):
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.map(lambda rec: rec, name="kept"), "out")
        edges.map(lambda rec: rec, name="tapped").inspect(print)
        assert "GS-P104" not in rules_of(analyze(df))

    def test_near_miss_loop_internals_reach_sink_via_leave(self):
        # Everything inside an iterate drains through the virtual
        # leave-tap edge; none of it is dangling.
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.iterate(
            lambda inner, scope: inner.concat(
                scope.enter(edges)).min_by_key()), "out")
        assert "GS-P104" not in rules_of(analyze(df))


class TestScopeShape:
    """GS-P105: loop parts and sinks at the wrong depth."""

    def test_trigger_capture_inside_loop_scope(self):
        df = Dataflow()
        edges = df.new_input("edges")

        def body(inner, scope):
            inner.capture("bad.tap")
            return inner.concat(scope.enter(edges)).min_by_key()

        df.capture(edges.iterate(body, name="loop"), "out")
        hits = findings_for(analyze(df), "GS-P105")
        assert hits
        assert any("capture" in f.message for f in hits)

    def test_near_miss_capture_of_leave_stream(self):
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.iterate(
            lambda inner, scope: inner.concat(
                scope.enter(edges)).min_by_key()), "out")
        assert "GS-P105" not in rules_of(analyze(df))


class TestJoinKeyProvenance:
    """GS-P106: equi-join of keys from two unrelated inputs."""

    def test_trigger_join_across_inputs(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        df.capture(a.join(b, lambda k, x, y: (k, (x, y))), "out")
        hits = findings_for(analyze(df), "GS-P106")
        assert hits
        assert "'a'" in hits[0].message and "'b'" in hits[0].message

    def test_near_miss_rekeyed_side_is_unknown_provenance(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")
        rekeyed = b.map(lambda rec: rec, name="rekey")
        df.capture(a.join(rekeyed, lambda k, x, y: (k, (x, y))), "out")
        assert "GS-P106" not in rules_of(analyze(df))

    def test_near_miss_self_join_through_filter(self):
        df = Dataflow()
        a = df.new_input("a")
        df.capture(a.join(a.filter(lambda rec: True),
                          lambda k, x, y: (k, (x, y))), "out")
        assert "GS-P106" not in rules_of(analyze(df))


class TestRearrangedJoin:
    """GS-P107: a plain join reading an arranged stream."""

    def test_trigger_join_of_arranged_stream(self):
        df = Dataflow()
        edges = df.new_input("edges")
        arr = edges.arrange(name="idx")
        df.capture(edges.join(arr.as_collection(),
                              lambda k, x, y: (k, x)), "out")
        hits = findings_for(analyze(df), "GS-P107")
        assert hits
        assert "join_arranged" in hits[0].hint

    def test_near_miss_join_arranged_reuses_index(self):
        df = Dataflow()
        edges = df.new_input("edges")
        arr = edges.arrange(name="idx")
        df.capture(edges.join_arranged(arr, lambda k, x, y: (k, x)), "out")
        assert "GS-P107" not in rules_of(analyze(df))


class TestCrossScopeErrorMessage:
    """Regression: _check_same_scope names both operators and depths."""

    def test_message_names_operators_and_depths(self):
        df = Dataflow()
        a = df.new_input("a")
        b = df.new_input("b")

        def body(inner, scope):
            with pytest.raises(DataflowError) as excinfo:
                inner.concat(b)
            message = str(excinfo.value)
            assert "b" in message
            assert "scope depth 2" in message
            assert "scope depth 1" in message
            assert "enter()" in message
            return inner.concat(scope.enter(b)).min_by_key()

        df.capture(a.iterate(body), "out")
