"""Planted-defect battery for the UDF determinism rules (GS-U2xx)."""

import random

from repro.analyze import analyze
from repro.differential import Dataflow


def lint(attach):
    """Build a one-operator dataflow via ``attach(edges)`` and analyze it."""
    df = Dataflow()
    edges = df.new_input("edges")
    df.capture(attach(edges), "out")
    return analyze(df)


def rules_of(report):
    return {finding.rule for finding in report.findings}


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestNondeterministicCalls:
    """GS-U201: random / clock / identity sources inside callables."""

    def test_trigger_random_module(self):
        report = lint(lambda edges: edges.map(
            lambda rec: (rec, random.random())))
        hits = findings_for(report, "GS-U201")
        assert hits
        assert hits[0].severity.value == "error"
        assert "random.random()" in hits[0].message
        assert "udf" in hits[0].operator

    def test_trigger_rng_method_on_any_receiver(self):
        rng = random.Random(0)
        report = lint(lambda edges: edges.map(lambda rec: rng.choice([rec])))
        assert findings_for(report, "GS-U201")

    def test_trigger_bare_id(self):
        report = lint(lambda edges: edges.map(lambda rec: (id(rec), rec)))
        hits = findings_for(report, "GS-U201")
        assert hits and "id()" in hits[0].message

    def test_trigger_wall_clock(self):
        import time

        report = lint(lambda edges: edges.map(
            lambda rec: (rec, time.time())))
        hits = findings_for(report, "GS-U201")
        assert hits and "time.time()" in hits[0].message

    def test_trigger_monotonic_clock(self):
        import time

        report = lint(lambda edges: edges.map(
            lambda rec: (rec, time.monotonic())))
        assert findings_for(report, "GS-U201")

    def test_trigger_os_urandom(self):
        import os

        report = lint(lambda edges: edges.map(
            lambda rec: (rec, os.urandom(4))))
        hits = findings_for(report, "GS-U201")
        assert hits and "os.urandom()" in hits[0].message

    def test_trigger_uuid4(self):
        import uuid

        report = lint(lambda edges: edges.map(
            lambda rec: (rec, str(uuid.uuid4()))))
        assert findings_for(report, "GS-U201")

    def test_near_miss_id_in_inspect_tap(self):
        # Identity in a debug-only tap never reaches emitted records.
        def tap(rec):
            print(id(rec), rec)

        report = lint(lambda edges: edges.inspect(tap))
        assert "GS-U201" not in rules_of(report)

    def test_near_miss_plain_arithmetic(self):
        report = lint(lambda edges: edges.map(
            lambda rec: (rec[0], max(rec[1], 0) + 1)))
        assert "GS-U201" not in rules_of(report)

    def test_near_miss_random_as_record_field_name(self):
        # Attribute *access* named like a hazard is fine; only calls count.
        def shuffle_free(rec):
            return (rec, len("random"))

        report = lint(lambda edges: edges.map(shuffle_free))
        assert "GS-U201" not in rules_of(report)


class TestUnorderedIteration:
    """GS-U202: set/dict iteration order reaching the output."""

    def test_trigger_list_built_from_set(self):
        def expand(rec):
            return [(rec, tag) for tag in {"a", "b"}]

        report = lint(lambda edges: edges.flat_map(expand))
        hits = findings_for(report, "GS-U202")
        assert hits
        assert "hash-dependent" in hits[0].message

    def test_trigger_for_loop_over_dict_values(self):
        def logic(key, vals):
            out = []
            for value in vals.keys():
                out.append(value)
            return out[:1]

        report = lint(lambda edges: edges.reduce(logic))
        assert findings_for(report, "GS-U202")

    def test_near_miss_sum_over_dict_items(self):
        report = lint(lambda edges: edges.reduce(
            lambda key, vals: [sum(v * m for v, m in vals.items())]))
        assert "GS-U202" not in rules_of(report)

    def test_near_miss_sorted_set(self):
        def expand(rec):
            return [(rec, tag) for tag in sorted({"a", "b"})]

        report = lint(lambda edges: edges.flat_map(expand))
        assert "GS-U202" not in rules_of(report)

    def test_suppression_comment_on_offending_line(self):
        def logic(key, vals):
            best = None
            for value in vals.keys():  # analyze: ignore[GS-U202]
                best = value if best is None else min(best, value)
            return [best]

        report = lint(lambda edges: edges.reduce(logic))
        assert "GS-U202" not in rules_of(report)
        assert report.suppressed >= 1


class TestMutableDefaults:
    """GS-U203: shared default containers."""

    def test_trigger_list_default(self):
        def tag(rec, seen=[]):
            seen.append(rec)
            return (rec, len(seen))

        report = lint(lambda edges: edges.map(tag))
        assert findings_for(report, "GS-U203")

    def test_near_miss_none_default(self):
        def tag(rec, seen=None):
            local = [] if seen is None else seen
            local.append(rec)
            return (rec, len(local))

        report = lint(lambda edges: edges.map(tag))
        assert "GS-U203" not in rules_of(report)


class TestExternalMutation:
    """GS-U204: writes escaping the callable's own frame."""

    def test_trigger_write_to_closed_over_dict(self):
        cache = {}

        def memo(rec):
            cache[rec] = rec
            return rec

        report = lint(lambda edges: edges.map(memo))
        hits = findings_for(report, "GS-U204")
        assert hits
        assert hits[0].severity.value == "error"
        assert "'cache'" in hits[0].message

    def test_trigger_append_to_closed_over_list(self):
        seen = []
        report = lint(lambda edges: edges.filter(
            lambda rec: seen.append(rec) is None))
        assert findings_for(report, "GS-U204")

    def test_trigger_global_declaration(self):
        def bump(rec):
            global _counter
            _counter = rec
            return rec

        report = lint(lambda edges: edges.map(bump))
        hits = findings_for(report, "GS-U204")
        assert hits and "global/nonlocal" in hits[0].message

    def test_near_miss_local_mutation_is_fine(self):
        def expand(rec):
            out = []
            out.append((rec, 0))
            out.append((rec, 1))
            return out

        report = lint(lambda edges: edges.flat_map(expand))
        assert "GS-U204" not in rules_of(report)

    def test_near_miss_inspect_taps_may_mutate(self):
        # Observing into a buffer is inspect's entire purpose.
        seen = []
        report = lint(lambda edges: edges.inspect(
            lambda rec: seen.append(rec)))
        assert "GS-U204" not in rules_of(report)


class TestHashRule:
    """GS-U205: hash() varies across interpreter runs."""

    def test_trigger_hash_call(self):
        report = lint(lambda edges: edges.map(
            lambda rec: (hash(str(rec)) % 7, rec)))
        hits = findings_for(report, "GS-U205")
        assert hits
        assert "stable_hash" in hits[0].hint

    def test_near_miss_stable_hash(self):
        from repro.timely import stable_hash

        report = lint(lambda edges: edges.map(
            lambda rec: (stable_hash(rec) % 7, rec)))
        assert "GS-U205" not in rules_of(report)


class TestLinterMechanics:
    def test_builtin_callable_skipped_not_failed(self):
        report = lint(lambda edges: edges.map(repr))
        assert report.udfs_skipped >= 1
        assert not report.findings

    def test_two_lambdas_on_one_line_are_distinguished(self):
        df = Dataflow()
        edges = df.new_input("edges")
        clean, dirty = lambda r: r, lambda r: (r, random.random())
        df.capture(edges.map(clean, name="clean").map(dirty, name="dirty"),
                   "out")
        report = analyze(df)
        hits = findings_for(report, "GS-U201")
        assert len(hits) == 1
        assert "dirty" in hits[0].operator

    def test_shared_callable_linted_once_reported_per_site(self):
        def noisy(rec):
            return (rec, random.random())

        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.map(noisy, name="one"), "o1")
        df.capture(edges.map(noisy, name="two"), "o2")
        report = analyze(df)
        assert len(findings_for(report, "GS-U201")) == 2
