"""Strict-mode gating, CLI/corpus integration, and zero-overhead checks."""

import json

import pytest

from repro.algorithms import Bfs, Wcc
from repro.analyze import analyze, analyze_computation
from repro.analyze.corpus import analyze_corpus, default_computations
from repro.core.computation import GraphComputation
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.differential import Dataflow
from repro.errors import AnalysisError
from repro.graph.edge_stream import EdgeStream


class BadLoop(GraphComputation):
    """Planted defect: a negate feeds the loop variable unguarded."""

    name = "bad-loop"

    def build(self, dataflow, edges):
        return edges.map(lambda rec: (rec[0], 0)).iterate(
            lambda inner, scope: inner.concat(
                inner.map(lambda rec: rec, name="flip").negate()),
            name="bad.loop")


def chain_collection(num_views=4):
    diffs = [{(index, index, index + 1, 1): 1} for index in range(num_views)]
    return collection_from_diffs("chain", diffs)


class TestStrictMode:
    def test_strict_refuses_planted_negate(self):
        stream = EdgeStream([(0, 0, 1, 1)])
        with pytest.raises(AnalysisError) as excinfo:
            AnalyticsExecutor(strict=True).run_on_view(BadLoop(), stream)
        message = str(excinfo.value)
        assert "GS-P102" in message
        assert "--strict" in message
        assert excinfo.value.report.errors()

    def test_strict_passes_clean_computation(self):
        stream = EdgeStream([(0, 0, 1, 1), (1, 1, 2, 1)])
        result = AnalyticsExecutor(strict=True).run_on_view(Bfs(), stream)
        assert result.vertex_map()

    def test_strict_collection_run_checks_once_and_runs(self):
        collection = chain_collection()
        result = AnalyticsExecutor(strict=True).run_on_collection(
            Wcc(), collection, mode=ExecutionMode.ADAPTIVE)
        assert len(result.views) == collection.num_views

    def test_non_strict_runs_planted_defect(self):
        # Without --strict the defect is the user's problem, as before.
        stream = EdgeStream([(0, 0, 1, 1)])
        result = AnalyticsExecutor().run_on_view(BadLoop(), stream)
        assert result is not None


class TestZeroOverhead:
    def test_analysis_leaves_costs_byte_identical(self):
        collection = chain_collection(6)
        baseline = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work")
        computation = Wcc()
        analyze_computation(computation)  # analyze, then run the same plan
        analyzed = AnalyticsExecutor().run_on_collection(
            computation, collection, mode=ExecutionMode.DIFF_ONLY,
            cost_metric="work")
        assert analyzed.total_work == baseline.total_work
        assert analyzed.total_parallel_time == baseline.total_parallel_time

    def test_analyze_twice_is_deterministic(self):
        df = Dataflow()
        edges = df.new_input("edges")
        df.capture(edges.iterate(
            lambda inner, scope: inner.concat(
                scope.enter(edges)).min_by_key()), "out")
        first = analyze(df)
        second = analyze(df)
        assert first.to_dict() == second.to_dict()


class TestCorpus:
    def test_all_builtin_algorithms_are_clean(self):
        from repro.verify.oracles import ALGORITHMS

        plans = default_computations(seed=0)
        assert len(plans) == len(ALGORITHMS)
        for label, computation in plans:
            report = analyze_computation(computation)
            assert not report.findings, \
                f"{label}:\n{report.render()}"

    def test_pack_plans_are_clean_under_every_pass(self):
        # The community & scoring pack (labelprop/ppr/ktruss/score) must
        # stay finding-free even with the opt-in shard-safety and
        # stream-maintainability passes enabled: these plans are run on
        # the process backend and registered as continuous queries.
        import random

        from repro.verify.oracles import ALGORITHMS

        for name in ("labelprop", "ppr", "ktruss", "score"):
            spec = ALGORITHMS[name]
            params = spec.sample_params(random.Random(7), list(range(8)))
            computation = spec.computation(params)
            report = analyze_computation(computation, workers=3,
                                         concurrency=True, stream=True)
            assert not report.findings, f"{name}:\n{report.render()}"

    def test_corpus_includes_generated_plans(self):
        reports = analyze_corpus(seed=3, generated=3)
        generated = [label for label in reports if label.startswith("gen-")]
        assert len(generated) == 3
        assert all(report.ok for report in reports.values())


class TestFacade:
    def test_graphsurge_analyze_and_explain(self, call_graph):
        from repro import Graphsurge

        gs = Graphsurge()
        gs.add_graph(call_graph)
        gs.execute("create view collection hist on Calls "
                   "[y2015: year <= 2015], [y2019: year <= 2019]")
        report = gs.analyze(Wcc())
        assert report.ok
        text = gs.explain("hist", analysis=report)
        assert "static analysis: clean" in text

    def test_explain_renders_findings(self, call_graph):
        from repro import Graphsurge

        gs = Graphsurge()
        gs.add_graph(call_graph)
        gs.execute("create view collection hist on Calls "
                   "[y2015: year <= 2015], [y2019: year <= 2019]")
        report = gs.analyze(BadLoop())
        text = gs.explain("hist", analysis=report)
        assert "static analysis: 1 error(s)" in text
        assert "GS-P102" in text


class TestDotColoring:
    def test_findings_color_flagged_operators(self):
        from repro.differential.debug import to_dot

        df = Dataflow()
        edges = df.new_input("edges")

        def body(inner, scope):
            return inner.concat(
                inner.map(lambda rec: rec, name="flip").negate())

        df.capture(edges.iterate(body, name="loop"), "out")
        edges.map(lambda rec: rec, name="dead")
        report = analyze(df)
        plain = to_dot(df)
        assert "fillcolor" not in plain
        colored = to_dot(df, report)
        assert "fillcolor=red" in colored      # GS-P102 (error)
        assert "fillcolor=yellow" in colored   # GS-P104 (warning)
        for line in colored.splitlines():
            if "fillcolor=red" in line:
                assert "negate" in line
            if "fillcolor=yellow" in line:
                assert "dead" in line


class TestCli:
    def test_analyze_subcommand_clean(self, capsys):
        from repro.cli import main

        assert main(["analyze", "wcc", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "wcc: clean" in out
        assert "analyzed 2 plan(s): 0 error(s)" in out

    def test_analyze_unknown_name(self, capsys):
        from repro.cli import main

        assert main(["analyze", "quantum"]) == 1
        assert "unknown computation" in capsys.readouterr().err

    def test_analyze_writes_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "analysis.json"
        assert main(["analyze", "--generated", "2",
                     "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert all(entry["ok"] for entry in payload.values())
        assert any(label.startswith("gen-") for label in payload)
