"""SCC stress scenarios: the doubly-iterative computation under churn
that merges, splits, and nests strongly connected components."""

import pytest

from repro.algorithms import Scc
from repro.algorithms.reference import reference_scc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.graph.edge_stream import EdgeStream


def key(pair, ids={}):
    ids.setdefault(pair, len(ids))
    return (ids[pair], pair[0], pair[1], 1)


def run_views(edge_sets):
    """Build a collection from explicit per-view edge sets; run SCC in
    diff-only mode; verify every view against Tarjan."""
    diffs = []
    previous = set()
    for edges in edge_sets:
        current = set(edges)
        diff = {}
        for pair in sorted(current - previous):
            diff[key(pair)] = 1
        for pair in sorted(previous - current):
            diff[key(pair)] = -1
        diffs.append(diff)
        previous = current
    collection = collection_from_diffs("scc-scenario", diffs)
    result = AnalyticsExecutor().run_on_collection(
        Scc(), collection, mode=ExecutionMode.DIFF_ONLY, keep_outputs=True)
    for index, edges in enumerate(edge_sets):
        triples = [(u, v, 1) for u, v in edges]
        assert result.views[index].vertex_map() == reference_scc(triples), \
            f"view {index}"
    return result


class TestSccChurn:
    def test_cycle_forms_then_breaks(self):
        chain = [(0, 1), (1, 2), (2, 3)]
        cycle = chain + [(3, 0)]
        run_views([chain, cycle, chain])

    def test_two_cycles_merge_and_split(self):
        two = [(0, 1), (1, 0), (2, 3), (3, 2)]
        merged = two + [(1, 2), (3, 0)]
        run_views([two, merged, two])

    def test_nested_cycles(self):
        outer = [(0, 1), (1, 2), (2, 3), (3, 0)]
        with_inner = outer + [(1, 0), (3, 2)]
        run_views([outer, with_inner, outer])

    def test_scc_chain_peels_in_order(self):
        # Three SCCs in a chain: {0,1} -> {2,3} -> {4,5}; the coloring
        # algorithm needs several outer rounds to peel them.
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4),
                 (1, 2), (3, 4)]
        stream = EdgeStream([(i, u, v, 1) for i, (u, v) in enumerate(edges)])
        result = AnalyticsExecutor().run_on_view(Scc(), stream)
        triples = [(u, v, 1) for u, v in edges]
        assert result.vertex_map() == reference_scc(triples)

    def test_giant_cycle_vs_singletons(self):
        ring = [(i, (i + 1) % 8) for i in range(8)]
        broken = ring[:-1]
        run_views([ring, broken, ring])

    def test_edge_reversal_changes_components(self):
        forward = [(0, 1), (1, 2), (2, 0), (2, 3)]
        reversed_tail = [(0, 1), (1, 2), (2, 0), (3, 2)]
        run_views([forward, reversed_tail])

    @pytest.mark.parametrize("seed", range(3))
    def test_random_tournament_churn(self, seed):
        import random

        rng = random.Random(seed)
        n = 10
        views = []
        current = set()
        for _view in range(5):
            for _ in range(6):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                if (u, v) in current and rng.random() < 0.5:
                    current.discard((u, v))
                else:
                    current.add((u, v))
            views.append(set(current))
        run_views(views)
