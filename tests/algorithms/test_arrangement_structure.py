"""Structural guarantee: one shared edges arrangement per dataflow.

The hot-path contract is that every iterative algorithm arranges its edges
relation exactly once (at the root scope) and shares that arrangement with
all of its joins — no algorithm may quietly fall back to a private-trace
``JoinOp`` over the edges, which would re-index the (large) edges relation
per join and per loop.

The test walks each algorithm's operator DAG from the edges ``InputOp``
through *linear* operators only (map/flat_map/filter/concat/negate/
inspect/enter — operators that keep "this is still the edges relation"
true) and asserts that within that edges-linear region there is exactly
one ``ArrangeOp`` and that no private join consumes the edges directly.
Relations derived through a reduce or a join (e.g. the distinct-ed
adjacency in triangles) are deliberately outside the region: they are no
longer the raw edges.
"""

import pytest

from repro.algorithms.bellman_ford import BellmanFord
from repro.algorithms.bfs import Bfs
from repro.algorithms.mpsp import Mpsp
from repro.algorithms.pagerank import PageRank
from repro.algorithms.scc import Scc
from repro.algorithms.vertex_program import VertexBfs, VertexSssp, VertexWcc
from repro.algorithms.wcc import Wcc
from repro.differential import Dataflow
from repro.differential.operators.arrange import (
    ArrangeEnterOp,
    ArrangeOp,
    JoinArrangedOp,
)
from repro.differential.operators.iterate import EnterOp
from repro.differential.operators.join import JoinOp
from repro.differential.operators.linear import (
    ConcatOp,
    FilterOp,
    FlatMapOp,
    InspectOp,
    MapOp,
    NegateOp,
)

LINEAR = (MapOp, FlatMapOp, FilterOp, ConcatOp, NegateOp, InspectOp,
          EnterOp)

ALGORITHMS = [
    Bfs(),
    Bfs(source=0),
    Wcc(),
    BellmanFord(),
    BellmanFord(source=0),
    Mpsp([(0, 5), (1, 4)]),
    PageRank(iterations=3),
    VertexBfs(0),
    VertexWcc(),
    VertexSssp(0),
    Scc(),
]


def _edges_linear_region(edges_op):
    """All operators reachable from the edges input via linear ops only."""
    region = {edges_op}
    frontier = [edges_op]
    while frontier:
        op = frontier.pop()
        for downstream, _port in op.downstream:
            if isinstance(downstream, LINEAR) and downstream not in region:
                region.add(downstream)
                frontier.append(downstream)
    return region


@pytest.mark.parametrize(
    "computation", ALGORITHMS, ids=lambda c: type(c).__name__)
def test_exactly_one_edges_arrangement(computation):
    df = Dataflow()
    edges = df.new_input("edges")
    computation.build(df, edges)

    region = _edges_linear_region(edges.op)
    arrangements = set()
    private_joins = []
    for op in region:
        for downstream, port in op.downstream:
            if isinstance(downstream, ArrangeEnterOp):
                continue  # scope re-entry of an existing arrangement
            if isinstance(downstream, ArrangeOp):
                arrangements.add(downstream)
            elif isinstance(downstream, JoinOp):
                private_joins.append((downstream.name, port))
            elif isinstance(downstream, JoinArrangedOp) and port == 0:
                # Port 0 is the *stream* side: the edges would be replayed
                # record-by-record against some other arrangement.
                private_joins.append((downstream.name, port))

    assert len(arrangements) == 1, (
        f"{computation.name}: expected exactly one edges arrangement, "
        f"found {sorted(a.name for a in arrangements)}")
    assert not private_joins, (
        f"{computation.name}: edges relation feeds private join(s) "
        f"{private_joins} instead of the shared arrangement")


def test_region_walk_sees_through_linear_chains():
    """Sanity-check the walker itself: an arrangement behind a map chain
    is found; one behind a reduce is not."""
    df = Dataflow()
    edges = df.new_input("edges")
    chained = edges.map(lambda rec: rec).filter(lambda rec: True)
    chained.arrange("behind.linear")
    edges.distinct().arrange("behind.reduce")
    region = _edges_linear_region(edges.op)
    found = [downstream.name
             for op in region
             for downstream, _ in op.downstream
             if isinstance(downstream, ArrangeOp)]
    assert found == ["behind.linear"]
