"""Cross-process determinism of ranking-style algorithm outputs.

``pagerank``, ``clustering``, and the composite ``score`` program all
produce outputs whose correctness includes an *ordering* contract
(quantized rank values, (triangles, pairs) rationals, dense tie-broken
positions). If any of their dataflows iterated a salted ``dict``/``set``
in an order-sensitive way, two interpreters with different
``PYTHONHASHSEED`` values would disagree — a corruption the in-process
suite can never see. Mirroring the ``stable_hash`` determinism test,
these tests compute a canonical output signature over a fixed churned
collection in subprocesses launched with *different* hash seeds and
require byte equality.
"""

import json
import os
import subprocess
import sys

from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.verify.generator import random_churn_collection
from repro.verify.oracles import ALGORITHMS, canonical_diff

#: (registry name, params) for every ranking-style output under test.
CASES = [
    ("pagerank", {"iterations": 4}),
    ("clustering", {}),
    ("score", {"degree_weight": 1, "triangle_weight": 1,
               "rank_weight": 2, "iterations": 3}),
]


def _ranking_signature():
    """Canonical per-view output renderings for every case."""
    collection = random_churn_collection(seed=5, num_views=3, num_nodes=10,
                                         churn=6)
    signature = []
    for name, params in CASES:
        spec = ALGORITHMS[name]
        result = AnalyticsExecutor(workers=2).run_on_collection(
            spec.computation(params), collection,
            mode=ExecutionMode.DIFF_ONLY, keep_outputs=True)
        signature.append(
            [name, [canonical_diff(view.output) for view in result.views]])
    return signature


def _subprocess_signature(hash_seed: str):
    """Compute the ranking signature in a fresh interpreter."""
    code = (
        "import sys, json\n"
        "sys.path.insert(0, sys.argv[1])\n"
        "from tests.algorithms.test_ranking_hashseed import "
        "_ranking_signature\n"
        "json.dump(_ranking_signature(), sys.stdout)\n"
    )
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.path.join(root, "src")
    result = subprocess.run(
        [sys.executable, "-c", code, root],
        capture_output=True, text=True, env=env, check=True, timeout=120)
    return json.loads(result.stdout)


def test_rankings_identical_across_hash_seeds():
    """Two interpreters with different PYTHONHASHSEED agree exactly."""
    local = [list(entry) for entry in _ranking_signature()]
    assert _subprocess_signature("0") == local
    assert _subprocess_signature("12345") == local
