"""Every dataflow algorithm vs its plain-Python reference, on random
graphs (single view) and churned collections (every view, every mode)."""

import random

import pytest

from repro.algorithms import BellmanFord, Bfs, Mpsp, PageRank, Scc, Wcc
from repro.algorithms.reference import (
    reference_bfs,
    reference_mpsp,
    reference_pagerank,
    reference_scc,
    reference_sssp,
    reference_wcc,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.graph.edge_stream import EdgeStream
from tests.conftest import random_simple_digraph


def stream_of(triples):
    return EdgeStream([(i, u, v, w) for i, (u, v, w) in enumerate(triples)])


CASES = [
    (Wcc, reference_wcc),
    (Bfs, reference_bfs),
    (BellmanFord, reference_sssp),
    (lambda: PageRank(iterations=6),
     lambda t: reference_pagerank(t, iterations=6)),
    (Scc, reference_scc),
]


class TestSingleView:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("factory,reference", CASES)
    def test_random_graph_matches_reference(self, factory, reference, seed):
        triples = random_simple_digraph(30, 90, seed)
        result = AnalyticsExecutor().run_on_view(factory(), stream_of(triples))
        assert result.vertex_map() == reference(triples)

    def test_empty_graph(self):
        for factory, _reference in CASES:
            result = AnalyticsExecutor().run_on_view(factory(), EdgeStream())
            assert result.output == {}

    def test_single_edge(self):
        triples = [(3, 7, 2)]
        assert AnalyticsExecutor().run_on_view(
            Wcc(), stream_of(triples)).vertex_map() == {3: 3, 7: 3}
        assert AnalyticsExecutor().run_on_view(
            Bfs(), stream_of(triples)).vertex_map() == {3: 0, 7: 1}
        assert AnalyticsExecutor().run_on_view(
            BellmanFord(), stream_of(triples)).vertex_map() == {3: 0, 7: 2}

    def test_self_contained_scc_cycle(self):
        triples = [(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1)]
        result = AnalyticsExecutor().run_on_view(Scc(), stream_of(triples))
        assert result.vertex_map() == {0: 2, 1: 2, 2: 2, 3: 3}

    def test_bfs_fixed_source(self):
        triples = [(5, 6, 1), (6, 7, 1), (1, 5, 1)]
        result = AnalyticsExecutor().run_on_view(
            Bfs(source=5), stream_of(triples))
        assert result.vertex_map() == {5: 0, 6: 1, 7: 2}

    def test_bfs_fixed_source_without_out_edges_is_empty(self):
        triples = [(1, 5, 1)]
        result = AnalyticsExecutor().run_on_view(
            Bfs(source=5), stream_of(triples))
        assert result.output == {}

    def test_mpsp_reports_requested_pairs_only(self):
        triples = [(0, 1, 3), (1, 2, 4), (0, 2, 10), (2, 3, 1)]
        pairs = [(0, 2), (0, 3)]
        result = AnalyticsExecutor().run_on_view(
            Mpsp(pairs), stream_of(triples))
        got = {key: value for (key, value), _m in result.output.items()}
        assert got == {(0, 2): 7, (0, 3): 8}

    def test_mpsp_requires_pairs(self):
        with pytest.raises(ValueError):
            Mpsp([])

    def test_pagerank_validation(self):
        with pytest.raises(ValueError):
            PageRank(iterations=0)
        with pytest.raises(ValueError):
            PageRank(quantum=0)

    def test_pagerank_ranks_sink_heavy_vertex_highest(self):
        # Star pointing at vertex 0.
        triples = [(i, 0, 1) for i in range(1, 8)]
        ranks = AnalyticsExecutor().run_on_view(
            PageRank(), stream_of(triples)).vertex_map()
        assert ranks[0] == max(ranks.values())


def churn_collection(seed, num_views=8, n=24, m=70):
    rng = random.Random(seed)
    triples = random_simple_digraph(n, m, seed)
    current = {(u, v): w for u, v, w in triples}
    ids = {}

    def key(pair, w):
        ids.setdefault(pair, len(ids))
        return (ids[pair], pair[0], pair[1], w)

    diffs = [{key(p, w): 1 for p, w in sorted(current.items())}]
    for _ in range(num_views - 1):
        diff = {}
        for pair in rng.sample(sorted(current), 5):
            diff[key(pair, current.pop(pair))] = -1
        added = 0
        while added < 5:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or (u, v) in current:
                continue
            w = rng.randrange(1, 6)
            current[(u, v)] = w
            k = key((u, v), w)
            if diff.get(k) == -1:
                # Removed and re-added identically within this view: no-op.
                del diff[k]
            else:
                diff[k] = 1
            added += 1
        diffs.append(diff)
    return collection_from_diffs(f"churn-{seed}", diffs)


class TestCollections:
    @pytest.mark.parametrize("mode", list(ExecutionMode))
    @pytest.mark.parametrize("factory,reference", CASES)
    def test_every_view_matches_reference(self, factory, reference, mode):
        collection = churn_collection(seed=1)
        result = AnalyticsExecutor().run_on_collection(
            factory(), collection, mode=mode, keep_outputs=True,
            cost_metric="work")
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            assert result.views[index].vertex_map() == reference(triples), \
                f"view {index} under {mode}"

    def test_mpsp_collection(self):
        collection = churn_collection(seed=2)
        pairs = [(0, d) for d in (3, 9, 15)]
        result = AnalyticsExecutor().run_on_collection(
            Mpsp(pairs), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            got = {key: value for (key, value), _m
                   in result.views[index].output.items()}
            assert got == reference_mpsp(triples, pairs), f"view {index}"
