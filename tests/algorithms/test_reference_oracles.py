"""Pin every plain-Python oracle against tiny hand-computed graphs and
verify the uniform ``oracle(edges, **params)`` calling convention the
fuzzing harness relies on (see repro/verify/oracles.py)."""

import random

import pytest

from repro.algorithms.pagerank import BASE, DAMPING_DEN, DAMPING_NUM, SCALE
from repro.algorithms.reference import (
    reference_bellman_ford,
    reference_bfs,
    reference_clustering,
    reference_kcore,
    reference_max_degree,
    reference_mpsp,
    reference_out_degrees,
    reference_pagerank,
    reference_scc,
    reference_sssp,
    reference_triangles,
    reference_wcc,
    view_edge_list,
)
from repro.core.view_collection import collection_from_diffs
from repro.verify.oracles import ALGORITHMS

# A directed triangle 1->2->3->1 plus a weighted tail 3->4.
TRIANGLE_TAIL = [(1, 2, 1), (2, 3, 1), (3, 1, 1), (3, 4, 5)]


class TestHandComputedPins:
    def test_wcc(self):
        assert reference_wcc(TRIANGLE_TAIL) == {1: 1, 2: 1, 3: 1, 4: 1}
        assert reference_wcc([(1, 2, 1), (3, 4, 1)]) == \
            {1: 1, 2: 1, 3: 3, 4: 3}

    def test_bfs(self):
        assert reference_bfs(TRIANGLE_TAIL, source=1) == \
            {1: 0, 2: 1, 3: 2, 4: 3}
        # Default source: the minimum vertex with an outgoing edge.
        assert reference_bfs(TRIANGLE_TAIL) == {1: 0, 2: 1, 3: 2, 4: 3}
        # A source without outgoing edges yields no result records.
        assert reference_bfs(TRIANGLE_TAIL, source=4) == {}
        assert reference_bfs([]) == {}

    def test_sssp_and_bellman_ford_alias(self):
        assert reference_sssp(TRIANGLE_TAIL, source=1) == \
            {1: 0, 2: 1, 3: 2, 4: 7}
        assert reference_bellman_ford is reference_sssp

    def test_sssp_prefers_lighter_longer_path(self):
        edges = [(1, 2, 10), (1, 3, 1), (3, 2, 1)]
        assert reference_sssp(edges, source=1) == {1: 0, 2: 2, 3: 1}

    def test_scc(self):
        # {1,2,3} form a cycle (id = max member 3); 4 is a singleton.
        assert reference_scc(TRIANGLE_TAIL) == {1: 3, 2: 3, 3: 3, 4: 4}

    def test_kcore(self):
        # Undirected: 4 has degree 1 and peels; the triangle survives k=2.
        assert reference_kcore(TRIANGLE_TAIL, k=2) == {1: 2, 2: 2, 3: 2}
        assert reference_kcore(TRIANGLE_TAIL, k=3) == {}
        # Default k is 2, matching the KCore computation's default.
        assert reference_kcore(TRIANGLE_TAIL) == \
            reference_kcore(TRIANGLE_TAIL, k=2)

    def test_triangles(self):
        assert reference_triangles(TRIANGLE_TAIL) == {1: 1, 2: 1, 3: 1}

    def test_clustering(self):
        # Undirected degrees: 1:2, 2:2, 3:3, 4:1 (degree < 2 is absent).
        assert reference_clustering(TRIANGLE_TAIL) == \
            {1: (1, 1), 2: (1, 1), 3: (1, 3)}

    def test_out_degrees_count_multiplicity(self):
        assert reference_out_degrees(TRIANGLE_TAIL) == {1: 1, 2: 1, 3: 2}
        # A repeated edge is two outgoing edges, not one.
        assert reference_out_degrees([(1, 2, 1), (1, 2, 1)]) == {1: 2}

    def test_max_degree(self):
        assert reference_max_degree(TRIANGLE_TAIL) == {0: 2}
        assert reference_max_degree([]) == {}

    def test_mpsp(self):
        got = reference_mpsp(TRIANGLE_TAIL,
                             pairs=[(1, 4), (4, 1), (2, 3)])
        # 4 has no outgoing edges, so pair (4, 1) has no distance.
        assert got == {(1, 4): 7, (2, 3): 1}
        assert reference_mpsp(TRIANGLE_TAIL) == {}

    def test_pagerank_single_edge_one_iteration(self):
        # One derivation of the documented update rule, by hand:
        # share(1) = SCALE, contribution = (85 * SCALE) // 100, and both
        # ranks round to the nearest quantum (SCALE // 1000).
        quantum = SCALE // 1000
        contribution = (DAMPING_NUM * SCALE) // DAMPING_DEN
        want = {
            1: ((BASE + quantum // 2) // quantum) * quantum,
            2: ((BASE + contribution + quantum // 2) // quantum) * quantum,
        }
        assert reference_pagerank([(1, 2, 1)], iterations=1) == want
        assert want == {1: 150_000, 2: 1_000_000}

    def test_pagerank_symmetry(self):
        ranks = reference_pagerank([(1, 2, 1), (2, 1, 1)], iterations=20)
        assert ranks[1] == ranks[2]


class TestUniformConvention:
    """Every registered oracle is callable as ``oracle(edges, **params)``
    with params drawn from its own sampler — no algorithm-specific glue."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_oracle_accepts_sampled_params(self, name):
        spec = ALGORITHMS[name]
        rng = random.Random(13)
        vertices = [1, 2, 3, 4]
        for _ in range(5):
            params = spec.sample_params(rng, vertices)
            result = spec.oracle(TRIANGLE_TAIL, **params)
            assert isinstance(result, dict)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_oracle_accepts_materialized_four_tuples(self, name):
        spec = ALGORITHMS[name]
        quads = [(eid, src, dst, w)
                 for eid, (src, dst, w) in enumerate(TRIANGLE_TAIL)]
        params = spec.sample_params(random.Random(0), [1, 2, 3, 4])
        assert spec.oracle(quads, **params) == \
            spec.oracle(TRIANGLE_TAIL, **params)

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError):
            reference_wcc([(1, 2)])


class TestViewEdgeList:
    def test_expands_multiplicity(self):
        diffs = [{(0, 1, 2, 1): 2, (1, 2, 3, 1): 1},
                 {(0, 1, 2, 1): -1}]
        collection = collection_from_diffs("vel", diffs)
        assert view_edge_list(collection, 0) == \
            [(1, 2, 1), (1, 2, 1), (2, 3, 1)]
        assert view_edge_list(collection, 1) == [(1, 2, 1), (2, 3, 1)]
