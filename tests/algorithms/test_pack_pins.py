"""Hand-computed pins for the community & scoring pack.

Every expected value below was worked out by hand on a small fixed
graph, so these tests pin the *semantics* — label-propagation
tie-breaking, PPR seed normalization, k-truss peeling cascades, and the
composite score's ranking order — independently of the reference
oracles. Each case is asserted against both the dataflow program and its
``reference_*`` oracle, so a drift in either one fails loudly.
"""

import pytest

from repro.algorithms import (
    CompositeScore,
    KTruss,
    LabelPropagation,
    PersonalizedPageRank,
)
from repro.algorithms.reference import (
    reference_composite_score,
    reference_ktruss,
    reference_label_propagation,
    reference_personalized_pagerank,
)
from repro.core.executor import AnalyticsExecutor
from repro.errors import ConfigError
from repro.graph.edge_stream import EdgeStream


def stream_of(triples):
    return EdgeStream([(i, u, v, w) for i, (u, v, w) in enumerate(triples)])


def run(computation, triples):
    return AnalyticsExecutor().run_on_view(
        computation, stream_of(triples)).vertex_map()


def pin(computation, oracle, triples, want):
    assert run(computation, triples) == want
    assert oracle(triples) == want


class TestLabelPropagationPins:
    # Triangle {0,1,2} with pendant 3 hanging off 2.
    TRIANGLE_PENDANT = [(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]

    def test_one_round_pins_tie_breaking(self):
        # Round 1, by hand: 0 sees labels {1, 2} (tie -> 1); 1 sees
        # {0, 2} -> 0; 2 sees {0, 1, 3} -> 0; 3 sees only {2} -> 2.
        pin(LabelPropagation(rounds=1),
            lambda t: reference_label_propagation(t, rounds=1),
            self.TRIANGLE_PENDANT, {0: 1, 1: 0, 2: 0, 3: 2})

    def test_converges_to_min_label_community(self):
        pin(LabelPropagation(rounds=3),
            lambda t: reference_label_propagation(t, rounds=3),
            self.TRIANGLE_PENDANT, {0: 0, 1: 0, 2: 0, 3: 0})

    def test_path_oscillates_with_period_two(self):
        # A bare path 0-1-2 never reaches a fixed point under synchronous
        # updates; the round cap decides which phase is reported.
        path = [(0, 1, 1), (1, 2, 1)]
        pin(LabelPropagation(rounds=4),
            lambda t: reference_label_propagation(t, rounds=4),
            path, {0: 0, 1: 1, 2: 0})
        pin(LabelPropagation(rounds=5),
            lambda t: reference_label_propagation(t, rounds=5),
            path, {0: 1, 1: 0, 2: 1})

    def test_parallel_edges_and_self_loops_do_not_stuff_votes(self):
        # Star around 0 with a duplicated (3, 0) edge and a self-loop:
        # with multigraph voting label 3 would win 2-1-1; simple-graph
        # voting is a three-way tie broken to label 1.
        star = [(1, 0, 1), (2, 0, 1), (3, 0, 1), (3, 0, 1), (0, 0, 1)]
        pin(LabelPropagation(rounds=1),
            lambda t: reference_label_propagation(t, rounds=1),
            star, {0: 1, 1: 0, 2: 0, 3: 0})

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigError):
            LabelPropagation(rounds=0)


class TestPersonalizedPageRankPins:
    CYCLE = [(0, 1, 1), (1, 2, 1), (2, 0, 1)]

    def test_absent_seed_is_dropped_from_normalization(self):
        # Seeds {0, 99} on the 3-cycle: 99 is absent, so ALL restart mass
        # goes to 0 (not half). Two iterations by hand:
        #   it 1: ranks (1000000, 0, 0) -> (150000, 850000, 0)
        #   it 2: contributions shift around the cycle ->
        #         (150000, 127500+500->128000, 722500+500->723000)
        pin(PersonalizedPageRank([0, 99], iterations=2),
            lambda t: reference_personalized_pagerank(
                t, seeds=[0, 99], iterations=2),
            self.CYCLE, {0: 150_000, 1: 128_000, 2: 723_000})

    def test_restart_mass_splits_over_present_seeds(self):
        # Seeds {0, 2} both present: initial rank SCALE//2 each, teleport
        # BASE//2 each. One iteration by hand.
        pin(PersonalizedPageRank([0, 2], iterations=1),
            lambda t: reference_personalized_pagerank(
                t, seeds=[0, 2], iterations=1),
            self.CYCLE, {0: 500_000, 1: 425_000, 2: 75_000})

    def test_no_present_seed_means_all_zero(self):
        pin(PersonalizedPageRank([42], iterations=3),
            lambda t: reference_personalized_pagerank(
                t, seeds=[42], iterations=3),
            self.CYCLE, {0: 0, 1: 0, 2: 0})

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            PersonalizedPageRank([])
        with pytest.raises(ConfigError):
            PersonalizedPageRank([1], iterations=0)
        with pytest.raises(ConfigError):
            PersonalizedPageRank([1], quantum=0)


class TestKTrussPins:
    # Two triangles (0,1,2) and (1,2,3) sharing edge (1,2), plus a
    # pendant edge (3,4).
    BOWTIE = [(0, 1, 1), (0, 2, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1),
              (3, 4, 1)]

    def test_three_truss_keeps_triangle_edges_only(self):
        pin(KTruss(3), lambda t: reference_ktruss(t, k=3), self.BOWTIE,
            {(0, 1): 3, (0, 2): 3, (1, 2): 3, (1, 3): 3, (2, 3): 3})

    def test_peeling_cascades(self):
        # For k=4 every edge needs support 2. Only the shared edge (1,2)
        # starts with support 2 — but once its four neighbours peel away
        # it has nothing left, so the cascade empties the graph. A
        # non-cascading "count once, filter once" pass would wrongly
        # keep (1,2).
        pin(KTruss(4), lambda t: reference_ktruss(t, k=4), self.BOWTIE, {})

    def test_k4_survives_four_truss(self):
        # K4 on {0..3} plus a dangling triangle (3,4,5): the K4's six
        # edges all have support 2 within the K4; the triangle's edges
        # peel (support 1) without dragging the K4 down.
        k4_plus = [(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 2, 1), (1, 3, 1),
                   (2, 3, 1), (3, 4, 1), (3, 5, 1), (4, 5, 1)]
        pin(KTruss(4), lambda t: reference_ktruss(t, k=4), k4_plus,
            {(0, 1): 4, (0, 2): 4, (0, 3): 4, (1, 2): 4, (1, 3): 4,
             (2, 3): 4})

    def test_two_truss_is_the_simple_graph(self):
        # k=2 needs support 0: every canonical simple edge survives,
        # including triangle-free ones (the left-outer zero path).
        pin(KTruss(2), lambda t: reference_ktruss(t, k=2),
            [(1, 0, 1), (0, 1, 1), (2, 2, 1), (2, 3, 1)],
            {(0, 1): 2, (2, 3): 2})

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            KTruss(1)


class TestCompositeScorePins:
    def test_ranking_breaks_ties_toward_smaller_vertex(self):
        # rank_weight=0 keeps the arithmetic fully by-hand: triangle
        # {0,1,2} with tail (2,3). Scores: 0 -> 2 out-edges + 1 triangle
        # = 3; 1 and 2 -> 2 each (tie; 1 must rank ahead); 3 -> 0.
        triples = [(0, 1, 1), (0, 2, 1), (1, 2, 1), (2, 3, 1)]
        pin(CompositeScore(degree_weight=1, triangle_weight=1,
                           rank_weight=0, iterations=3),
            lambda t: reference_composite_score(
                t, degree_weight=1, triangle_weight=1, rank_weight=0,
                iterations=3),
            triples, {0: (1, 3), 1: (2, 2), 2: (3, 2), 3: (4, 0)})

    def test_blend_includes_centirank(self):
        # Single edge 0 -> 1; PageRank converges to (150000, 278000),
        # i.e. centi-ranks (15, 27). With weights (2, 1, 1):
        # score(0) = 2*1 + 0 + 15 = 17, score(1) = 0 + 0 + 27 = 27.
        pin(CompositeScore(degree_weight=2, triangle_weight=1,
                           rank_weight=1, iterations=5),
            lambda t: reference_composite_score(
                t, degree_weight=2, triangle_weight=1, rank_weight=1,
                iterations=5),
            [(0, 1, 1)], {1: (1, 27), 0: (2, 17)})

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            CompositeScore(degree_weight=-1)
        with pytest.raises(ConfigError):
            CompositeScore(triangle_weight=-2)
        with pytest.raises(ConfigError):
            CompositeScore(rank_weight=-1)
        with pytest.raises(ConfigError):
            CompositeScore(iterations=0)
