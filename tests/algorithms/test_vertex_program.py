"""The vertex-centric layer and clustering coefficient."""

import pytest

from repro.algorithms import (
    Bfs,
    ClusteringCoefficient,
    VertexBfs,
    VertexProgram,
    VertexSssp,
    VertexWcc,
)
from repro.algorithms.reference import (
    reference_bfs,
    reference_clustering,
    reference_sssp,
    reference_wcc,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from tests.algorithms.test_against_reference import churn_collection, stream_of
from tests.conftest import random_simple_digraph


class TestVertexPrograms:
    @pytest.mark.parametrize("seed", range(3))
    def test_vertex_bfs_matches_reference(self, seed):
        triples = random_simple_digraph(25, 80, seed)
        source = triples[0][0]
        result = AnalyticsExecutor().run_on_view(VertexBfs(source),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_bfs(triples, source)

    @pytest.mark.parametrize("seed", range(3))
    def test_vertex_wcc_matches_reference(self, seed):
        triples = random_simple_digraph(25, 80, seed)
        result = AnalyticsExecutor().run_on_view(VertexWcc(),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_wcc(triples)

    def test_vertex_sssp_matches_reference(self):
        triples = random_simple_digraph(20, 70, 5)
        source = triples[0][0]
        result = AnalyticsExecutor().run_on_view(VertexSssp(source),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_sssp(triples, source)

    def test_vertex_program_equals_raw_dataflow(self):
        """The vertex-centric BFS and the raw dataflow BFS agree across a
        churned collection — the layer inherits cross-view sharing."""
        collection = churn_collection(seed=9, num_views=6)
        source = next(iter(collection.diffs[0]))[1]
        executor = AnalyticsExecutor()
        vp = executor.run_on_collection(
            VertexBfs(source), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        raw = executor.run_on_collection(
            Bfs(source=source), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        for index in range(collection.num_views):
            left = vp.views[index].vertex_map()
            right = raw.views[index].vertex_map()
            # The raw Bfs drops the source when it loses its outgoing
            # edges; the vertex-centric seed keeps it while it exists as
            # an endpoint. Compare modulo that boundary case.
            left.pop(source, None)
            right.pop(source, None)
            assert left == right, f"view {index}"

    def test_message_none_sends_nothing(self):
        class OnlySeeds(VertexProgram):
            name = "seeds-only"

            def seeds(self, vertex):
                return vertex * 10

            def message(self, src, value, dst, weight):
                return None

            def merge(self, vertex, values):
                return max(values)

        triples = [(0, 1, 1), (1, 2, 1)]
        result = AnalyticsExecutor().run_on_view(OnlySeeds(),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: 0, 1: 10, 2: 20}

    def test_merge_none_drops_vertex(self):
        class DropOdd(VertexProgram):
            name = "drop-odd"

            def seeds(self, vertex):
                return vertex

            def message(self, src, value, dst, weight):
                return None

            def merge(self, vertex, values):
                return vertex if vertex % 2 == 0 else None

        triples = [(0, 1, 1), (1, 2, 1), (2, 3, 1)]
        result = AnalyticsExecutor().run_on_view(DropOdd(),
                                                 stream_of(triples))
        assert set(result.vertex_map()) == {0, 2}


class TestClusteringCoefficient:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference(self, seed):
        triples = random_simple_digraph(16, 50, seed)
        result = AnalyticsExecutor().run_on_view(ClusteringCoefficient(),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_clustering(triples)

    def test_triangle_graph(self):
        triples = [(0, 1, 1), (1, 2, 1), (0, 2, 1)]
        result = AnalyticsExecutor().run_on_view(ClusteringCoefficient(),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: (1, 1), 1: (1, 1), 2: (1, 1)}

    def test_star_has_zero_clustering(self):
        triples = [(0, i, 1) for i in range(1, 5)]
        result = AnalyticsExecutor().run_on_view(ClusteringCoefficient(),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: (0, 6)}

    def test_incremental_across_views(self):
        collection = churn_collection(seed=10, num_views=5)
        result = AnalyticsExecutor().run_on_collection(
            ClusteringCoefficient(), collection,
            mode=ExecutionMode.DIFF_ONLY, keep_outputs=True)
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            assert result.views[index].vertex_map() == \
                reference_clustering(triples), f"view {index}"
