"""k-core, triangles, and degree computations vs references (extension
algorithms beyond the paper's evaluation set)."""

import pytest

from repro.algorithms import KCore, MaxDegree, OutDegrees, Triangles
from repro.algorithms.reference import (
    reference_kcore,
    reference_out_degrees,
    reference_triangles,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from tests.algorithms.test_against_reference import churn_collection, stream_of
from tests.conftest import random_simple_digraph


class TestKCore:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [2, 3])
    def test_random_matches_reference(self, seed, k):
        triples = random_simple_digraph(25, 90, seed)
        result = AnalyticsExecutor().run_on_view(KCore(k),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_kcore(triples, k)

    def test_peeling_cascade(self):
        # A 3-clique with a pendant path: the path peels away for k=2.
        triples = [(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1), (3, 4, 1)]
        result = AnalyticsExecutor().run_on_view(KCore(2),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: 2, 1: 2, 2: 2}

    def test_empty_core(self):
        triples = [(0, 1, 1), (1, 2, 1)]
        result = AnalyticsExecutor().run_on_view(KCore(3),
                                                 stream_of(triples))
        assert result.output == {}

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KCore(0)

    def test_collection_incremental(self):
        collection = churn_collection(seed=5, num_views=5)
        result = AnalyticsExecutor().run_on_collection(
            KCore(2), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            assert result.views[index].vertex_map() == \
                reference_kcore(triples, 2), f"view {index}"


class TestTriangles:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_matches_reference(self, seed):
        triples = random_simple_digraph(18, 60, seed)
        result = AnalyticsExecutor().run_on_view(Triangles(),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_triangles(triples)

    def test_single_triangle(self):
        triples = [(0, 1, 1), (1, 2, 1), (0, 2, 1)]
        result = AnalyticsExecutor().run_on_view(Triangles(),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: 1, 1: 1, 2: 1}

    def test_antiparallel_edges_not_double_counted(self):
        triples = [(0, 1, 1), (1, 0, 1), (1, 2, 1), (0, 2, 1)]
        result = AnalyticsExecutor().run_on_view(Triangles(),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: 1, 1: 1, 2: 1}

    def test_triangle_appears_incrementally(self):
        collection = churn_collection(seed=6, num_views=6)
        result = AnalyticsExecutor().run_on_collection(
            Triangles(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            assert result.views[index].vertex_map() == \
                reference_triangles(triples), f"view {index}"


class TestDegrees:
    def test_out_degrees(self):
        triples = [(0, 1, 1), (0, 2, 1), (1, 2, 1)]
        result = AnalyticsExecutor().run_on_view(OutDegrees(),
                                                 stream_of(triples))
        assert result.vertex_map() == reference_out_degrees(triples)

    def test_max_degree(self):
        triples = [(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 2, 1)]
        result = AnalyticsExecutor().run_on_view(MaxDegree(),
                                                 stream_of(triples))
        assert result.vertex_map() == {0: 3}

    def test_max_degree_tracks_removals(self):
        collection = churn_collection(seed=7, num_views=5)
        result = AnalyticsExecutor().run_on_collection(
            MaxDegree(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True)
        for index in range(collection.num_views):
            triples = [(s, d, w) for (_e, s, d, w)
                       in collection.full_view_edges(index)]
            expected = max(reference_out_degrees(triples).values())
            assert result.views[index].vertex_map() == {0: expected}
