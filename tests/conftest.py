"""Shared fixtures: the paper's running-example call graph and helpers."""

from __future__ import annotations

import random

import pytest

from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema


@pytest.fixture
def call_graph() -> PropertyGraph:
    """The phone-call graph of the paper's Figure 1.

    Nodes: customers with ``city`` and ``profession``; edges: calls with
    ``duration`` (minutes) and ``year``.
    """
    graph = PropertyGraph(
        "Calls",
        node_schema=Schema({"city": PropertyType.STRING,
                            "profession": PropertyType.STRING}),
        edge_schema=Schema({"duration": PropertyType.INT,
                            "year": PropertyType.INT}),
    )
    people = {
        1: ("LA", "Engineer"),
        2: ("LA", "Doctor"),
        3: ("LA", "Engineer"),
        4: ("NY", "Lawyer"),
        5: ("NY", "Doctor"),
        6: ("LA", "Engineer"),
        7: ("NY", "Lawyer"),
        8: ("LA", "Lawyer"),
    }
    for node_id, (city, profession) in people.items():
        graph.add_node(node_id, {"city": city, "profession": profession})
    calls = [
        (1, 2, 7, 2015),
        (1, 3, 1, 2010),
        (2, 1, 19, 2019),
        (2, 6, 13, 2019),
        (3, 1, 7, 2018),
        (3, 6, 2, 2013),
        (4, 7, 4, 2019),
        (4, 8, 34, 2019),
        (5, 2, 18, 2019),
        (5, 4, 6, 2019),
        (6, 3, 12, 2017),
        (6, 8, 10, 2018),
        (7, 4, 18, 2019),
        (7, 5, 32, 2017),
        (8, 6, 3, 2019),
    ]
    for src, dst, duration, year in calls:
        graph.add_edge(src, dst, {"duration": duration, "year": year})
    return graph


def random_simple_digraph(num_nodes: int, num_edges: int, seed: int,
                          max_weight: int = 6):
    """Random simple directed weighted graph as (src, dst, w) triples."""
    rng = random.Random(seed)
    seen = set()
    edges = []
    while len(edges) < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        edges.append((u, v, rng.randrange(1, max_weight + 1)))
    return edges


@pytest.fixture
def random_triples():
    """Factory fixture: seeded random edge-triple generator."""
    return random_simple_digraph
