"""Worker-count invariance: sharding affects simulated time, never results
or total work."""

import pytest

from repro.algorithms import BellmanFord, Bfs, PageRank, Scc, Wcc
from repro.bench.workloads import orkut_churn_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode


@pytest.fixture(scope="module")
def collection():
    return orkut_churn_collection(num_nodes=60, num_edges=240, num_views=5,
                                  additions_per_view=8,
                                  removals_per_view=8, seed=2)


@pytest.mark.parametrize("factory", [Wcc, Bfs, Scc,
                                     lambda: PageRank(iterations=5)],
                         ids=["WCC", "BFS", "SCC", "PR"])
def test_results_and_work_invariant_under_sharding(collection, factory):
    baselines = None
    for workers in (1, 3, 8):
        executor = AnalyticsExecutor(workers=workers)
        result = executor.run_on_collection(
            factory(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True, cost_metric="work")
        outputs = [view.output for view in result.views]
        summary = (outputs, result.total_work)
        if baselines is None:
            baselines = summary
        else:
            assert summary == baselines, f"workers={workers}"


@pytest.mark.parametrize("factory", [lambda: PageRank(iterations=8),
                                     lambda: BellmanFord()],
                         ids=["PR8", "BF"])
def test_vertex_maps_identical_for_workers_1_and_4(collection, factory):
    """Regression: iterate-heavy computations must produce identical
    per-view ``vertex_map()`` results at 1 and 4 simulated workers."""
    maps = {}
    for workers in (1, 4):
        result = AnalyticsExecutor(workers=workers).run_on_collection(
            factory(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True, cost_metric="work")
        maps[workers] = [view.vertex_map() for view in result.views]
    assert maps[1] == maps[4]
    assert any(maps[1])  # the workload is non-trivial


def test_parallel_time_monotone_in_workers(collection):
    times = []
    for workers in (1, 4, 12):
        executor = AnalyticsExecutor(workers=workers)
        result = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        times.append(result.total_parallel_time)
    assert times[0] >= times[1] >= times[2]
