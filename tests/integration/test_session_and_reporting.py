"""Session persistence and experiment reporting."""

import pytest

from repro import ExecutionMode, Graphsurge
from repro.algorithms import Wcc
from repro.bench.harness import ExperimentResult
from repro.bench.reporting import ascii_chart, save_report, to_markdown


@pytest.fixture
def populated_session(call_graph):
    gs = Graphsurge()
    gs.add_graph(call_graph)
    gs.execute("create view y2019 on Calls edges where year = 2019")
    gs.execute("create view collection hist on Calls "
               "[a: year <= 2015], [b: year <= 2019]")
    return gs


class TestSessionPersistence:
    def test_round_trip(self, populated_session, tmp_path):
        populated_session.save_session(tmp_path / "session")
        restored = Graphsurge.load_session(tmp_path / "session")
        assert restored.resolve("Calls").num_edges == 15
        assert restored.views.get_view("y2019").num_edges == 8
        collection = restored.views.get_collection("hist")
        assert collection.num_views == 2

    def test_analytics_after_restore(self, populated_session, tmp_path):
        populated_session.save_session(tmp_path / "session")
        restored = Graphsurge.load_session(tmp_path / "session")
        result = restored.run_analytics(Wcc(), "hist",
                                        mode=ExecutionMode.DIFF_ONLY,
                                        keep_outputs=True)
        original = populated_session.run_analytics(
            Wcc(), "hist", mode=ExecutionMode.DIFF_ONLY, keep_outputs=True)
        for left, right in zip(result.views, original.views):
            assert left.output == right.output

    def test_empty_session(self, tmp_path):
        gs = Graphsurge()
        gs.add_graph(__import__("repro.graph.property_graph",
                                fromlist=["PropertyGraph"]
                                ).PropertyGraph("empty"))
        gs.save_session(tmp_path / "s")
        restored = Graphsurge.load_session(tmp_path / "s")
        assert "empty" in restored.graphs


def sample_rows():
    return [
        ExperimentResult("exp", "ds", "WCC", "cfg", "diff-only", 5,
                         1.234, 1000, 900, 0),
        ExperimentResult("exp", "ds", "WCC", "cfg", "scratch", 5,
                         2.5, 3000, 2800, 4),
    ]


class TestReporting:
    def test_markdown_table(self):
        text = to_markdown(sample_rows(), title="Sample")
        assert "### Sample" in text
        assert "| diff-only |" in text.replace("|diff-only|", "| diff-only |") or \
            "diff-only" in text
        assert text.count("\n") >= 4

    def test_save_report(self, tmp_path):
        save_report(sample_rows(), tmp_path, "exp")
        assert (tmp_path / "exp.csv").exists()
        assert (tmp_path / "exp.md").exists()
        csv_lines = (tmp_path / "exp.csv").read_text().strip().splitlines()
        assert len(csv_lines) == 3
        assert csv_lines[0].startswith("experiment,")

    def test_ascii_chart(self):
        chart = ascii_chart([("1", 100.0), ("4", 50.0), ("12", 25.0)],
                            width=20, title="scaling")
        lines = chart.splitlines()
        assert lines[0] == "scaling"
        assert lines[1].count("#") == 20
        assert lines[3].count("#") == 5

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart([])

    def test_cli_save_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.3")
        from repro.bench.__main__ import main

        assert main(["table4", "--quick", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "table4.csv").exists()
        assert (tmp_path / "table4.md").exists()
