"""Smoke tests for the experiment drivers (quick mode, tiny scale).

These guarantee every table/figure driver runs end to end and emits the
expected row structure; the benches under ``benchmarks/`` assert the paper
shapes at full experiment scale.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.3")


@pytest.mark.parametrize("name", ["table2", "fig6", "fig7", "table4",
                                  "fig10", "ablation", "baselines"])
def test_driver_runs_and_returns_rows(name, capsys):
    rows = EXPERIMENTS[name](quick=True)
    assert rows, name
    printed = capsys.readouterr().out
    assert name.replace("fig", "Figure ").replace("table", "Table ") \
        .split()[0] in printed or printed  # a table was printed
    for row in rows:
        assert row.experiment == name
        assert row.num_views >= 1
        assert row.wall_seconds >= 0


def test_table3_driver(capsys):
    rows = EXPERIMENTS["table3"](quick=True)
    configs = {row.config for row in rows}
    assert {"1:C_sl", "2:C_ex-sh-sl", "3:C_aut"} <= configs


def test_fig8_driver():
    rows = EXPERIMENTS["fig8"](quick=True)
    assert {row.mode for row in rows} == {"diff-only", "adaptive"}
    assert any("Ord." in row.config for row in rows)
    assert any("R1" in row.config for row in rows)


def test_fig9_driver():
    rows = EXPERIMENTS["fig9"](quick=True)
    assert all(row.dataset == "WTC-like" for row in rows)


def test_cli_main(capsys):
    from repro.bench.__main__ import main

    assert main(["table4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
