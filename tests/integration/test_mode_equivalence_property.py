"""Property test: for ANY collection, all execution modes produce the same
per-view outputs — only cost may differ. This is Graphsurge's core
correctness contract (the splitting optimizer must never change results).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Bfs, Wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import collection_from_diffs
from repro.verify import ALGORITHMS, canonical_diff, generate_case


def build_collection(seed, num_views, churn):
    rng = random.Random(seed)
    n = 12
    ids = {}

    def key(pair):
        ids.setdefault(pair, len(ids))
        return (ids[pair], pair[0], pair[1], 1)

    current = set()
    diffs = []
    for _view in range(num_views):
        diff = {}
        for _ in range(churn):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if (u, v) in current:
                current.discard((u, v))
                k = key((u, v))
                if diff.get(k) == 1:
                    del diff[k]
                else:
                    diff[k] = -1
            else:
                current.add((u, v))
                k = key((u, v))
                if diff.get(k) == -1:
                    del diff[k]
                else:
                    diff[k] = 1
        diffs.append(diff)
    return collection_from_diffs(f"prop-{seed}", diffs)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000),
       num_views=st.integers(2, 6),
       churn=st.integers(1, 8),
       batch_size=st.integers(1, 4))
def test_all_modes_agree(seed, num_views, churn, batch_size):
    collection = build_collection(seed, num_views, churn)
    executor = AnalyticsExecutor()
    outputs = {}
    for mode in ExecutionMode:
        result = executor.run_on_collection(
            Wcc(), collection, mode=mode, batch_size=batch_size,
            keep_outputs=True, cost_metric="work")
        outputs[mode] = [view.output for view in result.views]
    assert outputs[ExecutionMode.DIFF_ONLY] == \
        outputs[ExecutionMode.SCRATCH]
    assert outputs[ExecutionMode.ADAPTIVE] == \
        outputs[ExecutionMode.SCRATCH]


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_modes_agree_for_every_oracle_backed_algorithm(name):
    """The mode-equivalence contract holds for the full algorithm roster,
    on collections drawn from the fuzzer's generator (churn grammar)."""
    spec = ALGORITHMS[name]
    seed = 900 + sorted(ALGORITHMS).index(name)
    case = generate_case(seed, kinds=["churn"])
    params = spec.sample_params(random.Random(seed), case.vertices())
    executor = AnalyticsExecutor()
    outputs = {}
    for mode in ExecutionMode:
        result = executor.run_on_collection(
            spec.computation(params), case.collection, mode=mode,
            batch_size=2, keep_outputs=True, cost_metric="work")
        outputs[mode] = [canonical_diff(view.output)
                         for view in result.views]
    assert outputs[ExecutionMode.DIFF_ONLY] == \
        outputs[ExecutionMode.SCRATCH], name
    assert outputs[ExecutionMode.ADAPTIVE] == \
        outputs[ExecutionMode.SCRATCH], name


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_modes_agree_for_bfs(seed):
    collection = build_collection(seed, 4, 5)
    executor = AnalyticsExecutor()
    outputs = {}
    for mode in ExecutionMode:
        result = executor.run_on_collection(
            Bfs(), collection, mode=mode, keep_outputs=True,
            cost_metric="work")
        outputs[mode] = [view.output for view in result.views]
    assert outputs[ExecutionMode.DIFF_ONLY] == outputs[ExecutionMode.SCRATCH]
    assert outputs[ExecutionMode.ADAPTIVE] == outputs[ExecutionMode.SCRATCH]
