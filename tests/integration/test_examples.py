"""The example scripts must stay runnable (they double as documentation)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_quickstart(capsys):
    run_example("quickstart")
    out = capsys.readouterr().out
    assert "LA-Long-Calls" in out
    assert "sharing factor" in out


def test_graph_olap(capsys):
    run_example("graph_olap")
    out = capsys.readouterr().out
    assert "city rollup" in out
    assert "state rollup" in out
    assert "PageRank" in out


@pytest.mark.slow
def test_adaptive_splitting(capsys):
    run_example("adaptive_splitting")
    out = capsys.readouterr().out
    assert "split points" in out
    assert "S d d d d" in out


@pytest.mark.slow
def test_contingency_analysis(capsys):
    run_example("contingency_analysis")
    out = capsys.readouterr().out
    assert "failure scenarios" in out
    assert "optimizer order" in out


@pytest.mark.slow
def test_historical_analysis(capsys):
    run_example("historical_analysis")
    out = capsys.readouterr().out
    assert "connectivity history" in out
    assert "differential sharing" in out


def test_snap_workflow(capsys):
    run_example("snap_workflow")
    out = capsys.readouterr().out
    assert "SNAP temporal format" in out
    assert "ground-truth" in out
    assert "perturbation scenarios" in out
