"""Checkpoint/kill/resume round-trips at EVERY view boundary.

A six-view collection is run to completion once; then, for every view
index, a second run is killed exactly there via ``FaultPlan`` and
resumed from its checkpoint journal. Resumed per-view outputs must be
byte-for-byte identical (canonical JSON) to the uninterrupted run's.
"""

import pytest

from repro.algorithms import PageRank, Wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.resilience import FaultPlan
from repro.errors import InjectedFault
from repro.verify import canonical_diff, random_churn_collection

NUM_VIEWS = 6


@pytest.fixture(scope="module")
def collection():
    built = random_churn_collection(seed=42, num_views=NUM_VIEWS,
                                    num_nodes=10, churn=6)
    assert built.num_views == NUM_VIEWS
    return built


def _run(collection, computation, **kwargs):
    return AnalyticsExecutor().run_on_collection(
        computation, collection, mode=ExecutionMode.DIFF_ONLY,
        keep_outputs=True, cost_metric="work", **kwargs)


@pytest.mark.parametrize("kill_at", range(NUM_VIEWS))
@pytest.mark.parametrize("factory", [Wcc, lambda: PageRank(iterations=5)],
                         ids=["WCC", "PR"])
def test_kill_and_resume_at_every_view(collection, factory, kill_at,
                                       tmp_path):
    baseline = _run(collection, factory())
    path = tmp_path / "run.ckpt"
    with pytest.raises(InjectedFault):
        _run(collection, factory(), checkpoint_path=path,
             fault_plan=FaultPlan.single("epoch", kill_at))
    resumed = _run(collection, factory(), resume_from=path)
    assert resumed.resumed_views == kill_at
    got = [canonical_diff(view.output) for view in resumed.views]
    want = [canonical_diff(view.output) for view in baseline.views]
    assert got == want
