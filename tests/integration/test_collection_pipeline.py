"""Full-pipeline integration: datasets -> GVDL-style definitions ->
materialization (with ordering) -> analytics executor -> reference checks."""

import pytest

from repro.algorithms import Bfs, Wcc
from repro.algorithms.reference import reference_bfs, reference_wcc
from repro.bench.workloads import (
    caut_collection,
    cno_collection,
    csim_collection,
    csl_collection,
    orkut_churn_collection,
    perturbation_collection,
    scalability_collection,
)
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.datasets import citations_like, community_graph, stackoverflow_like


@pytest.fixture(scope="module")
def so_graph():
    return stackoverflow_like(num_nodes=80, num_edges=400, seed=0)


@pytest.fixture(scope="module")
def pc_graph():
    return citations_like(num_nodes=120, num_edges=420, seed=0)


def check_all_views(collection, computation, reference, mode):
    result = AnalyticsExecutor().run_on_collection(
        computation, collection, mode=mode, keep_outputs=True,
        cost_metric="work")
    for index in range(collection.num_views):
        triples = [(s, d, w) for (_e, s, d, w)
                   in collection.full_view_edges(index)]
        assert result.views[index].vertex_map() == reference(triples), \
            f"{collection.name} view {index} mode {mode}"
    return result


class TestTemporalCollections:
    def test_csim_is_addition_only(self, so_graph):
        collection = csim_collection(so_graph, 365 * 86400, max_views=6)
        for diff in collection.diffs:
            assert all(mult == 1 for mult in diff.values())
        assert collection.view_sizes == sorted(collection.view_sizes)

    def test_csim_diff_only_wins(self, so_graph):
        collection = csim_collection(so_graph, 180 * 86400, max_views=8)
        executor = AnalyticsExecutor()
        diff = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
        scratch = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.SCRATCH)
        assert diff.total_work < scratch.total_work

    def test_cno_views_disjoint(self, so_graph):
        collection = cno_collection(so_graph, 2 * 365 * 86400, max_views=4)
        previous = set()
        for index in range(collection.num_views):
            view = set(collection.full_view_edges(index))
            assert not (view & previous)
            previous = view

    @pytest.mark.parametrize("mode", [ExecutionMode.DIFF_ONLY,
                                      ExecutionMode.ADAPTIVE])
    def test_correctness_on_cno(self, so_graph, mode):
        collection = cno_collection(so_graph, 2 * 365 * 86400, max_views=4)
        check_all_views(collection, Wcc(), reference_wcc, mode)


class TestCitationCollections:
    def test_csl_all_views_correct(self, pc_graph):
        collection = csl_collection(pc_graph)
        assert collection.num_views == 16
        check_all_views(collection, Bfs(), reference_bfs,
                        ExecutionMode.ADAPTIVE)

    def test_caut_structure_and_split_points(self):
        # A larger citation graph so per-view costs dominate model noise.
        graph = citations_like(num_nodes=400, num_edges=1600, seed=0)
        collection = caut_collection(graph)
        assert collection.num_views == 25
        # Within a year window the author expansion is addition-only.
        for index, diff in enumerate(collection.diffs):
            if index % 5 != 0 and diff:
                assert all(mult == 1 for mult in diff.values()), index
        result = AnalyticsExecutor().run_on_collection(
            Wcc(), collection, mode=ExecutionMode.ADAPTIVE, batch_size=1,
            cost_metric="work")
        # The optimizer must split somewhere, and predominantly at the
        # year-window slides (view indices that are multiples of 5).
        assert result.split_points
        at_slides = [s for s in result.split_points if s % 5 == 0]
        assert len(at_slides) >= len(result.split_points) / 2, \
            result.split_points


class TestPerturbationCollections:
    def test_ordering_reduces_diffs(self):
        graph = community_graph(num_nodes=90, num_communities=8,
                                intra_edges=360, background_edges=60, seed=3)
        ordered = perturbation_collection(graph, 6, 3,
                                          order_method="christofides")
        shuffled = perturbation_collection(graph, 6, 3,
                                           order_method="random", seed=1)
        assert ordered.num_views == 20
        assert ordered.total_diffs < shuffled.total_diffs

    def test_ordered_collection_correct(self):
        graph = community_graph(num_nodes=60, num_communities=6,
                                intra_edges=200, background_edges=40, seed=4)
        collection = perturbation_collection(graph, 5, 2,
                                             order_method="christofides")
        check_all_views(collection, Wcc(), reference_wcc,
                        ExecutionMode.DIFF_ONLY)


class TestChurnAndScalability:
    def test_orkut_churn_views_accumulate(self):
        collection = orkut_churn_collection(num_nodes=50, num_edges=200,
                                            num_views=6,
                                            additions_per_view=10,
                                            removals_per_view=10, seed=0)
        sizes = collection.view_sizes
        assert sizes[0] == 200
        assert all(size > 0 for size in sizes)
        for index in range(collection.num_views):
            view = collection.full_view_edges(index)
            assert all(mult == 1 for mult in view.values())

    def test_scalability_collection_speedup(self):
        _graph, collection = scalability_collection(num_nodes=80,
                                                    num_edges=400)
        assert collection.num_views == 9

        def parallel_time(workers):
            executor = AnalyticsExecutor(workers=workers)
            result = executor.run_on_collection(
                Wcc(), collection, mode=ExecutionMode.DIFF_ONLY)
            return result.total_parallel_time

        t1 = parallel_time(1)
        t4 = parallel_time(4)
        t12 = parallel_time(12)
        assert t1 > t4 > t12
        assert t1 / t4 > 1.4  # meaningful speedup even at this tiny scale
