"""The hot-path benchmark-regression gate: JSON baseline + comparison."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.bench.reporting import (
    BENCH_SCHEMA,
    bench_to_json,
    compare_benchmarks,
    load_bench_json,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _scenario(score, work):
    return {"wall_seconds": score * 0.1, "score": score,
            "work": work, "parallel_time": work}


def _payload(**scenarios):
    return {"suite": "hotpath", "schema": BENCH_SCHEMA,
            "calibration_seconds": 0.1, "scenarios": scenarios}


class TestBaselineJson:
    def test_round_trip(self, tmp_path):
        payload = _payload(join_heavy=_scenario(10.0, 1000))
        path = tmp_path / "bench.json"
        bench_to_json(payload, path)
        assert load_bench_json(path) == payload

    def test_schema_mismatch_rejected(self, tmp_path):
        payload = _payload()
        payload["schema"] = BENCH_SCHEMA + 1
        path = tmp_path / "bench.json"
        bench_to_json(payload, path)
        with pytest.raises(ValueError, match="schema"):
            load_bench_json(path)

    def test_interrupted_write_never_tears_the_baseline(self, tmp_path,
                                                        monkeypatch):
        """Regression: ``bench_to_json`` used to write the baseline with a
        bare ``write_text``, so an interrupted ``--update-baseline`` run
        could leave a torn JSON file that the gate then chokes on. The
        write now goes through the atomic-replace helper: a crash mid-
        write leaves the previous baseline fully loadable."""
        import repro.core.persistence as persistence

        path = tmp_path / "bench.json"
        good = _payload(join_heavy=_scenario(10.0, 1000))
        bench_to_json(good, path)

        def exploding_replace(src, dst):
            raise OSError("killed mid-update")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            bench_to_json(_payload(join_heavy=_scenario(1.0, 1)), path)
        monkeypatch.undo()
        assert load_bench_json(path) == good
        assert compare_benchmarks(good, load_bench_json(path)) == []


class TestCompareGate:
    def test_pass_within_tolerance(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(12.0, 1000))
        assert compare_benchmarks(cur, base, tolerance=0.25) == []

    def test_score_regression_flagged(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(13.0, 1000))
        problems = compare_benchmarks(cur, base, tolerance=0.25)
        assert len(problems) == 1
        assert "score regressed 1.30x" in problems[0]

    def test_work_regression_flagged(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(10.0, 1400))
        problems = compare_benchmarks(cur, base, tolerance=0.25)
        assert any("work regressed" in p for p in problems)

    def test_missing_scenario_is_a_regression(self):
        base = _payload(a=_scenario(10.0, 1000), b=_scenario(5.0, 500))
        cur = _payload(a=_scenario(10.0, 1000))
        problems = compare_benchmarks(cur, base)
        assert problems == ["b: scenario missing from current run"]

    def test_improvements_pass(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(3.0, 400))
        assert compare_benchmarks(cur, base) == []

    def test_unbaselined_scenario_is_a_problem(self):
        # A scenario the current run measures but the baseline does not
        # is unguarded: the gate used to silently pass it (iterating only
        # baseline scenarios), so a new benchmark could regress forever
        # without anyone noticing. It must be reported.
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(3.0, 400), b=_scenario(1.0, 10))
        problems = compare_benchmarks(cur, base)
        assert len(problems) == 1
        assert "b" in problems[0]
        assert "no baseline entry" in problems[0]

    def test_zero_baseline_is_a_problem_not_a_skip(self):
        # A zero/near-zero baseline value can't anchor a ratio. The gate
        # used to `continue` past it, which let any regression through on
        # that metric; now it demands the baseline be re-recorded.
        base = _payload(a=_scenario(0.0, 1000))
        cur = _payload(a=_scenario(50.0, 1000))
        problems = compare_benchmarks(cur, base)
        assert len(problems) == 1
        assert "zero" in problems[0] and "score" in problems[0]

    def test_near_zero_baseline_is_a_problem(self):
        base = _payload(a=_scenario(1e-12, 1000))
        cur = _payload(a=_scenario(1e6, 1000))
        problems = compare_benchmarks(cur, base)
        assert any("near-zero" in p or "zero" in p for p in problems)


def _load_bench_hotpath():
    path = REPO_ROOT / "benchmarks" / "bench_hotpath.py"
    spec = importlib.util.spec_from_file_location("bench_hotpath", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_hotpath"] = module
    spec.loader.exec_module(module)
    return module


class TestHotpathSuite:
    def test_tiny_suite_runs_and_gates_against_itself(self, tmp_path):
        bench = _load_bench_hotpath()
        payload = bench.run_suite(scale=0.15)
        assert payload["schema"] == BENCH_SCHEMA
        assert set(payload["scenarios"]) >= {
            "join_heavy", "join_arranged_shared", "iterate_heavy",
            "collection_run_wcc", "collection_run_bfs"}
        for scenario in payload["scenarios"].values():
            assert scenario["work"] > 0
            assert scenario["score"] > 0
        path = tmp_path / "baseline.json"
        bench_to_json(payload, path)
        # Deterministic metrics: a re-run at the same scale produces the
        # same work counters, so the gate passes against itself.
        rerun = bench.run_suite(scale=0.15)
        for name, scenario in rerun["scenarios"].items():
            assert scenario["work"] == \
                payload["scenarios"][name]["work"], name
        baseline = load_bench_json(path)
        for scenario in baseline["scenarios"].values():
            # Millisecond-long tiny-scale runs make wall scores pure
            # noise; gate on the deterministic counters only. (A zero
            # score would be flagged as an unusable baseline, so the
            # metric is removed rather than zeroed.)
            del scenario["score"]
        assert compare_benchmarks(rerun, baseline, tolerance=0.25) == []

    def test_committed_baseline_is_loadable(self):
        baseline = load_bench_json(REPO_ROOT / "BENCH_engine.json")
        assert baseline["suite"] == "hotpath"
        assert baseline["scenarios"]
        assert baseline["backend"] == "inline"
        assert baseline["workers"] == 1

    def test_process_backend_suite_matches_inline(self):
        bench = _load_bench_hotpath()
        from repro.bench.reporting import (
            backend_speedup_rows,
            compare_backend_payloads,
            render_backend_comparison,
        )

        names = ["iterate_heavy", "collection_run_bfs"]
        inline = bench.run_suite(scale=0.15, workers=2, backend="inline",
                                 names=names)
        process = bench.run_suite(scale=0.15, workers=2,
                                  backend="process", names=names)
        assert process["backend"] == "process"
        assert compare_backend_payloads(inline, process) == []
        rows = backend_speedup_rows(inline, process)
        assert [row["scenario"] for row in rows] == names
        rendered = render_backend_comparison(rows)
        assert "speedup" in rendered and "iterate_heavy" in rendered

    def test_backend_comparison_flags_divergence(self):
        from repro.bench.reporting import compare_backend_payloads

        inline = {"scenarios": {
            "a": {"work": 10, "parallel_time": 5, "output_digest": "x"},
            "b": {"work": 7, "parallel_time": 7, "output_digest": "y"}}}
        process = {"scenarios": {
            "a": {"work": 11, "parallel_time": 5, "output_digest": "x"},
            "c": {"work": 1, "parallel_time": 1, "output_digest": "z"}}}
        problems = compare_backend_payloads(inline, process)
        assert any("a: work diverged" in problem for problem in problems)
        assert any("b: missing from the process" in problem
                   for problem in problems)
        assert any("c: missing from the inline" in problem
                   for problem in problems)

    def test_unknown_scenario_rejected(self):
        bench = _load_bench_hotpath()
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown scenario"):
            bench.run_suite(scale=0.1, names=["warp_drive"])
