"""The hot-path benchmark-regression gate: JSON baseline + comparison."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.bench.reporting import (
    BENCH_SCHEMA,
    bench_to_json,
    compare_benchmarks,
    load_bench_json,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _scenario(score, work):
    return {"wall_seconds": score * 0.1, "score": score,
            "work": work, "parallel_time": work}


def _payload(**scenarios):
    return {"suite": "hotpath", "schema": BENCH_SCHEMA,
            "calibration_seconds": 0.1, "scenarios": scenarios}


class TestBaselineJson:
    def test_round_trip(self, tmp_path):
        payload = _payload(join_heavy=_scenario(10.0, 1000))
        path = tmp_path / "bench.json"
        bench_to_json(payload, path)
        assert load_bench_json(path) == payload

    def test_schema_mismatch_rejected(self, tmp_path):
        payload = _payload()
        payload["schema"] = BENCH_SCHEMA + 1
        path = tmp_path / "bench.json"
        bench_to_json(payload, path)
        with pytest.raises(ValueError, match="schema"):
            load_bench_json(path)


class TestCompareGate:
    def test_pass_within_tolerance(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(12.0, 1000))
        assert compare_benchmarks(cur, base, tolerance=0.25) == []

    def test_score_regression_flagged(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(13.0, 1000))
        problems = compare_benchmarks(cur, base, tolerance=0.25)
        assert len(problems) == 1
        assert "score regressed 1.30x" in problems[0]

    def test_work_regression_flagged(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(10.0, 1400))
        problems = compare_benchmarks(cur, base, tolerance=0.25)
        assert any("work regressed" in p for p in problems)

    def test_missing_scenario_is_a_regression(self):
        base = _payload(a=_scenario(10.0, 1000), b=_scenario(5.0, 500))
        cur = _payload(a=_scenario(10.0, 1000))
        problems = compare_benchmarks(cur, base)
        assert problems == ["b: scenario missing from current run"]

    def test_improvements_and_new_scenarios_pass(self):
        base = _payload(a=_scenario(10.0, 1000))
        cur = _payload(a=_scenario(3.0, 400), b=_scenario(1.0, 10))
        assert compare_benchmarks(cur, base) == []


def _load_bench_hotpath():
    path = REPO_ROOT / "benchmarks" / "bench_hotpath.py"
    spec = importlib.util.spec_from_file_location("bench_hotpath", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_hotpath"] = module
    spec.loader.exec_module(module)
    return module


class TestHotpathSuite:
    def test_tiny_suite_runs_and_gates_against_itself(self, tmp_path):
        bench = _load_bench_hotpath()
        payload = bench.run_suite(scale=0.15)
        assert payload["schema"] == BENCH_SCHEMA
        assert set(payload["scenarios"]) >= {
            "join_heavy", "join_arranged_shared", "iterate_heavy",
            "collection_run_wcc", "collection_run_bfs"}
        for scenario in payload["scenarios"].values():
            assert scenario["work"] > 0
            assert scenario["score"] > 0
        path = tmp_path / "baseline.json"
        bench_to_json(payload, path)
        # Deterministic metrics: a re-run at the same scale produces the
        # same work counters, so the gate passes against itself.
        rerun = bench.run_suite(scale=0.15)
        for name, scenario in rerun["scenarios"].items():
            assert scenario["work"] == \
                payload["scenarios"][name]["work"], name
        baseline = load_bench_json(path)
        for scenario in baseline["scenarios"].values():
            # Millisecond-long tiny-scale runs make wall scores pure
            # noise; gate on the deterministic counters only.
            scenario["score"] = 0.0
        assert compare_benchmarks(rerun, baseline, tolerance=0.25) == []

    def test_committed_baseline_is_loadable(self):
        baseline = load_bench_json(REPO_ROOT / "BENCH_engine.json")
        assert baseline["suite"] == "hotpath"
        assert baseline["scenarios"]
