"""The streaming engine: continuous queries, atomicity, durability."""

import pytest

from repro.core.resilience import FaultPlan
from repro.core.system import Graphsurge
from repro.errors import (
    CheckpointError,
    InjectedFault,
    RequestError,
    StreamError,
)
from repro.graph.property_graph import PropertyGraph
from repro.stream import StreamBatch, StreamEngine, churn_batches
from repro.verify.oracles import output_map, resolve_algorithms

WCC = '{"computation":"wcc","params":{}}'


def wcc_engine(**kwargs):
    engine = StreamEngine(**kwargs)
    engine.register("wcc")
    return engine


def expected_wcc(engine):
    spec = resolve_algorithms(["wcc"])[0]
    triples = [triple for triple, mult in sorted(engine.edges.items())
               for _ in range(mult)]
    return spec.expected(triples, {})


class TestRegistration:
    def test_duplicate_signature_rejected(self):
        engine = wcc_engine()
        try:
            with pytest.raises(RequestError, match="already registered"):
                engine.register("wcc")
        finally:
            engine.close()

    def test_mid_stream_registration_seeds_from_live_graph(self):
        engine = wcc_engine()
        try:
            engine.ingest(StreamBatch(appends=((1, 2, 1), (3, 4, 1))))
            signature = engine.register("degrees")
            assert output_map(engine.snapshot(signature)) == {1: 1, 3: 1}
        finally:
            engine.close()

    def test_graph_seeds_epoch_zero(self):
        graph = PropertyGraph()
        for node in (1, 2, 3):
            graph.add_node(node)
        graph.add_edge(1, 2)
        engine = wcc_engine(graph=graph)
        try:
            assert engine.edges == {(1, 2, 1): 1}
            assert output_map(engine.snapshot(WCC)) == {1: 1, 2: 1}
        finally:
            engine.close()


class TestIngestion:
    def test_ingest_without_queries_is_request_error(self):
        engine = StreamEngine()
        with pytest.raises(RequestError, match="no continuous queries"):
            engine.ingest(StreamBatch(appends=((1, 2, 1),)))

    def test_per_epoch_delta_and_snapshot_track_reference(self):
        engine = wcc_engine()
        try:
            for batch in churn_batches(3, 25, num_nodes=10, churn=3,
                                       base_edges=5):
                payload = engine.ingest(batch)
                assert payload["epoch"] == engine.epoch
                assert output_map(engine.snapshot(WCC)) == \
                    expected_wcc(engine)
        finally:
            engine.close()

    def test_invalid_batch_is_atomic(self):
        engine = wcc_engine()
        try:
            engine.ingest(StreamBatch(appends=((1, 2, 1),)))
            edges_before = dict(engine.edges)
            rows_before = len(engine.meter.epochs)
            with pytest.raises(StreamError, match="beyond its "
                                                  "multiplicity"):
                engine.ingest(StreamBatch(appends=((3, 4, 1),),
                                          retracts=((8, 9, 1),)))
            assert engine.edges == edges_before
            assert engine.epoch == 1
            assert len(engine.meter.epochs) == rows_before
        finally:
            engine.close()

    def test_append_then_retract_within_one_batch_cancels(self):
        engine = wcc_engine()
        try:
            engine.ingest(StreamBatch(appends=((1, 2, 1),),
                                      retracts=((1, 2, 1),)))
            assert engine.edges == {}
            assert output_map(engine.snapshot(WCC)) == {}
        finally:
            engine.close()

    def test_snapshot_unknown_query(self):
        engine = wcc_engine()
        try:
            with pytest.raises(RequestError, match="unknown stream "
                                                   "query"):
                engine.snapshot("nope")
        finally:
            engine.close()


class TestFaultRecovery:
    def test_poisoned_resident_rebuilds_on_next_epoch(self):
        engine = wcc_engine(fault_plan=FaultPlan.single("epoch", 2))
        try:
            engine.ingest(StreamBatch(appends=((1, 2, 1),)))
            with pytest.raises(InjectedFault):
                engine.ingest(StreamBatch(appends=((2, 3, 1),)))
            resident = engine.queries[WCC].resident
            assert resident.dataflow is None
            # The epoch was still absorbed into the live multiset; the
            # next ingest rebuilds from it and stays exact.
            payload = engine.ingest(StreamBatch(appends=((4, 5, 1),)))
            assert payload["epoch"] == 3
            assert resident.rebuilds == 2
            assert output_map(engine.snapshot(WCC)) == \
                expected_wcc(engine)
        finally:
            engine.close()


class TestCompaction:
    def test_capture_times_stay_bounded(self):
        engine = wcc_engine(compact_every=4, keep_epochs=2)
        try:
            for batch in churn_batches(7, 40, num_nodes=10, churn=3,
                                       base_edges=5):
                engine.ingest(batch)
                capture = engine.queries[WCC].resident.capture
                assert len(capture.trace) <= 8
            assert output_map(engine.snapshot(WCC)) == \
                expected_wcc(engine)
        finally:
            engine.close()


class TestBackends:
    def test_process_backend_matches_inline_per_epoch(self):
        rows = {}
        for backend in ("inline", "process"):
            engine = wcc_engine(workers=2, backend=backend)
            try:
                observed = []
                for batch in churn_batches(5, 8, num_nodes=8, churn=2,
                                           base_edges=4):
                    payload = engine.ingest(batch)
                    row = payload["results"][WCC]
                    observed.append((row["epoch"], row["output_delta"],
                                     row["work"], row["parallel_time"]))
                rows[backend] = observed
            finally:
                engine.close()
        assert rows["inline"] == rows["process"]


class TestDurability:
    def _stream(self, engine, batches):
        rows = []
        for batch in batches:
            payload = engine.ingest(batch)
            row = payload["results"][WCC]
            rows.append((row["epoch"], row["output_delta"], row["work"]))
        return rows

    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        journal = tmp_path / "stream.ckpt"
        batches = churn_batches(2, 20, num_nodes=10, churn=3,
                                base_edges=6)
        baseline_engine = wcc_engine()
        try:
            baseline = self._stream(baseline_engine, batches)
        finally:
            baseline_engine.close()

        first = wcc_engine()
        try:
            first.attach_journal(journal)
            prefix = self._stream(first, batches[:9])
        finally:
            first.close()
        assert prefix == baseline[:9]

        resumed = StreamEngine.resume(journal)
        try:
            assert resumed.epoch == 9
            replayed = [(m.epoch, None, m.work)
                        for m in resumed.meter.epochs]
            assert [(e, w) for e, _d, w in replayed] == \
                [(e, w) for e, _d, w in baseline[:9]]
            tail = self._stream(resumed, batches[9:])
        finally:
            resumed.close()
        assert tail == baseline[9:]

    def test_resume_rejects_non_stream_journal(self, tmp_path):
        from repro.core.resilience import CheckpointWriter

        path = tmp_path / "other.ckpt"
        CheckpointWriter.fresh(path, {"kind": "run"}).close()
        with pytest.raises(CheckpointError, match="not a stream "
                                                  "journal"):
            StreamEngine.resume(path)
        with pytest.raises(CheckpointError, match="no stream journal"):
            StreamEngine.resume(tmp_path / "missing.ckpt")


class TestSystemFacade:
    def test_graphsurge_stream_registers_and_journals(self, tmp_path):
        graph = PropertyGraph()
        for node in (1, 2, 3, 4):
            graph.add_node(node)
        graph.add_edge(1, 2)
        gs = Graphsurge(workers=2)
        gs.add_graph(graph, "G")
        journal = tmp_path / "facade.ckpt"
        engine = gs.stream("G", ["wcc", ("degrees", {})],
                           journal_path=journal)
        try:
            assert engine.workers == 2
            assert sorted(q.name for q in engine.queries.values()) == \
                ["degrees", "wcc"]
            engine.ingest(StreamBatch(appends=((3, 4, 1),)))
            assert output_map(engine.snapshot(WCC)) == \
                {1: 1, 2: 1, 3: 3, 4: 3}
        finally:
            engine.close()
        assert journal.exists()

    def test_stream_without_target_starts_empty(self):
        engine = Graphsurge().stream(None, ["wcc"])
        try:
            assert engine.edges == {}
        finally:
            engine.close()
