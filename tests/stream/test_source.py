"""Edge-stream sources: batches, generators, and window wrappers."""

import pytest

from repro.errors import ConfigError
from repro.graph.property_graph import PropertyGraph
from repro.stream import (
    StreamBatch,
    batches_from_collection,
    churn_batches,
    cumulative_batches,
    replay_batches,
    sliding_batches,
)
from repro.verify.generator import generate_case
from repro.verify.oracles import view_edge_list


def accumulate(batches):
    """Live multiset after absorbing every batch, {-ve means invalid}."""
    edges = {}
    for batch in batches:
        for triple in batch.appends:
            edges[triple] = edges.get(triple, 0) + 1
        for triple in batch.retracts:
            edges[triple] = edges.get(triple, 0) - 1
    return {t: m for t, m in edges.items() if m}


class TestStreamBatch:
    def test_normalizes_lists_to_tuples(self):
        batch = StreamBatch(appends=[[1, 2, 1]], retracts=[[3, 4, 2]])
        assert batch.appends == ((1, 2, 1),)
        assert batch.retracts == ((3, 4, 2),)
        assert batch.size == 2
        assert not batch.is_empty()

    def test_record_roundtrip(self):
        batch = StreamBatch(appends=((1, 2, 1), (2, 3, 5)),
                            retracts=((4, 5, 1),))
        assert StreamBatch.from_record(batch.to_record()) == batch

    def test_empty(self):
        assert StreamBatch().is_empty()
        assert StreamBatch().size == 0


class TestChurnBatches:
    def test_deterministic_per_seed(self):
        assert churn_batches(5, 30) == churn_batches(5, 30)
        assert churn_batches(5, 30) != churn_batches(6, 30)

    def test_retractions_stay_within_live_set(self):
        live = {}
        for batch in churn_batches(9, 50, base_edges=10):
            for triple in batch.retracts:
                assert live.get(triple, 0) > 0, \
                    f"retracted {triple} not in live set"
                live[triple] -= 1
            for triple in batch.appends:
                live[triple] = live.get(triple, 0) + 1

    def test_base_edges_seed_an_initial_append_only_batch(self):
        batches = churn_batches(1, 10, base_edges=8)
        assert len(batches) == 10
        assert batches[0].retracts == ()
        assert batches[0].appends

    def test_validation(self):
        with pytest.raises(ConfigError, match="epochs"):
            churn_batches(0, 0)
        with pytest.raises(ConfigError, match="num_nodes"):
            churn_batches(0, 5, num_nodes=1)


class TestReplayBatches:
    def _graph(self):
        graph = PropertyGraph()
        for node in range(1, 7):
            graph.add_node(node)
        for index, (src, dst) in enumerate(
                [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]):
            graph.add_edge(src, dst, {"ts": 10 - index})
        return graph

    def test_orders_by_timestamp_and_chunks(self):
        batches = replay_batches(self._graph(), num_batches=3)
        assert len(batches) == 3
        assert all(not batch.retracts for batch in batches)
        # ts 6..10 ascending: the last-added edges replay first.
        flat = [triple for batch in batches for triple in batch.appends]
        assert flat == [(5, 6, 1), (4, 5, 1), (3, 4, 1), (2, 3, 1),
                        (1, 2, 1)]

    def test_pads_with_empty_batches(self):
        batches = replay_batches(self._graph(), num_batches=8)
        assert len(batches) == 8
        assert sum(batch.size for batch in batches) == 5

    def test_missing_property_is_config_error(self):
        graph = PropertyGraph()
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(1, 2)
        with pytest.raises(ConfigError, match="'ts'"):
            replay_batches(graph)


class TestWindows:
    def test_sliding_retracts_expired_batch(self):
        base = [StreamBatch(appends=((i, i + 1, 1),)) for i in range(5)]
        slid = sliding_batches(base, width=2)
        assert slid[0].retracts == ()
        assert slid[1].retracts == ()
        assert slid[2].retracts == ((0, 1, 1),)
        assert slid[4].retracts == ((2, 3, 1),)
        # The live window always holds exactly the last two batches.
        assert accumulate(slid) == {(3, 4, 1): 1, (4, 5, 1): 1}

    def test_sliding_requires_append_only_base(self):
        base = [StreamBatch(appends=((1, 2, 1),)),
                StreamBatch(retracts=((1, 2, 1),))]
        with pytest.raises(ConfigError, match="append-only"):
            sliding_batches(base, width=1)
        with pytest.raises(ConfigError, match="width"):
            sliding_batches([], width=0)

    def test_cumulative_is_identity(self):
        base = [StreamBatch(appends=((1, 2, 1),)), StreamBatch()]
        assert cumulative_batches(base) == base


class TestBatchesFromCollection:
    def test_batches_accumulate_to_each_view(self):
        case = generate_case(123, kinds=("churn",))
        collection = case.collection
        batches = batches_from_collection(collection)
        assert len(batches) == collection.num_views
        live = {}
        for index, batch in enumerate(batches):
            for triple in batch.appends:
                live[triple] = live.get(triple, 0) + 1
            for triple in batch.retracts:
                live[triple] = live.get(triple, 0) - 1
            view = {}
            for triple in view_edge_list(collection, index):
                view[triple] = view.get(triple, 0) + 1
            assert {t: m for t, m in live.items() if m} == view
