"""Adaptive collection splitting in action (paper §5 and Table 3).

Builds the paper's C_aut collection over a citation graph: the Cartesian
product of non-overlapping 5-year windows with an expanding author-count
window. Inside a year window the views grow by additions only (great for
differential execution); at every year slide the view changes wholesale (a
natural point to restart from scratch). The adaptive optimizer discovers
those split points from runtime observations alone.

Run:  python examples/adaptive_splitting.py
"""

from repro.algorithms import Wcc
from repro.bench.workloads import caut_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.datasets import citations_like


def main() -> None:
    graph = citations_like(num_nodes=500, num_edges=2000, seed=9)
    collection = caut_collection(graph)
    print(f"graph: {graph!r}")
    print(f"collection C_aut: {collection.num_views} views "
          f"(5 year-windows x 5 author-count windows)")
    print(f"view sizes: {collection.view_sizes}")
    print(f"diff sizes: {collection.diff_sizes}")

    executor = AnalyticsExecutor()
    runs = {}
    for mode in ExecutionMode:
        runs[mode] = executor.run_on_collection(
            Wcc(), collection, mode=mode, batch_size=1, cost_metric="work")

    print(f"\n{'strategy':12} {'work units':>12} {'splits':>7}")
    for mode, result in runs.items():
        print(f"{mode.value:12} {result.total_work:>12} "
              f"{len(result.split_points):>7}")

    adaptive = runs[ExecutionMode.ADAPTIVE]
    print(f"\nadaptive split points (view indices): "
          f"{adaptive.split_points}")
    print("year-window slides sit at indices 5, 10, 15, 20 — the optimizer "
          "should split there\nand run the addition-only author expansions "
          "differentially.")

    per_view = ["S" if v.strategy.value == "scratch" else "d"
                for v in adaptive.views]
    print("\nper-view strategy (S = from scratch, d = differential):")
    for start in range(0, len(per_view), 5):
        window = collection.view_names[start].split("x")[0]
        print(f"  years {window:10} {' '.join(per_view[start:start + 5])}")


if __name__ == "__main__":
    main()
