"""End-to-end workflow on SNAP-format files (the paper's data pipeline).

Synthesizes files in the formats the paper's datasets ship in — a temporal
edge list like ``sx-stackoverflow.txt`` and a ground-truth community file
like ``com-lj.all.cmty.txt`` — then runs the two corresponding paper
workloads through the public loaders:

1. temporal history: cumulative windows over the timestamp, WCC across
   snapshots (Example 1 / Figure 6);
2. community perturbation: remove combinations of the largest communities,
   ordered by the collection-ordering optimizer (§7.4).

Substitute your real SNAP downloads for the synthesized files and the
script runs unchanged.

Run:  python examples/snap_workflow.py
"""

import random
import tempfile
from pathlib import Path

from repro.algorithms import Wcc
from repro.bench.workloads import perturbation_collection
from repro.core.diagnostics import summarize_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.windows import cumulative_windows
from repro.graph.loaders import (
    load_communities,
    load_snap_edge_list,
    load_snap_temporal,
)


def synthesize_files(directory: Path) -> None:
    rng = random.Random(17)
    temporal = []
    for _ in range(800):
        u, v = rng.randrange(120), rng.randrange(120)
        if u != v:
            ts = 1_220_000_000 + int(250_000_000 * rng.random() ** 0.5)
            temporal.append(f"{u} {v} {ts}")
    (directory / "interactions.txt").write_text(
        "# src dst unixts\n" + "\n".join(temporal) + "\n")

    groups = [range(0, 40), range(40, 65), range(65, 85), range(85, 100)]
    social = []
    for group in groups:
        members = list(group)
        for _ in range(len(members) * 6):
            u, v = rng.sample(members, 2)
            social.append(f"{u} {v}")
    for _ in range(60):
        u, v = rng.randrange(100), rng.randrange(100)
        if u != v:
            social.append(f"{u} {v}")
    (directory / "social.txt").write_text("\n".join(social) + "\n")
    (directory / "social.cmty.txt").write_text(
        "\n".join(" ".join(str(m) for m in group) for group in groups)
        + "\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        synthesize_files(directory)
        executor = AnalyticsExecutor()

        # --- Workload 1: temporal history -------------------------------
        temporal = load_snap_temporal(directory / "interactions.txt",
                                      name="interactions")
        print(f"loaded {temporal!r} from SNAP temporal format")
        # A 150M-second initial window expanded in 25M-second steps — like
        # the paper's C_sim, the initial window carries most of the data
        # and each expansion is a small increment.
        bounds = [1_220_000_000 + 150_000_000 + step * 25_000_000
                  for step in range(5)]
        definition = cumulative_windows("history", "interactions", "ts",
                                        bounds=bounds)
        collection = definition.materialize(temporal)
        print(summarize_collection(collection).render())
        diff = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
            keep_outputs=True, cost_metric="work")
        scratch = executor.run_on_collection(
            Wcc(), collection, mode=ExecutionMode.SCRATCH,
            cost_metric="work")
        print("components per snapshot:",
              [len(set(v.vertex_map().values())) for v in diff.views])
        print(f"history analysis: diff-only {diff.total_work} work vs "
              f"scratch {scratch.total_work} "
              f"({scratch.total_work / diff.total_work:.1f}x shared)\n")

        # --- Workload 2: community perturbation --------------------------
        social = load_snap_edge_list(directory / "social.txt",
                                     name="social", undirected=False)
        communities = load_communities(social,
                                       directory / "social.cmty.txt")
        print(f"loaded {social!r} with {communities} ground-truth "
              f"communities")
        ordered = perturbation_collection(social, top_n=4, k=2,
                                          order_method="christofides")
        unordered = perturbation_collection(social, top_n=4, k=2,
                                            order_method="random", seed=1)
        print(f"perturbation scenarios: {ordered.num_views}; "
              f"#diffs {ordered.total_diffs} (optimizer) vs "
              f"{unordered.total_diffs} (random) — "
              f"{unordered.total_diffs / ordered.total_diffs:.1f}x fewer")
        run = executor.run_on_collection(
            Wcc(), ordered, mode=ExecutionMode.ADAPTIVE,
            keep_outputs=True, cost_metric="work")
        worst = max(run.views,
                    key=lambda v: len(set(v.vertex_map().values())))
        print(f"most fragmenting scenario: {worst.view_name} -> "
              f"{len(set(worst.vertex_map().values()))} components")


if __name__ == "__main__":
    main()
