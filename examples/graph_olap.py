"""Graph OLAP with aggregate views (paper §6).

Rolls a social network up into location-level summaries: users grouped by
city into super-nodes, call volumes folded into super-edges — then a view
over the view: the city-level summary filtered to heavy corridors, and a
further rollup to states. Demonstrates that aggregate views are ordinary
graphs in the system ("views over views").

Run:  python examples/graph_olap.py
"""

from repro import Graphsurge
from repro.algorithms import PageRank
from repro.datasets import social_like


def main() -> None:
    graph = social_like(num_nodes=300, num_edges=1800, seed=3,
                        with_attributes=True, name="network")
    gs = Graphsurge()
    gs.add_graph(graph)
    print(f"base graph: {graph!r}")

    # --- Rollup 1: users -> cities -----------------------------------------
    gs.execute(
        "create view city-traffic on network "
        "nodes group by city aggregate users: count(*) "
        "edges aggregate volume: sum(affinity)")
    cities = gs.views.get_view("city-traffic")
    print(f"\ncity rollup: {cities.num_nodes} super-nodes, "
          f"{cities.num_edges} super-edges")
    busiest = sorted(cities.edges, key=lambda e: -e.properties["volume"])[:5]
    for edge in busiest:
        src = cities.node_property(edge.src, "city")
        dst = cities.node_property(edge.dst, "city")
        print(f"  {src:7} -> {dst:7}: volume {edge.properties['volume']:4} "
              f"across {edge.properties['count']} edges")

    # --- A filtered view over the aggregate view ---------------------------
    gs.execute(
        "create view heavy-corridors on city-traffic "
        "edges where volume >= 20")
    corridors = gs.views.get_view("heavy-corridors")
    print(f"\nheavy corridors (volume >= 20): {corridors.num_edges} of "
          f"{cities.num_edges} city pairs")

    # --- Rollup 2: users -> states (independent grouping) ------------------
    gs.execute(
        "create view state-traffic on network "
        "nodes group by state, country "
        "aggregate users: count(*) "
        "edges aggregate volume: sum(affinity), strongest: max(affinity)")
    states = gs.views.get_view("state-traffic")
    print(f"\nstate rollup: {states.num_nodes} super-nodes")
    for node in states.nodes.values():
        print(f"  {node.properties['state']:7} "
              f"({node.properties['country']}): "
              f"{node.properties['users']} users")

    # --- Analytics on a summary graph --------------------------------------
    ranks = gs.run_analytics(PageRank(iterations=10), "city-traffic")
    top = sorted(ranks.vertex_map().items(), key=lambda kv: -kv[1])[:3]
    print("\nmost central cities by PageRank over the rollup:")
    for node_id, rank in top:
        print(f"  {cities.node_property(node_id, 'city'):7} "
              f"rank={rank / 1_000_000:.3f}")


if __name__ == "__main__":
    main()
