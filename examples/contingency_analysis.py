"""Contingency / perturbation analysis (paper Example 2 and §7.4).

A resilience analyst studies a communication network with known
communities: every failure scenario removes a subset of the largest
communities, and the analyst asks how connectivity degrades under each
scenario. There are C(N, k) scenarios and no obvious order to process them
in — exactly the setting where Graphsurge's collection ordering optimizer
(Christofides over the view-distance clique) pays off.

Run:  python examples/contingency_analysis.py
"""

from repro.algorithms import Wcc
from repro.bench.workloads import perturbation_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.datasets import community_graph
from repro.datasets.community import community_sizes
from repro.graph.edge_stream import EdgeStream


def main() -> None:
    graph = community_graph(num_nodes=200, num_communities=8,
                            intra_edges=800, background_edges=30, seed=7,
                            name="powergrid")
    print(f"generated {graph!r}")
    print("largest communities:",
          ", ".join(f"c{c} ({size} nodes)"
                    for c, size in community_sizes(graph)[:5]))

    # Every failure scenario removes 2 of the 6 largest communities.
    ordered = perturbation_collection(graph, top_n=6, k=2,
                                      order_method="christofides")
    unordered = perturbation_collection(graph, top_n=6, k=2,
                                        order_method="random", seed=1)
    print(f"\n{ordered.num_views} failure scenarios; edge differences to "
          f"process: optimizer order {ordered.total_diffs} vs random order "
          f"{unordered.total_diffs} "
          f"({unordered.total_diffs / ordered.total_diffs:.1f}x fewer)")

    executor = AnalyticsExecutor()
    run = executor.run_on_collection(
        Wcc(), ordered, mode=ExecutionMode.DIFF_ONLY, keep_outputs=True,
        cost_metric="work")
    baseline = executor.run_on_view(Wcc(), EdgeStream.from_graph(graph))
    healthy_users = len(baseline.vertex_map())
    healthy_components = len(set(baseline.vertex_map().values()))

    print(f"\nhealthy grid: {healthy_users} connected users in "
          f"{healthy_components} component(s)")
    print("worst failure scenarios (fragmentation + stranded users):")
    impact = []
    for view_result in run.views:
        component_of = view_result.vertex_map()
        labels = list(component_of.values())
        components = len(set(labels))
        largest = max(labels.count(lbl) for lbl in set(labels)) \
            if labels else 0
        stranded = healthy_users - len(component_of)
        impact.append((components, stranded, largest,
                       view_result.view_name))
    impact.sort(key=lambda row: (-row[0], -row[1]))
    for components, stranded, largest, name in impact[:5]:
        print(f"  {name:14} -> {components:2} components, "
              f"{stranded:3} users cut off, largest island {largest}")

    # The paper's §7.4 configuration: ordering benefit with splitting off.
    random_run = executor.run_on_collection(
        Wcc(), unordered, mode=ExecutionMode.DIFF_ONLY, cost_metric="work")
    print(f"\nanalysis cost (differential execution): optimizer order "
          f"{run.total_work} work units, random order "
          f"{random_run.total_work} "
          f"({random_run.total_work / run.total_work:.2f}x more)")


if __name__ == "__main__":
    main()
