"""Historical analysis of a temporal network (paper Example 1).

A network scientist studies how the connectivity of a Stack-Overflow-like
interaction graph evolved: one view per half-year of history (each view
containing everything up to its cutoff), weakly connected components and
BFS reachability computed across all views — differentially, so each
additional snapshot costs only its increment.

Run:  python examples/historical_analysis.py
"""

from repro.algorithms import Bfs, Wcc
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.view_collection import ViewCollectionDefinition
from repro.datasets import stackoverflow_like
from repro.datasets.temporal import ts_after
from repro.gvdl.parser import parse


def cutoff_views(num_years: float, step_years: float):
    """One expanding view per `step_years` of history."""
    views = []
    steps = int(num_years / step_years)
    for index in range(1, steps + 1):
        bound = ts_after(years=index * step_years)
        predicate = parse(
            f"create view v on so edges where ts < {bound}").predicate
        label = f"y{index * step_years:.1f}"
        views.append((label, predicate))
    return tuple(views)


def main() -> None:
    graph = stackoverflow_like(num_nodes=250, num_edges=1200, seed=42)
    print(f"generated {graph!r}")

    definition = ViewCollectionDefinition(
        "history", "so", cutoff_views(num_years=8, step_years=0.5))
    collection = definition.materialize(graph)
    print(f"materialized {collection.num_views} snapshots; "
          f"view sizes {collection.view_sizes[:6]} ... "
          f"{collection.view_sizes[-1]} edges")

    executor = AnalyticsExecutor()
    wcc = executor.run_on_collection(
        Wcc(), collection, mode=ExecutionMode.DIFF_ONLY,
        keep_outputs=True, cost_metric="work")
    print("\nconnectivity history (WCC):")
    print(f"{'snapshot':>10} {'edges':>7} {'components':>11} "
          f"{'largest':>8} {'work':>8}")
    for index, view_result in enumerate(wcc.views):
        labels = list(view_result.vertex_map().values())
        components = len(set(labels))
        largest = max(labels.count(lbl) for lbl in set(labels)) if labels else 0
        print(f"{view_result.view_name:>10} "
              f"{collection.view_sizes[index]:>7} {components:>11} "
              f"{largest:>8} {view_result.work:>8}")

    scratch = executor.run_on_collection(
        Wcc(), collection, mode=ExecutionMode.SCRATCH, cost_metric="work")
    print(f"\ndifferential sharing: {wcc.total_work} work vs "
          f"{scratch.total_work} from scratch "
          f"({scratch.total_work / wcc.total_work:.1f}x saved)")

    source = min(edge.src for edge in graph.edges)
    bfs = executor.run_on_collection(
        Bfs(source=source), collection, mode=ExecutionMode.DIFF_ONLY,
        keep_outputs=True)
    reach_first = len(bfs.views[0].vertex_map())
    reach_last = len(bfs.views[-1].vertex_map())
    print(f"\nreachability from user {source}: {reach_first} users in the "
          f"first snapshot -> {reach_last} in the last")


if __name__ == "__main__":
    main()
