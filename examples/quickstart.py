"""Quickstart: the paper's running example, end to end.

Builds the Figure-1 phone-call graph from CSV, creates the Listing-1
filtered view and the Listing-3 view collection with GVDL, runs weakly
connected components over the collection differentially, and compares the
cost against re-running every view from scratch.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import ExecutionMode, Graphsurge
from repro.algorithms import Wcc

NODES_CSV = """id,city:str,profession:str
1,LA,Engineer
2,LA,Doctor
3,LA,Engineer
4,NY,Lawyer
5,NY,Doctor
6,LA,Engineer
7,NY,Lawyer
8,LA,Lawyer
"""

EDGES_CSV = """src,dst,duration:int,year:int
1,2,7,2015
1,3,1,2010
2,1,19,2019
2,6,13,2019
3,1,7,2018
3,6,2,2013
4,7,4,2019
4,8,34,2019
5,2,18,2019
5,4,6,2019
6,3,12,2017
6,8,10,2018
7,4,18,2019
7,5,32,2017
8,6,3,2019
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        nodes = Path(tmp) / "nodes.csv"
        edges = Path(tmp) / "edges.csv"
        nodes.write_text(NODES_CSV)
        edges.write_text(EDGES_CSV)

        gs = Graphsurge()
        graph = gs.load_graph("Calls", nodes, edges)
        print(f"loaded {graph!r}")

        # --- A filtered view (paper Listing 1, adapted to our cities) ----
        gs.execute(
            "create view LA-Long-Calls on Calls edges where "
            "src.city = 'LA' and dst.city = 'LA' and duration > 10")
        view = gs.views.get_view("LA-Long-Calls")
        print(f"\nLA-Long-Calls has {view.num_edges} edges:")
        for edge in view.edges:
            print(f"  {edge.src} -> {edge.dst} "
                  f"({edge.properties['duration']} min)")

        # --- A view collection (paper Listing 3) -------------------------
        views = ",\n".join(
            f"[D{d}: duration <= {d} and year <= 2019]"
            for d in range(1, 35, 3))
        gs.execute(f"create view collection call-analysis on Calls\n{views}")
        collection = gs.views.get_collection("call-analysis")
        print(f"\ncollection call-analysis: {collection.num_views} views, "
              f"sizes {collection.view_sizes}")

        # --- Analytics over the collection, shared differentially --------
        diff = gs.run_analytics(Wcc(), "call-analysis",
                                mode=ExecutionMode.DIFF_ONLY,
                                keep_outputs=True, cost_metric="work")
        scratch = gs.run_analytics(Wcc(), "call-analysis",
                                   mode=ExecutionMode.SCRATCH,
                                   cost_metric="work")
        print("\nWCC component count per view (diff-only execution):")
        for view_result in diff.views:
            components = len(set(view_result.vertex_map().values()))
            print(f"  {view_result.view_name:4} -> {components} components "
                  f"({view_result.work} work units)")
        print(f"\ntotal work: diff-only={diff.total_work} "
              f"scratch={scratch.total_work} "
              f"(sharing factor {scratch.total_work / diff.total_work:.1f}x)")


if __name__ == "__main__":
    main()
