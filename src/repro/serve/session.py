"""Resident session state: load once, keep arrangements hot, feed deltas.

The batch library rebuilds graph, EBM, and dataflow state on every
invocation; the daemon keeps them *resident*. A
:class:`ResidentDataflow` holds one built differential dataflow per
computation signature together with the input multiset it has been fed so
far. Answering a request for any view — of any collection, at any epoch —
is then: diff the requested edge multiset against what the dataflow
already holds, feed only that delta as the next epoch, and read the
output. Overlapping view collections across *separate requests* therefore
share arrangements and traces exactly the way views inside one batch run
do (paper §3.2.2), and the work meter proves it: the second, overlapping
request charges only its difference.

:class:`ServeSession` owns the :class:`repro.core.system.Graphsurge`
facade, the resident registry, the session epoch (bumped by mutations),
and the journal of state-changing operations that the lifecycle layer
checkpoints through the PR 1 journal format.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms import (
    BellmanFord,
    Bfs,
    CompositeScore,
    KCore,
    KTruss,
    LabelPropagation,
    MaxDegree,
    Mpsp,
    OutDegrees,
    PageRank,
    PersonalizedPageRank,
    Scc,
    Triangles,
    Wcc,
)
from repro.core.computation import GraphComputation
from repro.core.resilience import (
    CheckpointState,
    CheckpointWriter,
    FaultPlan,
    RunBudget,
    encode_value,
    load_checkpoint,
)
from repro.core.system import Graphsurge
from repro.differential.dataflow import Dataflow
from repro.differential.multiset import Diff
from repro.errors import CheckpointError, RequestError, UnknownGraphError
from repro.graph.edge_stream import EdgeStream, edge_diff_to_input
from repro.graph.store import ViewStore
from repro.observe.tracer import TraceSink, attached
from repro.timely.meter import WorkSnapshot
from repro.timely.worker import canonical_order_key

#: Computation names the server accepts, with their parameter builders.
_BUILDERS = {
    "wcc": lambda p: Wcc(),
    "scc": lambda p: Scc(),
    "bfs": lambda p: Bfs(source=p.get("source")),
    "bf": lambda p: BellmanFord(source=p.get("source")),
    "sssp": lambda p: BellmanFord(source=p.get("source")),
    "bellman-ford": lambda p: BellmanFord(source=p.get("source")),
    "pagerank": lambda p: PageRank(iterations=int(p.get("iterations", 10))),
    "pr": lambda p: PageRank(iterations=int(p.get("iterations", 10))),
    "mpsp": lambda p: Mpsp([(int(s), int(d))
                            for s, d in p.get("pairs", ())]),
    "kcore": lambda p: KCore(int(p.get("k", 2))),
    "triangles": lambda p: Triangles(),
    "degrees": lambda p: OutDegrees(),
    "maxdegree": lambda p: MaxDegree(),
    # Community & scoring pack (docs/algorithms.md).
    "labelprop": lambda p: LabelPropagation(
        rounds=int(p.get("rounds", 8))),
    "lpa": lambda p: LabelPropagation(rounds=int(p.get("rounds", 8))),
    "ppr": lambda p: PersonalizedPageRank(
        [int(s) for s in p.get("seeds", ())],
        iterations=int(p.get("iterations", 10))),
    "ktruss": lambda p: KTruss(int(p.get("k", 3))),
    "score": lambda p: CompositeScore(
        degree_weight=int(p.get("degree_weight", 1)),
        triangle_weight=int(p.get("triangle_weight", 1)),
        rank_weight=int(p.get("rank_weight", 1)),
        iterations=int(p.get("iterations", 5))),
}

_KNOWN_PARAMS = {"source", "iterations", "k", "pairs", "rounds", "seeds",
                 "degree_weight", "triangle_weight", "rank_weight"}


def build_request_computation(name: str,
                              params: Optional[Dict[str, Any]] = None
                              ) -> GraphComputation:
    """Instantiate a computation from a request's name + parameter dict."""
    params = params or {}
    if not isinstance(params, dict):
        raise RequestError("'params' must be a JSON object")
    unknown = set(params) - _KNOWN_PARAMS
    if unknown:
        raise RequestError(
            f"unknown computation parameter(s): {sorted(unknown)}")
    builder = _BUILDERS.get(str(name).lower())
    if builder is None:
        raise RequestError(
            f"unknown computation {name!r}; expected one of "
            f"{sorted(set(_BUILDERS))}")
    return builder(params)


def computation_signature(name: str,
                          params: Optional[Dict[str, Any]] = None) -> str:
    """A canonical string identity for (computation, parameters)."""
    return json.dumps({"computation": str(name).lower(),
                       "params": params or {}},
                      sort_keys=True, separators=(",", ":"))


def multiset_delta(current: Diff, target: Diff) -> Diff:
    """The difference that advances multiset ``current`` to ``target``."""
    delta: Diff = {}
    for record, mult in target.items():
        change = mult - current.get(record, 0)
        if change:
            delta[record] = change
    for record, mult in current.items():
        if record not in target and mult:
            delta[record] = -mult
    return delta


def render_output(output: Diff) -> List[List[Any]]:
    """JSON-safe, deterministically ordered ``[record, multiplicity]``.

    Ordered by the canonical record order, not ``repr``: records that
    compare equal across numeric spellings (``3`` vs ``3.0``, which
    ``stable_hash`` canonicalizes) must render in the same position no
    matter which spelling a run's dict representative holds.
    """
    return [[encode_value(record), mult]
            for record, mult in sorted(
                output.items(),
                key=lambda item: canonical_order_key(item[0]))]


class ResidentDataflow:
    """One built dataflow kept hot across requests for one computation.

    ``current`` is the input multiset the dataflow has absorbed; a failed
    ``step`` may leave operator state mid-epoch, so any exception poisons
    the instance — the next ``advance`` rebuilds from an empty dataflow
    and feeds the full target (the same rebuild discipline the batch
    executor applies to retries).
    """

    def __init__(self, computation: GraphComputation, workers: int = 1,
                 fault_plan: Optional[FaultPlan] = None,
                 backend: str = "inline"):
        self.computation = computation
        self.workers = workers
        self.backend = backend
        self.fault_plan = fault_plan
        self.current: Diff = {}
        self.dataflow: Optional[Dataflow] = None
        self.capture = None
        self.epochs_fed = 0
        self.rebuilds = 0
        #: Whether the *current build* has been stepped at least once.
        #: The zero-delta shortcut in :meth:`advance` is gated on this,
        #: not on the lifetime ``epochs_fed`` counter: a rebuilt dataflow
        #: has no epoch to read output from until it has been stepped.
        self._stepped = False

    def _build(self) -> None:
        dataflow = Dataflow(workers=self.workers,
                            fault_plan=self.fault_plan,
                            backend=self.backend)
        edges = dataflow.new_input("edges")
        result = self.computation.build(dataflow, edges)
        self.capture = dataflow.capture(result, "results")
        self.dataflow = dataflow
        self.current = {}
        self._stepped = False
        self.rebuilds += 1

    def poison(self) -> None:
        # Detach state *before* closing: close() may itself fail (e.g. a
        # wedged worker cluster), and the resident must not keep serving
        # off a half-closed dataflow in that case.
        dataflow, self.dataflow = self.dataflow, None
        self.capture = None
        self.current = {}
        self._stepped = False
        if dataflow is not None:
            # Release the resident worker processes (process backend).
            dataflow.close()

    def advance(self, target: Diff, budget: Optional[RunBudget] = None,
                tracer: Optional[TraceSink] = None
                ) -> Tuple[Diff, WorkSnapshot]:
        """Step the dataflow to the ``target`` input multiset.

        Returns the accumulated output and the work spent on this step
        alone. The step is skipped entirely when the delta is empty (the
        dataflow is already *at* the target) — zero work, by construction.
        """
        if self.dataflow is None:
            self._build()
        dataflow = self.dataflow
        delta = multiset_delta(self.current, target)
        before = dataflow.meter.snapshot()
        if not delta and self._stepped:
            output = self.capture.value_at_epoch(dataflow.epoch)
            return output, before.delta(dataflow.meter.snapshot())
        dataflow.set_budget(budget)
        try:
            with attached(dataflow, tracer):
                epoch = dataflow.step({"edges": delta})
        except BaseException:
            self.poison()
            raise
        finally:
            if self.dataflow is not None:
                self.dataflow.set_budget(None)
        self.current = dict(target)
        self.epochs_fed += 1
        self._stepped = True
        output = self.capture.value_at_epoch(epoch)
        return output, before.delta(dataflow.meter.snapshot())

    def advance_by(self, delta: Diff, budget: Optional[RunBudget] = None,
                   tracer: Optional[TraceSink] = None,
                   want_output: bool = False
                   ) -> Tuple[Optional[Diff], Diff, WorkSnapshot]:
        """Absorb an incremental input ``delta`` as one epoch.

        The streaming path: the caller already knows the change, so no
        multiset diffing against ``current`` happens and — unlike
        :meth:`advance` — reading the full accumulated output is opt-in
        (``want_output``), keeping per-epoch cost proportional to the
        batch rather than the graph. Returns ``(output or None,
        output_delta, work)`` where ``output_delta`` is the consolidated
        result change this epoch emitted.

        Raises :class:`~repro.errors.DataflowError` when the resident has
        no built dataflow: an incremental delta is only meaningful
        relative to state this build has absorbed, so after a poison the
        caller must re-seed via :meth:`advance` with the full target.
        """
        from repro.differential.multiset import consolidate

        from repro.errors import DataflowError

        if self.dataflow is None:
            raise DataflowError(
                "advance_by on an unbuilt resident dataflow; re-seed with "
                "advance(full_target) after a rebuild")
        dataflow = self.dataflow
        delta = consolidate(dict(delta))
        before = dataflow.meter.snapshot()
        if not delta and self._stepped:
            return (self.capture.value_at_epoch(dataflow.epoch)
                    if want_output else None,
                    {}, before.delta(dataflow.meter.snapshot()))
        dataflow.set_budget(budget)
        try:
            with attached(dataflow, tracer):
                epoch = dataflow.step({"edges": delta})
        except BaseException:
            self.poison()
            raise
        finally:
            if self.dataflow is not None:
                self.dataflow.set_budget(None)
        for record, mult in delta.items():
            count = self.current.get(record, 0) + mult
            if count:
                self.current[record] = count
            else:
                self.current.pop(record, None)
        self.epochs_fed += 1
        self._stepped = True
        output_delta = self.capture.diff_at((epoch,))
        output = (self.capture.value_at_epoch(epoch)
                  if want_output else None)
        return output, output_delta, before.delta(dataflow.meter.snapshot())

    def record_counts(self) -> Dict[str, int]:
        """Stored trace entries per operator (resident-memory figure)."""
        if self.dataflow is None:
            return {}
        from repro.differential.debug import operator_record_counts

        return operator_record_counts(self.dataflow)


class ServeSession:
    """Everything one daemon instance keeps resident between requests."""

    JOURNAL_KIND = "serve-session"

    def __init__(self, system: Optional[Graphsurge] = None,
                 workers: int = 1,
                 fault_plan: Optional[FaultPlan] = None,
                 backend: Optional[str] = None):
        self.gs = system if system is not None else Graphsurge(
            workers=workers)
        self.workers = self.gs.workers
        self.backend = (backend if backend is not None
                        else getattr(self.gs, "backend", "inline"))
        self.fault_plan = fault_plan
        #: Bumped by every mutation; tags cache entries and responses.
        self.epoch = 0
        self._residents: Dict[str, ResidentDataflow] = {}
        #: At most one streaming session per daemon (see ``/stream``).
        self._stream = None
        #: Ordered journal of state-changing operations (GVDL + mutations)
        #: — what the lifecycle layer checkpoints and restore replays.
        self.journal: List[dict] = []

    # -- state-changing operations -------------------------------------------

    def execute_gvdl(self, text: str) -> List[str]:
        """Run GVDL statements; journals them for checkpoint/restore."""
        created = self.gs.execute(text)
        self.journal.append({"kind": "gvdl", "text": text})
        return created

    def mutate(self, graph: str, add_nodes=(), add_edges=(),
               retract_edges=()) -> dict:
        """Append/retract edges, bump the epoch, re-materialize views.

        The base graph mutates in place; views and collections are
        re-derived by replaying the journaled GVDL against the mutated
        graph (they are *definitions* over the graph, not data in their
        own right). Resident dataflows survive untouched: their input
        state is an edge multiset, so the next request absorbs the
        mutation as one small delta instead of a rebuild.
        """
        counts = self.gs.mutate_graph(
            graph, add_nodes=add_nodes, add_edges=add_edges,
            retract_edges=retract_edges)
        self.journal.append({
            "kind": "mutate", "graph": graph,
            "add_nodes": [[node, props] for node, props in add_nodes],
            "add_edges": [[src, dst, props]
                          for src, dst, props in add_edges],
            "retract_edges": [[src, dst] for src, dst in retract_edges],
        })
        self.epoch += 1
        self._rematerialize_views()
        return dict(counts, epoch=self.epoch)

    def _rematerialize_views(self) -> None:
        self.gs.views = ViewStore()
        for record in self.journal:
            if record["kind"] == "gvdl":
                self.gs.execute(record["text"])

    # -- serving computations -------------------------------------------------

    def resident_for(self, signature: str,
                     computation: GraphComputation) -> ResidentDataflow:
        resident = self._residents.get(signature)
        if resident is None:
            resident = ResidentDataflow(computation, workers=self.workers,
                                        fault_plan=self.fault_plan,
                                        backend=self.backend)
            self._residents[signature] = resident
        return resident

    def run(self, signature: str, computation: GraphComputation,
            target: str, include_output: bool = True,
            budget: Optional[RunBudget] = None,
            tracer: Optional[TraceSink] = None) -> dict:
        """Answer one analytics request from resident state.

        For a collection target every view is fed as a delta off the
        resident dataflow's current input state; for a graph or view
        target the full edge multiset is the (single) target state. The
        payload's per-view ``work`` figures come straight off the meter.
        """
        resident = self.resident_for(signature, computation)
        directed = computation.directed
        views: List[dict] = []
        if self.gs.views.has_collection(target):
            collection = self.gs.views.get_collection(target)
            view_targets = [
                (collection.view_names[index],
                 edge_diff_to_input(collection.full_view_edges(index),
                                    directed=directed))
                for index in range(collection.num_views)]
        else:
            graph = self.gs.resolve(target)
            edges = EdgeStream.from_graph(
                graph, weight=self.gs.weight_property)
            view_targets = [(target, edges.as_input_diff(directed=directed))]
        total_work = 0
        total_parallel = 0
        for view_name, target_input in view_targets:
            mark = tracer.mark() if tracer is not None else 0
            output, spent = resident.advance(target_input, budget=budget,
                                             tracer=tracer)
            total_work += spent.total_work
            total_parallel += spent.parallel_time
            view_payload = {
                "view": view_name,
                "work": spent.total_work,
                "parallel_time": spent.parallel_time,
                "output_size": len(output),
            }
            if include_output:
                view_payload["output"] = render_output(output)
            if tracer is not None:
                from repro.observe.profile import profile_view

                profile = profile_view(tracer, view_name, mark,
                                       tracer.mark())
                view_payload["profile"] = {
                    "critical_path_length": profile.critical_path.length,
                    "top": [[item.operator, item.units]
                            for item in profile.critical_path.top(3)],
                }
            views.append(view_payload)
        return {
            "computation": computation.name,
            "target": target,
            "epoch": self.epoch,
            "views": views,
            "total_work": total_work,
            "total_parallel_time": total_parallel,
        }

    def close(self) -> None:
        """Release every resident dataflow (and its worker cluster).

        Idempotent. The serve lifecycle calls this after the drain so
        process-backend worker children are torn down deterministically
        instead of leaking past the daemon's exit.
        """
        for resident in self._residents.values():
            resident.poison()
        self._residents.clear()
        self.stream_close()

    # -- streaming -------------------------------------------------------------
    #
    # The imports are deferred: repro.stream builds on ResidentDataflow
    # from this module, so importing it at module scope would be a cycle.

    def _require_stream(self):
        if self._stream is None:
            raise RequestError(
                "no stream session is open; POST /stream with "
                "action 'open' first")
        return self._stream

    def stream_open(self, graph: Optional[str],
                    queries: List[Tuple[str, dict]]) -> dict:
        """Open the daemon's streaming session against a base graph."""
        from repro.stream import StreamEngine

        if self._stream is not None:
            raise RequestError(
                "a stream session is already open; close it first")
        base = self.gs.resolve(graph) if graph else None
        engine = StreamEngine(
            base, workers=self.workers, backend=self.backend,
            weight_property=self.gs.weight_property,
            fault_plan=self.fault_plan)
        try:
            signatures = [engine.register(name, params)
                          for name, params in queries]
        except BaseException:
            engine.close()
            raise
        self._stream = engine
        return {"queries": signatures, "stream": engine.describe()}

    def stream_ingest(self, appends, retracts) -> dict:
        """Absorb one append/retract batch as the next stream epoch."""
        from repro.stream import StreamBatch

        engine = self._require_stream()
        return engine.ingest(
            StreamBatch(appends=appends, retracts=retracts))

    def stream_snapshot(self, signature: str) -> dict:
        engine = self._require_stream()
        if signature not in engine.queries:
            # Accept a bare computation name for parameterless queries.
            named = computation_signature(signature, {})
            if named in engine.queries:
                signature = named
        output = engine.snapshot(signature)
        return {"query": signature, "epoch": engine.epoch,
                "output": render_output(output)}

    def stream_describe(self) -> dict:
        engine = self._require_stream()
        return dict(engine.describe(),
                    resident_memory=engine.resident_memory())

    def stream_close(self) -> dict:
        """Tear down the stream session (idempotent)."""
        engine, self._stream = self._stream, None
        epoch = 0
        if engine is not None:
            epoch = engine.epoch
            engine.close()
        return {"closed": engine is not None, "epoch": epoch}

    # -- introspection ---------------------------------------------------------

    def resident_memory(self) -> Dict[str, Any]:
        """Per-signature stored-record counts (the ``trace_memory`` view)."""
        residents = {}
        total = 0
        for signature, resident in sorted(self._residents.items()):
            counts = resident.record_counts()
            records = sum(counts.values())
            total += records
            residents[signature] = {
                "records": records,
                "epochs_fed": resident.epochs_fed,
                "rebuilds": resident.rebuilds,
                "operators": len(counts),
            }
        payload = {"total_records": total, "residents": residents}
        if self._stream is not None:
            payload["stream"] = self._stream.resident_memory()
        return payload

    def describe(self) -> Dict[str, Any]:
        return {
            "graphs": list(self.gs.graphs.names()),
            "views": list(self.gs.views.view_names()),
            "collections": list(self.gs.views.collection_names()),
            "epoch": self.epoch,
            "journal_entries": len(self.journal),
            "workers": self.workers,
            "backend": self.backend,
        }

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(self, path) -> int:
        """Write the journal through the PR 1 checkpoint format.

        One checksummed line per journaled operation; a torn final line
        on crash is tolerated by :func:`load_checkpoint` exactly as for
        run checkpoints. Returns the number of records written.
        """
        header = {
            "kind": self.JOURNAL_KIND,
            "graphs": sorted(self.gs.graphs.names()),
            "epoch": self.epoch,
            "num_views": len(self.journal),
        }
        writer = CheckpointWriter.fresh(path, header)
        try:
            for index, record in enumerate(self.journal):
                writer.append_view(dict(record, index=index))
        finally:
            writer.close()
        return len(self.journal)

    def restore(self, path) -> Optional[CheckpointState]:
        """Replay a session checkpoint written by :meth:`checkpoint`.

        The base graphs must already be loaded (the daemon loads the same
        ``--load`` CSVs); the journal replays GVDL and mutations on top,
        reproducing views, collections, and the epoch counter.
        """
        state = load_checkpoint(path)
        if state is None:
            return None
        if state.header.get("kind") != self.JOURNAL_KIND:
            raise CheckpointError(
                f"checkpoint {path} is not a serve-session journal "
                f"(kind={state.header.get('kind')!r})")
        for graph in state.header.get("graphs", ()):
            if graph not in self.gs.graphs:
                raise UnknownGraphError(
                    f"checkpoint {path} expects base graph {graph!r}; "
                    f"load it before restoring")
        for record in state.views:
            if record["kind"] == "gvdl":
                self.execute_gvdl(record["text"])
            elif record["kind"] == "mutate":
                self.mutate(
                    record["graph"],
                    add_nodes=[(node, props)
                               for node, props in record["add_nodes"]],
                    add_edges=[(src, dst, props)
                               for src, dst, props in record["add_edges"]],
                    retract_edges=[(src, dst)
                                   for src, dst in record["retract_edges"]])
            else:
                raise CheckpointError(
                    f"unknown serve journal record kind "
                    f"{record['kind']!r} in {path}")
        return state
