"""The serving result cache: epoch-validated, stale-retaining, stampede-safe.

The paper's whole economy is *not recomputing*: a served request whose
(computation, target, parameters) key was answered at the current graph
epoch is a pure cache hit. Two deliberate departures from a plain LRU:

* **Staleness instead of eviction on mutation.** ``POST /mutate`` bumps
  the session epoch; entries written under older epochs become *stale*
  rather than vanishing. A fresh recompute normally replaces them — but
  when the recompute *fails*, the degradation ladder serves the stale
  entry (marked ``"stale": true``) instead of an error.
* **Single-flight fills.** Concurrent identical requests coalesce on a
  per-key :class:`asyncio.Lock`: exactly one computes and fills, the rest
  read the filled entry (the no-cache-stampede property the concurrency
  tests pin down).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import asyncio


@dataclass
class CacheEntry:
    """One cached result with the epoch it was computed under."""

    value: Any
    epoch: int
    created_at: float
    fills: int = 1
    hits: int = 0
    stale_hits: int = 0


@dataclass
class CacheStats:
    hits: int = 0
    stale_serves: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0

    def to_payload(self) -> Dict[str, int]:
        return {"hits": self.hits, "stale_serves": self.stale_serves,
                "misses": self.misses, "fills": self.fills,
                "evictions": self.evictions}


class ResultCache:
    """LRU result cache keyed by canonical request keys.

    ``lookup`` never removes stale entries; they stay until capacity
    pressure evicts them or a fresh fill overwrites them, because a stale
    answer is the last rung of the degradation ladder.
    """

    def __init__(self, capacity: int = 256,
                 clock=time.monotonic):
        if capacity < 1:
            from repro.errors import ConfigError

            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._locks: Dict[str, asyncio.Lock] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str, epoch: int
               ) -> Tuple[str, Optional[CacheEntry]]:
        """Classify ``key`` against ``epoch``: fresh | stale | miss.

        A fresh hit counts toward ``stats.hits``; stale and miss outcomes
        are *not* counted here — the caller decides whether the stale
        entry is actually served (``record_stale_serve``) or replaced by a
        recompute (``stats.misses`` via ``record_miss``).
        """
        entry = self._entries.get(key)
        if entry is None:
            return "miss", None
        self._entries.move_to_end(key)
        if entry.epoch == epoch:
            entry.hits += 1
            self.stats.hits += 1
            return "fresh", entry
        return "stale", entry

    def record_miss(self) -> None:
        self.stats.misses += 1

    def record_stale_serve(self, entry: CacheEntry) -> None:
        entry.stale_hits += 1
        self.stats.stale_serves += 1

    def store(self, key: str, value: Any, epoch: int) -> CacheEntry:
        previous = self._entries.pop(key, None)
        entry = CacheEntry(value=value, epoch=epoch,
                           created_at=self.clock(),
                           fills=(previous.fills + 1 if previous else 1))
        self._entries[key] = entry
        self.stats.fills += 1
        while len(self._entries) > self.capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._locks.pop(evicted_key, None)
            self.stats.evictions += 1
        return entry

    def invalidate_all(self) -> int:
        """Drop every entry (used on checkpoint-restore mismatch)."""
        dropped = len(self._entries)
        self._entries.clear()
        self._locks.clear()
        return dropped

    def lock_for(self, key: str) -> asyncio.Lock:
        """The single-flight lock serializing fills of ``key``."""
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = asyncio.Lock()
        return lock

    def fills_for(self, key: str) -> int:
        """How many times ``key`` has been (re)filled — 0 if absent."""
        entry = self._entries.get(key)
        return entry.fills if entry is not None else 0

    def to_payload(self) -> Dict[str, Any]:
        return {"entries": len(self._entries),
                "capacity": self.capacity,
                **self.stats.to_payload()}
