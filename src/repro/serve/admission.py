"""Admission control: a bounded concurrency gate with explicit shedding.

Unbounded queueing converts overload into unbounded latency; the daemon
instead holds at most ``max_inflight`` requests in execution and
``max_queue`` waiting. A request arriving past both bounds is *shed*
immediately with :class:`repro.errors.OverloadedError` (HTTP 429) — a
machine-readable "try later", never a hung connection.

The controller is also the drain point for graceful shutdown: lifecycle
waits on :meth:`drained` until the last admitted request leaves.
"""

from __future__ import annotations

import asyncio
from typing import Dict

from repro.errors import ConfigError, OverloadedError


class AdmissionController:
    """An async context manager gating request execution."""

    def __init__(self, max_inflight: int = 4, max_queue: int = 16):
        if max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._idle = asyncio.Event()
        self._idle.set()
        self.inflight = 0
        self.queued = 0
        self.admitted = 0
        self.shed = 0

    async def __aenter__(self) -> "AdmissionController":
        if self.inflight >= self.max_inflight and \
                self.queued >= self.max_queue:
            self.shed += 1
            raise OverloadedError(self.inflight, self.queued,
                                  self.max_inflight, self.max_queue)
        self.queued += 1
        try:
            await self._semaphore.acquire()
        finally:
            self.queued -= 1
        self.inflight += 1
        self.admitted += 1
        self._idle.clear()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.inflight -= 1
        self._semaphore.release()
        if self.inflight == 0 and self.queued == 0:
            self._idle.set()

    async def drained(self, timeout: float = 10.0) -> bool:
        """Wait until nothing is in flight or queued; False on timeout."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def to_payload(self) -> Dict[str, int]:
        return {"inflight": self.inflight, "queued": self.queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "admitted": self.admitted, "shed": self.shed}
