"""Server lifecycle: readiness, graceful drain, and checkpoint-on-exit.

Shutdown (SIGTERM/SIGINT or a programmatic request) is a strict
sequence:

1. Flip to **draining** — ``/readyz`` turns 503 and every new
   state-changing or compute request is refused with
   :class:`~repro.errors.ShuttingDownError` (503). ``/healthz`` keeps
   answering so orchestrators can watch the drain.
2. **Drain** — wait (bounded) for admitted requests to finish via the
   admission controller's idle event.
3. **Checkpoint** — journal the session's state-changing history through
   the PR 1 checksummed checkpoint format, so the next boot replays GVDL
   and mutations on top of the same ``--load`` graphs.
4. **Stop** — close the listening socket and return a drain summary.
"""

from __future__ import annotations

import asyncio
import enum
import time
from typing import Optional

from repro.serve.admission import AdmissionController
from repro.serve.session import ServeSession


class ServerState(enum.Enum):
    STARTING = "starting"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"


class ServerLifecycle:
    """Tracks server state and runs the drain/checkpoint sequence."""

    def __init__(self, session: ServeSession,
                 admission: AdmissionController,
                 checkpoint_path=None,
                 drain_timeout: float = 10.0):
        self.session = session
        self.admission = admission
        self.checkpoint_path = checkpoint_path
        self.drain_timeout = drain_timeout
        self.state = ServerState.STARTING
        self.shutdown_reason: Optional[str] = None
        self._shutdown = asyncio.Event()

    @property
    def ready(self) -> bool:
        return self.state is ServerState.READY

    @property
    def draining(self) -> bool:
        return self.state in (ServerState.DRAINING, ServerState.STOPPED)

    def mark_ready(self) -> None:
        if self.state is ServerState.STARTING:
            self.state = ServerState.READY

    def request_shutdown(self, reason: str = "requested") -> None:
        """Idempotent; safe to call from a signal handler."""
        if self.shutdown_reason is None:
            self.shutdown_reason = reason
        self._shutdown.set()

    async def wait_for_shutdown(self) -> None:
        await self._shutdown.wait()

    async def shutdown(self) -> dict:
        """Drain in-flight work, checkpoint, and report what happened."""
        self.state = ServerState.DRAINING
        started = time.monotonic()
        drained = await self.admission.drained(self.drain_timeout)
        checkpointed = None
        if self.checkpoint_path is not None:
            checkpointed = self.session.checkpoint(self.checkpoint_path)
        # Tear down resident dataflows — with the process backend these
        # hold live worker children that must not outlive the daemon.
        self.session.close()
        self.state = ServerState.STOPPED
        return {
            "reason": self.shutdown_reason or "requested",
            "drained": drained,
            "drain_seconds": round(time.monotonic() - started, 3),
            "checkpoint_records": checkpointed,
            "checkpoint_path": (str(self.checkpoint_path)
                                if self.checkpoint_path is not None
                                else None),
        }


async def run_server(app, host: str = "127.0.0.1", port: int = 0,
                     checkpoint_path=None, drain_timeout: float = 10.0,
                     install_signals: bool = True,
                     log=print) -> dict:
    """Boot the daemon, serve until shutdown, drain, and checkpoint.

    Restores session state from ``checkpoint_path`` when the file exists,
    then keeps journaling to the same path on exit. Prints a parseable
    ``listening on HOST:PORT`` line once the socket is bound (the
    serve-smoke driver and tooling scrape it). Returns the drain summary.
    """
    from repro.serve.httpd import HttpServer

    lifecycle = ServerLifecycle(app.session, app.admission,
                                checkpoint_path=checkpoint_path,
                                drain_timeout=drain_timeout)
    app.lifecycle = lifecycle
    if checkpoint_path is not None:
        state = app.session.restore(checkpoint_path)
        if state is not None and log is not None:
            log(f"restored session checkpoint: {state.completed_views} "
                f"record(s), epoch {app.session.epoch}")
    server = HttpServer(app.handle, host=host, port=port)
    await server.start()
    if install_signals:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lifecycle.request_shutdown,
                    signal.Signals(signum).name)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal support
    lifecycle.mark_ready()
    if log is not None:
        log(f"listening on {server.host}:{server.port}", flush=True)
    await lifecycle.wait_for_shutdown()
    if log is not None:
        log(f"shutting down ({lifecycle.shutdown_reason}): draining...",
            flush=True)
    summary = await lifecycle.shutdown()
    await server.stop()
    if log is not None:
        checkpoint_note = (
            f", checkpointed {summary['checkpoint_records']} record(s) to "
            f"{summary['checkpoint_path']}"
            if summary["checkpoint_records"] is not None else "")
        log(f"shutdown complete: drained={summary['drained']} in "
            f"{summary['drain_seconds']}s{checkpoint_note}", flush=True)
    return summary
