"""End-to-end smoke test for the daemon (``python -m repro.serve.smoke``).

Boots ``repro.cli serve`` as a real subprocess on an ephemeral port,
drives it over HTTP the way an operator's client would, then sends
SIGTERM and verifies the graceful path:

1. ``/healthz`` and ``/readyz`` answer once the ``listening on`` line
   appears.
2. A GVDL ``/query`` creates a view collection; ``/run`` computes WCC
   over it; the identical ``/run`` is answered from cache.
3. ``/mutate`` bumps the epoch; the next ``/run`` recomputes — and,
   because the dataflow stayed resident, does strictly less work than
   the cold run (it absorbs the mutation as a delta).
4. SIGTERM drains, checkpoints the session journal, and exits 0; the
   checkpoint re-loads as a valid ``serve-session`` journal.

Exits 0 on success, 1 with a transcript dump on any failed check. Used
by ``make serve-smoke`` and the CI ``serve-smoke`` job.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

BOOT_TIMEOUT = 30.0
SHUTDOWN_TIMEOUT = 30.0

GVDL = ("create view collection hist on g "
        "[old: year <= 2016], [mid: year <= 2017], [all: year <= 2030];")


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def http(method: str, url: str, body: dict = None) -> tuple:
    """Issue one request; returns (status, decoded JSON or text)."""
    data = (json.dumps(body).encode("utf-8")
            if body is not None else None)
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            raw = response.read()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if "json" in content_type:
        return status, json.loads(raw.decode("utf-8"))
    return status, raw.decode("utf-8")


def write_graph(directory: Path) -> tuple:
    nodes = directory / "nodes.csv"
    edges = directory / "edges.csv"
    nodes.write_text("id,city:str\n" + "\n".join(
        f"{i},{'LA' if i % 2 else 'NY'}" for i in range(8)) + "\n")
    edges.write_text("src,dst,year:int\n" + "\n".join(
        f"{i},{(i + 1) % 8},{2015 + i % 5}" for i in range(8)) + "\n")
    return nodes, edges


def wait_for_listening(lines, deadline: float) -> str:
    """Scrape the daemon's ``listening on HOST:PORT`` line."""
    while time.monotonic() < deadline:
        for line in list(lines):
            if line.startswith("listening on "):
                return "http://" + line.split("listening on ", 1)[1].strip()
        time.sleep(0.05)
    raise SmokeFailure(f"daemon never printed 'listening on' within "
                       f"{BOOT_TIMEOUT}s; output so far: {list(lines)}")


def drive(base: str) -> None:
    """The request sequence; each step asserts the response shape."""
    status, health = http("GET", f"{base}/healthz")
    check(status == 200 and health["status"] == "ok",
          f"/healthz not ok: {status} {health}")
    status, ready = http("GET", f"{base}/readyz")
    check(status == 200 and ready["ready"] is True,
          f"/readyz not ready: {status} {ready}")

    status, created = http("POST", f"{base}/query", {"gvdl": GVDL})
    check(status == 200 and "hist" in created["created"],
          f"/query did not create hist: {status} {created}")

    run_body = {"computation": "wcc", "target": "g"}
    status, cold = http("POST", f"{base}/run", run_body)
    check(status == 200 and cold["cached"] is False,
          f"cold /run wrong: {status} {cold}")
    check(cold["epoch"] == 0 and len(cold["views"]) == 1,
          f"cold /run payload wrong: {cold}")
    check(cold["total_work"] > 0, f"cold /run did no work: {cold}")

    status, warm = http("POST", f"{base}/run", run_body)
    check(status == 200 and warm["cached"] is True
          and warm["stale"] is False,
          f"repeat /run not a fresh cache hit: {status} {warm}")
    check(warm["views"] == cold["views"],
          "cached /run answer differs from the computed one")

    status, mutated = http("POST", f"{base}/mutate", {
        "graph": "g", "add_edges": [[0, 4, {"year": 2016}]]})
    check(status == 200 and mutated["epoch"] == 1
          and mutated["edges_added"] == 1,
          f"/mutate wrong: {status} {mutated}")

    status, fresh = http("POST", f"{base}/run", run_body)
    check(status == 200 and fresh["cached"] is False
          and fresh["epoch"] == 1,
          f"post-mutate /run not recomputed: {status} {fresh}")
    check(0 < fresh["total_work"] < cold["total_work"],
          f"resident dataflow did not absorb the mutation as a delta: "
          f"cold={cold['total_work']} fresh={fresh['total_work']}")

    status, health = http("GET", f"{base}/healthz")
    check(health["cache"]["hits"] >= 1,
          f"cache hit not counted: {health['cache']}")
    check(health["session"]["epoch"] == 1,
          f"session epoch not bumped: {health['session']}")


def validate_checkpoint(path: Path) -> None:
    from repro.core.resilience import load_checkpoint

    state = load_checkpoint(path)
    check(state is not None, f"checkpoint {path} missing or empty")
    check(state.header.get("kind") == "serve-session",
          f"checkpoint kind wrong: {state.header}")
    check(not state.truncated, "checkpoint has a torn tail")
    kinds = [record["kind"] for record in state.views]
    check(kinds == ["gvdl", "mutate"],
          f"journal should hold the GVDL then the mutation, got {kinds}")
    check(state.header.get("epoch") == 1,
          f"checkpointed epoch wrong: {state.header}")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        directory = Path(tmp)
        nodes, edges = write_graph(directory)
        checkpoint = directory / "session.ckpt"
        argv = [sys.executable, "-m", "repro.cli",
                "--load", f"g={nodes},{edges}",
                "serve", "--port", "0",
                "--checkpoint", str(checkpoint),
                "--deadline", "30",
                "--drain-timeout", "10"]
        process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        lines: list = []
        reader = threading.Thread(
            target=lambda: lines.extend(iter(process.stdout.readline, "")),
            daemon=True)
        reader.start()
        try:
            base = wait_for_listening(
                lines, time.monotonic() + BOOT_TIMEOUT)
            drive(base)
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=SHUTDOWN_TIMEOUT)
            reader.join(timeout=5)
            check(process.returncode == 0,
                  f"daemon exited {process.returncode}, expected 0")
            transcript = "".join(lines)
            check("shutdown complete: drained=True" in transcript,
                  f"no clean drain in output:\n{transcript}")
            validate_checkpoint(checkpoint)
        except SmokeFailure as failure:
            if process.poll() is None:
                process.kill()
                process.wait()
            print("serve-smoke FAILED:", failure, file=sys.stderr)
            print("--- daemon output ---", file=sys.stderr)
            print("".join(lines), file=sys.stderr)
            return 1
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
    print("serve-smoke OK: boot, cache hit, mutate, delta recompute, "
          "drained shutdown, valid checkpoint")
    return 0


if __name__ == "__main__":
    sys.exit(main())
