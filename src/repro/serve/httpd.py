"""A minimal asyncio HTTP/1.1 layer for the analytics daemon.

The serving layer deliberately depends on nothing outside the standard
library: requests are parsed off :mod:`asyncio` streams directly (request
line, headers, ``Content-Length``-framed body) and responses are written
as ``Connection: close`` JSON documents. This is not a general web
server — it supports exactly what :mod:`repro.serve.app` routes — but it
is enough for production-shaped clients (``curl``, ``urllib``,
``http.client``) and keeps the daemon importable everywhere the library
is.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.errors import RequestError

#: Refuse unreasonable inputs instead of buffering them.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINES = 100
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON; ``{}`` for an empty body."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise RequestError(f"request body is not valid JSON: {error}")


@dataclass
class Response:
    """One JSON (or plain-text) HTTP response."""

    status: int = 200
    payload: Optional[Any] = None
    text: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        if self.text is not None:
            body = self.text.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            body = json.dumps(self.payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        lines.extend(f"{name}: {value}"
                     for name, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + body


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a closed connection.

    Raises :class:`RequestError` on malformed framing — the caller answers
    with a 400 and closes.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise RequestError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise RequestError(f"malformed request line {line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise RequestError(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise RequestError("too many header lines")
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise RequestError(f"bad Content-Length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise RequestError(f"unacceptable Content-Length {length}")
    if length:
        body = await reader.readexactly(length)
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


Handler = Callable[[Request], Awaitable[Response]]


class HttpServer:
    """Serves ``handler`` over asyncio streams, one request per connection."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float = 30.0):
        self.handler = handler
        self.host = host
        self.port = port
        #: A client that stalls mid-request (e.g. a short body under a
        #: larger Content-Length) gets a 408 instead of a hung read.
        self.request_timeout = request_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(read_request(reader),
                                                 self.request_timeout)
            except (RequestError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as error:
                if isinstance(error, asyncio.TimeoutError):
                    status, message = 408, "timed out reading the request"
                elif isinstance(error, RequestError):
                    status, message = 400, str(error)
                else:
                    status, message = 400, "truncated request body"
                response = Response(status=status, payload={
                    "error": "bad-request", "message": message,
                    "context": {}})
                writer.write(response.encode())
                await writer.drain()
                return
            if request is None:
                return
            response = await self.handler(request)
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
