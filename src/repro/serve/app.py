"""Request handling: routing, the hardening ladder, and error mapping.

Every ``/run`` request walks the same ladder, in order:

1. **Drain gate** — a draining server refuses new work (503).
2. **Admission** — bounded concurrency + bounded queue; past both, the
   request is shed with 429 (:mod:`repro.serve.admission`).
3. **Cache** — a fresh-epoch hit answers immediately; concurrent
   identical requests coalesce on a single-flight lock
   (:mod:`repro.serve.cache`).
4. **Breaker** — an open per-algorithm circuit fails fast with 503, or
   serves a stale cached result when one exists
   (:mod:`repro.serve.breakers`).
5. **Compute** — the resident session runs the request under a
   per-request :class:`~repro.core.resilience.RunBudget` deadline;
   failures retry per the :class:`~repro.core.resilience.RetryPolicy`.
6. **Degrade** — a recompute that still fails serves the stale cached
   result marked ``"stale": true``; only with no stale entry does the
   client see the error, always as a machine-readable payload
   (:meth:`repro.errors.GraphsurgeError.to_payload`) with the error
   class's ``http_status``.

Computation is serialized on one session-wide lock and executed in a
worker thread: resident dataflow state is shared mutable state, and the
byte-identical-to-sequential guarantee the concurrency tests pin down
requires one writer at a time. The event loop stays free to answer
``/healthz`` and shed load meanwhile.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import List, Optional, Tuple

from repro.core.resilience import RetryPolicy, RunBudget
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    GraphsurgeError,
    RequestError,
    ShuttingDownError,
)
from repro.observe.tracer import TraceSink
from repro.serve.admission import AdmissionController
from repro.serve.breakers import BreakerBoard
from repro.serve.cache import ResultCache
from repro.serve.httpd import Request, Response
from repro.serve.session import (
    ServeSession,
    build_request_computation,
    computation_signature,
)


def error_response(error: GraphsurgeError) -> Response:
    return Response(status=error.http_status, payload=error.to_payload())


class ServeApp:
    """Routes requests onto one resident :class:`ServeSession`."""

    def __init__(self, session: ServeSession,
                 cache: Optional[ResultCache] = None,
                 admission: Optional[AdmissionController] = None,
                 breakers: Optional[BreakerBoard] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 deadline_seconds: Optional[float] = None,
                 max_work: Optional[int] = None,
                 clock=time.monotonic):
        self.session = session
        self.cache = cache if cache is not None else ResultCache()
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.breakers = breakers if breakers is not None else BreakerBoard()
        self.retry_policy = retry_policy
        self.deadline_seconds = deadline_seconds
        self.max_work = max_work
        self.clock = clock
        self.started_at = clock()
        #: Set by the lifecycle layer; the app only reads its state.
        self.lifecycle = None
        self.requests_served = 0
        self._compute_lock = asyncio.Lock()

    # -- dispatch --------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        routes = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/readyz"): self._readyz,
            ("GET", "/explain"): self._explain,
            ("POST", "/query"): self._query,
            ("POST", "/run"): self._run,
            ("POST", "/mutate"): self._mutate,
            ("POST", "/stream"): self._stream,
        }
        handler = routes.get((request.method, request.path))
        try:
            if handler is None:
                known_paths = {path for _m, path in routes}
                if request.path in known_paths:
                    raise RequestError(
                        f"method {request.method} not allowed for "
                        f"{request.path}")
                raise RequestError(f"unknown route {request.path}")
            response = await handler(request)
            self.requests_served += 1
            return response
        except GraphsurgeError as error:
            self.requests_served += 1
            return error_response(error)
        except Exception as error:  # never leak a hung connection
            self.requests_served += 1
            return Response(status=500, payload={
                "error": "internal-error",
                "message": f"{type(error).__name__}: {error}",
                "context": {}})

    def _draining(self) -> bool:
        return self.lifecycle is not None and self.lifecycle.draining

    # -- health ----------------------------------------------------------------

    async def _healthz(self, request: Request) -> Response:
        state = (self.lifecycle.state.value if self.lifecycle is not None
                 else "ready")
        return Response(payload={
            "status": "draining" if self._draining() else "ok",
            "state": state,
            "uptime_seconds": round(self.clock() - self.started_at, 3),
            "requests_served": self.requests_served,
            "session": self.session.describe(),
            "cache": self.cache.to_payload(),
            "admission": self.admission.to_payload(),
            "breakers": self.breakers.to_payload(),
            "resident_memory": self.session.resident_memory(),
        })

    async def _readyz(self, request: Request) -> Response:
        if self.lifecycle is not None and not self.lifecycle.ready:
            return Response(status=503, payload={
                "ready": False, "state": self.lifecycle.state.value})
        return Response(payload={"ready": True, "state": "ready"})

    # -- GVDL and introspection ------------------------------------------------

    async def _query(self, request: Request) -> Response:
        body = request.json()
        text = body.get("gvdl")
        if not isinstance(text, str) or not text.strip():
            raise RequestError("'gvdl' must be a non-empty string")
        if self._draining():
            raise ShuttingDownError("server is draining; no new work")
        async with self.admission:
            async with self._compute_lock:
                created = await asyncio.get_running_loop().run_in_executor(
                    None, self.session.execute_gvdl, text)
        return Response(payload={"created": created,
                                 "epoch": self.session.epoch})

    async def _explain(self, request: Request) -> Response:
        target = request.query.get("target")
        if not target:
            raise RequestError("'target' query parameter is required")
        text = self.session.gs.explain(target)
        return Response(text=text)

    # -- mutation ---------------------------------------------------------------

    async def _mutate(self, request: Request) -> Response:
        body = request.json()
        graph = body.get("graph")
        if not isinstance(graph, str) or not graph:
            raise RequestError("'graph' must name a loaded base graph")
        add_nodes = self._node_list(body.get("add_nodes", ()))
        add_edges = self._edge_list(body.get("add_edges", ()))
        retract_edges = self._pair_list(body.get("retract_edges", ()))
        if not (add_nodes or add_edges or retract_edges):
            raise RequestError(
                "mutation needs at least one of 'add_nodes', 'add_edges', "
                "'retract_edges'")
        if self._draining():
            raise ShuttingDownError("server is draining; no new work")
        async with self.admission:
            async with self._compute_lock:
                counts = await asyncio.get_running_loop().run_in_executor(
                    None, lambda: self.session.mutate(
                        graph, add_nodes=add_nodes, add_edges=add_edges,
                        retract_edges=retract_edges))
        return Response(payload=counts)

    # -- streaming ---------------------------------------------------------------

    async def _stream(self, request: Request) -> Response:
        """One endpoint, four actions: open / ingest / snapshot / close.

        ``describe`` rides along as a read. Each action funnels through
        the same drain → admission → compute-lock discipline as
        ``/mutate``: stream epochs are state changes, and the single
        compute lock keeps them serialized against analytics requests.
        """
        body = request.json()
        action = body.get("action")
        if action not in ("open", "ingest", "snapshot", "describe",
                         "close"):
            raise RequestError(
                "'action' must be one of 'open', 'ingest', 'snapshot', "
                "'describe', 'close'")
        if action == "open":
            graph = body.get("graph")
            if graph is not None and (not isinstance(graph, str)
                                      or not graph):
                raise RequestError(
                    "'graph' must name a loaded base graph")
            queries = self._query_list(body.get("queries", ()))
            if not queries:
                raise RequestError(
                    "'queries' must list at least one "
                    "[computation, params?] pair")
            call = lambda: self.session.stream_open(graph, queries)
        elif action == "ingest":
            appends = self._triple_list(body.get("appends", ()),
                                        "appends")
            retracts = self._triple_list(body.get("retracts", ()),
                                         "retracts")
            call = lambda: self.session.stream_ingest(appends, retracts)
        elif action == "snapshot":
            query = body.get("query")
            if not isinstance(query, str) or not query:
                raise RequestError(
                    "'query' must be a registered stream signature")
            call = lambda: self.session.stream_snapshot(query)
        elif action == "describe":
            call = self.session.stream_describe
        else:
            call = self.session.stream_close
        if self._draining():
            raise ShuttingDownError("server is draining; no new work")
        async with self.admission:
            async with self._compute_lock:
                payload = await asyncio.get_running_loop().run_in_executor(
                    None, call)
        return Response(payload=payload)

    @staticmethod
    def _query_list(raw) -> List[Tuple[str, dict]]:
        out = []
        for item in raw:
            if isinstance(item, str):
                out.append((item, {}))
                continue
            if (not isinstance(item, (list, tuple))
                    or len(item) not in (1, 2)
                    or not isinstance(item[0], str)):
                raise RequestError(
                    f"'queries' entries must be a computation name or "
                    f"[name, params?], got {item!r}")
            params = item[1] if len(item) == 2 else {}
            if not isinstance(params, dict):
                raise RequestError("query params must be an object")
            out.append((item[0], params))
        return out

    @staticmethod
    def _triple_list(raw, field: str) -> List[Tuple[int, int, int]]:
        out = []
        for item in raw:
            if not isinstance(item, (list, tuple)) or len(item) not in (2, 3):
                raise RequestError(
                    f"'{field}' entries must be [src, dst, weight?], "
                    f"got {item!r}")
            weight = item[2] if len(item) == 3 else 1
            out.append((int(item[0]), int(item[1]), int(weight)))
        return out

    @staticmethod
    def _node_list(raw) -> List[Tuple[int, dict]]:
        out = []
        for item in raw:
            if not isinstance(item, (list, tuple)) or len(item) not in (1, 2):
                raise RequestError(
                    f"'add_nodes' entries must be [id, properties?], "
                    f"got {item!r}")
            props = item[1] if len(item) == 2 else {}
            if not isinstance(props, dict):
                raise RequestError("node properties must be an object")
            out.append((int(item[0]), props))
        return out

    @staticmethod
    def _edge_list(raw) -> List[Tuple[int, int, dict]]:
        out = []
        for item in raw:
            if not isinstance(item, (list, tuple)) or len(item) not in (2, 3):
                raise RequestError(
                    f"'add_edges' entries must be [src, dst, properties?], "
                    f"got {item!r}")
            props = item[2] if len(item) == 3 else {}
            if not isinstance(props, dict):
                raise RequestError("edge properties must be an object")
            out.append((int(item[0]), int(item[1]), props))
        return out

    @staticmethod
    def _pair_list(raw) -> List[Tuple[int, int]]:
        out = []
        for item in raw:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise RequestError(
                    f"'retract_edges' entries must be [src, dst], "
                    f"got {item!r}")
            out.append((int(item[0]), int(item[1])))
        return out

    # -- analytics --------------------------------------------------------------

    async def _run(self, request: Request) -> Response:
        body = request.json()
        name = body.get("computation")
        target = body.get("target")
        if not isinstance(name, str) or not name:
            raise RequestError("'computation' must be a computation name")
        if not isinstance(target, str) or not target:
            raise RequestError(
                "'target' must name a graph, view, or collection")
        params = body.get("params") or {}
        include_output = bool(body.get("include_output", True))
        force_refresh = bool(body.get("force_refresh", False))
        trace = bool(body.get("trace", False))
        computation = build_request_computation(name, params)
        signature = computation_signature(name, params)
        key = json.dumps({"signature": signature, "target": target,
                          "include_output": include_output},
                         sort_keys=True, separators=(",", ":"))
        breaker = self.breakers.get(str(name).lower())
        if self._draining():
            raise ShuttingDownError("server is draining; no new work")
        async with self.admission:
            state, entry = self.cache.lookup(key, self.session.epoch)
            if state == "fresh" and not force_refresh and not trace:
                return self._respond(entry.value, cached=True)
            async with self.cache.lock_for(key):
                # Double-check after waiting: a coalesced peer may have
                # filled the entry while this request queued on the lock.
                state, entry = self.cache.lookup(key, self.session.epoch)
                if state == "fresh" and not force_refresh and not trace:
                    return self._respond(entry.value, cached=True)
                self.cache.record_miss()
                try:
                    breaker.allow()
                except CircuitOpenError as circuit_error:
                    if entry is not None:
                        return self._serve_stale(entry, circuit_error)
                    raise
                budget = self._request_budget(body)
                tracer = (TraceSink(self.session.workers) if trace
                          else None)
                try:
                    value = await self._compute(
                        signature, computation, target,
                        include_output=include_output, budget=budget,
                        tracer=tracer)
                except GraphsurgeError as error:
                    breaker.record_failure()
                    if entry is not None:
                        return self._serve_stale(entry, error)
                    raise
                breaker.record_success()
                self.cache.store(key, value, self.session.epoch)
                return self._respond(value, cached=False)

    def _request_budget(self, body: dict) -> Optional[RunBudget]:
        deadline = body.get("deadline_seconds", self.deadline_seconds)
        max_work = body.get("max_work", self.max_work)
        if deadline is None and max_work is None:
            return None
        return RunBudget(
            max_wall_seconds=float(deadline) if deadline is not None
            else None,
            max_work=int(max_work) if max_work is not None else None)

    async def _compute(self, signature: str, computation, target: str, *,
                       include_output: bool, budget: Optional[RunBudget],
                       tracer: Optional[TraceSink]) -> dict:
        """Run on the session with retries; serialized, off-loop.

        The budget is shared across attempts, so a request deadline bounds
        the *whole* retry ladder, not each attempt. A crossed budget never
        retries (matching the batch executor).
        """
        policy = self.retry_policy
        attempts = 1 + (policy.max_retries if policy is not None else 0)
        loop = asyncio.get_running_loop()
        last_error: Optional[BaseException] = None
        async with self._compute_lock:
            for attempt in range(attempts):
                if attempt and policy is not None:
                    await loop.run_in_executor(
                        None, policy.pause, attempt)
                try:
                    return await loop.run_in_executor(
                        None, lambda: self.session.run(
                            signature, computation, target,
                            include_output=include_output, budget=budget,
                            tracer=tracer))
                except BudgetExceededError:
                    raise
                except GraphsurgeError as error:
                    last_error = error
        assert last_error is not None
        raise last_error

    def _respond(self, value: dict, cached: bool) -> Response:
        payload = dict(value)
        payload["cached"] = cached
        payload["stale"] = False
        return Response(payload=payload)

    def _serve_stale(self, entry, error: GraphsurgeError) -> Response:
        """The last rung: answer from a stale entry, flagged as such."""
        self.cache.record_stale_serve(entry)
        payload = dict(entry.value)
        payload["cached"] = True
        payload["stale"] = True
        payload["served_epoch"] = entry.epoch
        payload["current_epoch"] = self.session.epoch
        payload["degraded"] = error.to_payload()
        return Response(payload=payload)
