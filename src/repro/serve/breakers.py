"""Per-algorithm circuit breakers with a deterministic, injectable clock.

A computation that keeps failing (a poisoned UDF, an input that always
blows the deadline) should stop consuming admission slots: after
``failure_threshold`` consecutive failures the breaker *opens* and the
server fails that algorithm's requests fast (HTTP 503, or a stale cached
answer when one exists). After ``reset_seconds`` the breaker goes
*half-open* and admits exactly one probe: success closes it, failure
re-opens it for another full window. The clock is injectable, so the
trip/half-open/close schedule is testable without sleeping.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict

from repro.errors import CircuitOpenError, ConfigError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker guarding one named computation."""

    def __init__(self, name: str, failure_threshold: int = 3,
                 reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds <= 0:
            raise ConfigError(
                f"reset_seconds must be positive, got {reset_seconds}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    def allow(self) -> None:
        """Gate one attempt; raises :class:`CircuitOpenError` when open.

        An open breaker past its reset window transitions to half-open
        and admits a single probe; concurrent attempts during the probe
        are still rejected.
        """
        if self.state is BreakerState.CLOSED:
            return
        now = self.clock()
        if self.state is BreakerState.OPEN:
            remaining = self._opened_at + self.reset_seconds - now
            if remaining > 0:
                raise CircuitOpenError(self.name,
                                       self.consecutive_failures,
                                       remaining)
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        if self._probe_inflight:
            raise CircuitOpenError(self.name, self.consecutive_failures,
                                   self.reset_seconds)
        self._probe_inflight = True

    def record_success(self) -> None:
        self.total_successes += 1
        self.consecutive_failures = 0
        self.state = BreakerState.CLOSED
        self._probe_inflight = False

    def record_failure(self) -> None:
        self.total_failures += 1
        self.consecutive_failures += 1
        if (self.state is BreakerState.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self.state = BreakerState.OPEN
            self.times_opened += 1
            self._opened_at = self.clock()
        self._probe_inflight = False

    def to_payload(self) -> Dict:
        return {"state": self.state.value,
                "consecutive_failures": self.consecutive_failures,
                "total_failures": self.total_failures,
                "total_successes": self.total_successes,
                "times_opened": self.times_opened}


class BreakerBoard:
    """Lazily created breakers, one per computation name."""

    def __init__(self, failure_threshold: int = 3,
                 reset_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name, failure_threshold=self.failure_threshold,
                reset_seconds=self.reset_seconds, clock=self.clock)
            self._breakers[name] = breaker
        return breaker

    def to_payload(self) -> Dict[str, Dict]:
        return {name: breaker.to_payload()
                for name, breaker in sorted(self._breakers.items())}
