"""The always-on analytics daemon (``python -m repro.cli serve``).

Turns the batch library into a serving system: one process loads graphs
once, keeps differential dataflows (arrangements, traces, EBM-derived
collections) resident in a :class:`ServeSession`, and answers GVDL and
analytics requests over HTTP. Repeated or overlapping requests are
answered from the result cache or from resident arrangements — the
second request pays only its difference, metered.

Request hardening is first-class: per-request deadlines via
:class:`~repro.core.resilience.RunBudget` (503, never a hung
connection), admission control with bounded queueing (429 shedding),
per-algorithm circuit breakers, retry-with-degradation down to
stale-cache serving, and graceful drain with a checkpointed session
journal. See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp
from repro.serve.breakers import BreakerBoard, BreakerState, CircuitBreaker
from repro.serve.cache import CacheEntry, CacheStats, ResultCache
from repro.serve.httpd import HttpServer, Request, Response
from repro.serve.lifecycle import ServerLifecycle, ServerState, run_server
from repro.serve.session import (
    ResidentDataflow,
    ServeSession,
    build_request_computation,
    computation_signature,
    multiset_delta,
)

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "BreakerState",
    "CacheEntry",
    "CacheStats",
    "CircuitBreaker",
    "HttpServer",
    "Request",
    "ResidentDataflow",
    "Response",
    "ResultCache",
    "ServeApp",
    "ServeSession",
    "ServerLifecycle",
    "ServerState",
    "build_request_computation",
    "computation_signature",
    "multiset_delta",
    "run_server",
]
