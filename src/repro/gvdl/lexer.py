"""Hand-written lexer for GVDL.

Identifiers may contain hyphens after the first character (the paper's
examples use names like ``call-analysis`` and ``D1-Y2010``), so ``-`` is
never an operator in GVDL.
"""

from __future__ import annotations

from typing import List

from repro.errors import GvdlSyntaxError
from repro.gvdl.tokens import KEYWORDS, SYMBOLS, Token, TokenType

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789-")
_DIGITS = frozenset("0123456789")


def tokenize(text: str) -> List[Token]:
    """Turn GVDL source text into a token list ending with EOF."""
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == "#":  # line comment
            end = text.find("\n", pos)
            pos = length if end == -1 else end + 1
            continue
        if ch == "'":
            end = text.find("'", pos + 1)
            if end == -1:
                raise GvdlSyntaxError("unterminated string literal", pos, text)
            tokens.append(Token(TokenType.STRING, text[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch in _DIGITS:
            end = pos
            while end < length and text[end] in _DIGITS:
                end += 1
            tokens.append(Token(TokenType.NUMBER, int(text[pos:end]), pos))
            pos = end
            continue
        if ch in _IDENT_START:
            end = pos
            while end < length and text[end] in _IDENT_CONT:
                end += 1
            word = text[pos:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, pos))
            else:
                tokens.append(Token(TokenType.IDENT, word, pos))
            pos = end
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(TokenType.SYMBOL, symbol, pos))
                pos += len(symbol)
                break
        else:
            raise GvdlSyntaxError(f"unexpected character {ch!r}", pos, text)
    tokens.append(Token(TokenType.EOF, None, length))
    return tokens
