"""GVDL — the Graph View Definition Language (paper §3, §6).

A small declarative language for defining filtered views, view collections,
and aggregate views over property graphs::

    create view CA-Long-Calls on Calls
    edges where src.state = 'CA' and dst.state = 'CA'
      and duration > 10 and year = 2019

    create view collection call-analysis on Calls
    [D1-Y2010: duration <= 1 and year <= 2010],
    [D2-Y2010: duration <= 2 and year <= 2010]

    create view City-Calls-City on Calls
    nodes group by city aggregate num-phones: count(*)
    edges aggregate total-duration: sum(duration)

Use :func:`parse` for a single statement or :func:`parse_program` for a
``;``-separated script. Statements are plain AST dataclasses
(:mod:`repro.gvdl.ast`); :mod:`repro.gvdl.predicate` compiles predicates to
fast Python closures.
"""

from repro.gvdl.ast import (
    AggSpec,
    AggregateViewStmt,
    FilteredViewStmt,
    GroupByPredicates,
    GroupByProperties,
    ViewCollectionStmt,
)
from repro.gvdl.parser import parse, parse_program
from repro.gvdl.predicate import compile_predicate, predicate_properties

__all__ = [
    "AggSpec",
    "AggregateViewStmt",
    "FilteredViewStmt",
    "GroupByPredicates",
    "GroupByProperties",
    "ViewCollectionStmt",
    "parse",
    "parse_program",
    "compile_predicate",
    "predicate_properties",
]
