"""Recursive-descent parser for GVDL.

Grammar (informal)::

    program    := statement (';' statement)* ';'?
    statement  := 'create' 'view' 'collection' name 'on' name collection
                | 'create' 'view' name 'on' name body
    collection := '[' name ':' predicate ']' (',' '[' name ':' predicate ']')*
    body       := 'edges' 'where' predicate                     -- filtered view
                | 'nodes' 'group' 'by' groupby aggs?
                  ('edges' 'aggregate' agglist)?                -- aggregate view
    groupby    := ident (',' ident)*                            -- by properties
                | '[' '(' predicate ')' (',' '(' predicate ')')* ']'
    aggs       := 'aggregate' agglist
    agglist    := agg (',' agg)*
    agg        := (name ':')? func '(' ('*' | ident) ')'
    predicate  := or-expr with 'and'/'or'/'not', comparisons, parentheses
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import GvdlSyntaxError
from repro.gvdl.ast import (
    AggregateViewStmt,
    AggSpec,
    And,
    BoolLiteral,
    Comparison,
    FilteredViewStmt,
    GroupByPredicates,
    GroupByProperties,
    Literal,
    Not,
    Or,
    Predicate,
    PropRef,
    Statement,
    ViewCollectionStmt,
)
from repro.gvdl.lexer import tokenize
from repro.gvdl.tokens import Token, TokenType

_COMPARE_OPS = {"=", "!=", "<>", "<=", ">=", "<", ">"}
_AGG_FUNCS = {"count", "sum", "min", "max", "avg"}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> GvdlSyntaxError:
        return GvdlSyntaxError(message, self.peek().position, self.text)

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise self.error(f"expected {word!r}, found {token.value!r}")
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}, found {token.value!r}")
        return self.advance()

    def expect_name(self) -> str:
        token = self.peek()
        if token.type is TokenType.IDENT:
            return str(self.advance().value)
        # Allow keywords to double as names where unambiguous (e.g. a view
        # literally called "edges" would be perverse, but property names
        # like "count" appear in the wild).
        if token.type is TokenType.KEYWORD:
            return str(self.advance().value)
        raise self.error(f"expected a name, found {token.value!r}")

    def accept_symbol(self, symbol: str) -> bool:
        if self.peek().is_symbol(symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    # -- statements ------------------------------------------------------------

    def parse_program(self) -> List[Statement]:
        statements: List[Statement] = []
        while self.peek().type is not TokenType.EOF:
            statements.append(self.parse_statement())
            while self.accept_symbol(";"):
                pass
        return statements

    def parse_statement(self) -> Statement:
        self.expect_keyword("create")
        self.expect_keyword("view")
        if self.accept_keyword("collection"):
            return self._parse_collection()
        name = self.expect_name()
        self.expect_keyword("on")
        source = self.expect_name()
        if self.accept_keyword("edges"):
            self.expect_keyword("where")
            predicate = self.parse_predicate()
            return FilteredViewStmt(name, source, predicate)
        if self.accept_keyword("nodes"):
            return self._parse_aggregate(name, source)
        raise self.error("expected 'edges where ...' or 'nodes group by ...'")

    def _parse_collection(self) -> ViewCollectionStmt:
        name = self.expect_name()
        self.expect_keyword("on")
        source = self.expect_name()
        views: List[Tuple[str, Predicate]] = []
        while True:
            self.expect_symbol("[")
            view_name = self.expect_name()
            self.expect_symbol(":")
            predicate = self.parse_predicate()
            self.expect_symbol("]")
            views.append((view_name, predicate))
            if not self.accept_symbol(","):
                break
        if not views:
            raise self.error("view collection must declare at least one view")
        return ViewCollectionStmt(name, source, tuple(views))

    def _parse_aggregate(self, name: str, source: str) -> AggregateViewStmt:
        self.expect_keyword("group")
        self.expect_keyword("by")
        group_by: Union[GroupByProperties, GroupByPredicates]
        if self.accept_symbol("["):
            predicates: List[Predicate] = []
            while True:
                self.expect_symbol("(")
                predicates.append(self.parse_predicate())
                self.expect_symbol(")")
                if not self.accept_symbol(","):
                    break
            self.expect_symbol("]")
            group_by = GroupByPredicates(tuple(predicates))
        else:
            properties = [self.expect_name()]
            while self.accept_symbol(","):
                properties.append(self.expect_name())
            group_by = GroupByProperties(tuple(properties))
        node_aggs: Tuple[AggSpec, ...] = ()
        edge_aggs: Tuple[AggSpec, ...] = ()
        if self.accept_keyword("aggregate"):
            node_aggs = self._parse_agg_list()
        if self.accept_keyword("edges"):
            self.expect_keyword("aggregate")
            edge_aggs = self._parse_agg_list()
        return AggregateViewStmt(name, source, group_by, node_aggs, edge_aggs)

    def _parse_agg_list(self) -> Tuple[AggSpec, ...]:
        aggs = [self._parse_agg()]
        while self.peek().is_symbol(","):
            # Lookahead: a ',' might start the 'edges aggregate' clause? No —
            # that clause starts with the keyword 'edges', so ',' always
            # continues the list.
            self.advance()
            aggs.append(self._parse_agg())
        return tuple(aggs)

    def _parse_agg(self) -> AggSpec:
        token = self.peek()
        name: Optional[str] = None
        if token.type is TokenType.IDENT:
            # "name: func(...)"
            name = str(self.advance().value)
            self.expect_symbol(":")
            token = self.peek()
        if token.type is not TokenType.KEYWORD or token.value not in _AGG_FUNCS:
            raise self.error(
                f"expected an aggregate function, found {token.value!r}")
        func = str(self.advance().value)
        self.expect_symbol("(")
        if self.accept_symbol("*"):
            arg = "*"
        else:
            arg = self.expect_name()
        self.expect_symbol(")")
        if func != "count" and arg == "*":
            raise self.error(f"{func}(*) is not allowed; name a property")
        return AggSpec(name, func, arg)

    # -- predicates ---------------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self._parse_or()

    def _parse_or(self) -> Predicate:
        operands = [self._parse_and()]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Predicate:
        operands = [self._parse_not()]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_not(self) -> Predicate:
        if self.accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_atom()

    def _parse_atom(self) -> Predicate:
        token = self.peek()
        if token.is_keyword("true"):
            self.advance()
            return BoolLiteral(True)
        if token.is_keyword("false"):
            self.advance()
            return BoolLiteral(False)
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_predicate()
            self.expect_symbol(")")
            return inner
        left = self._parse_operand()
        # `x between a and b` desugars to `x >= a and x <= b`.
        if self.accept_keyword("between"):
            low = self._parse_operand()
            self.expect_keyword("and")
            high = self._parse_operand()
            return And((Comparison(left, ">=", low),
                        Comparison(left, "<=", high)))
        # `x in (a, b, c)` desugars to a disjunction of equalities.
        negated = False
        if self.peek().is_keyword("not"):
            # allow `x not in (...)`
            self.advance()
            self.expect_keyword("in")
            negated = True
        if negated or self.accept_keyword("in"):
            self.expect_symbol("(")
            options = [self._parse_operand()]
            while self.accept_symbol(","):
                options.append(self._parse_operand())
            self.expect_symbol(")")
            disjunction: Predicate
            if len(options) == 1:
                disjunction = Comparison(left, "=", options[0])
            else:
                disjunction = Or(tuple(
                    Comparison(left, "=", option) for option in options))
            return Not(disjunction) if negated else disjunction
        op_token = self.peek()
        if op_token.type is not TokenType.SYMBOL or \
                op_token.value not in _COMPARE_OPS:
            raise self.error(
                f"expected a comparison operator, found {op_token.value!r}")
        op = str(self.advance().value)
        if op == "<>":
            op = "!="
        right = self._parse_operand()
        return Comparison(left, op, right)

    def _parse_operand(self) -> Union[PropRef, Literal]:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            return Literal(self.advance().value)
        if token.type is TokenType.STRING:
            return Literal(self.advance().value)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            name = self.expect_name()
            if name in ("src", "dst") and self.accept_symbol("."):
                prop = self.expect_name()
                return PropRef(name, prop)
            return PropRef("edge", name)
        raise self.error(f"expected a property or literal, found {token.value!r}")


def parse(text: str) -> Statement:
    """Parse exactly one GVDL statement."""
    statements = parse_program(text)
    if len(statements) != 1:
        raise GvdlSyntaxError(
            f"expected exactly one statement, found {len(statements)}")
    return statements[0]


def parse_program(text: str) -> List[Statement]:
    """Parse a ``;``-separated script of GVDL statements."""
    return _Parser(text).parse_program()
