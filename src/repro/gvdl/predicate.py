"""Compile GVDL predicates into Python closures.

The edge-predicate evaluator receives ``(edge_props, src_props, dst_props)``
dicts and returns a bool; the node-predicate evaluator (for aggregate-view
group-by predicates) receives a single ``node_props`` dict. Compilation
validates property references against the graph's schemas so typos surface
at view-definition time, mirroring Graphsurge's upfront query checking.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import GvdlTypeError, UnknownPropertyError
from repro.gvdl.ast import (
    And,
    BoolLiteral,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    PropRef,
)
from repro.graph.schema import Schema

EdgeEvaluator = Callable[[Dict[str, Any], Dict[str, Any], Dict[str, Any]], bool]
NodeEvaluator = Callable[[Dict[str, Any]], bool]

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def predicate_properties(predicate: Predicate) -> Set[Tuple[str, str]]:
    """All ``(target, property)`` references used by a predicate."""
    refs: Set[Tuple[str, str]] = set()
    _walk_refs(predicate, refs)
    return refs


def _walk_refs(predicate: Predicate, refs: Set[Tuple[str, str]]) -> None:
    if isinstance(predicate, Comparison):
        for side in (predicate.left, predicate.right):
            if isinstance(side, PropRef):
                refs.add((side.target, side.name))
    elif isinstance(predicate, Not):
        _walk_refs(predicate.operand, refs)
    elif isinstance(predicate, (And, Or)):
        for operand in predicate.operands:
            _walk_refs(operand, refs)


def validate_refs(predicate: Predicate,
                  edge_schema: Optional[Schema],
                  node_schema: Optional[Schema],
                  node_context: bool = False) -> None:
    """Check every property reference against the declared schemas."""
    for target, name in predicate_properties(predicate):
        if node_context:
            if target != "edge":
                raise GvdlTypeError(
                    f"{target}.{name}: src/dst references are not allowed "
                    f"in node predicates")
            if node_schema is not None and len(node_schema) and \
                    name not in node_schema:
                raise UnknownPropertyError(f"unknown node property {name!r}")
        elif target == "edge":
            if edge_schema is not None and len(edge_schema) and \
                    name not in edge_schema:
                raise UnknownPropertyError(f"unknown edge property {name!r}")
        else:
            if node_schema is not None and len(node_schema) and \
                    name not in node_schema:
                raise UnknownPropertyError(
                    f"unknown node property {target}.{name}")


def compile_predicate(predicate: Predicate,
                      edge_schema: Optional[Schema] = None,
                      node_schema: Optional[Schema] = None) -> EdgeEvaluator:
    """Compile an edge predicate to ``f(edge_props, src_props, dst_props)``."""
    validate_refs(predicate, edge_schema, node_schema, node_context=False)
    return _compile(predicate, node_context=False)


def compile_node_predicate(predicate: Predicate,
                           node_schema: Optional[Schema] = None) -> NodeEvaluator:
    """Compile a node predicate to ``f(node_props)``."""
    validate_refs(predicate, None, node_schema, node_context=True)
    inner = _compile(predicate, node_context=True)

    def evaluate(node_props: Dict[str, Any]) -> bool:
        return inner(node_props, node_props, node_props)

    return evaluate


def _compile(predicate: Predicate, node_context: bool) -> EdgeEvaluator:
    if isinstance(predicate, BoolLiteral):
        value = predicate.value
        return lambda e, s, d: value
    if isinstance(predicate, Not):
        inner = _compile(predicate.operand, node_context)
        return lambda e, s, d: not inner(e, s, d)
    if isinstance(predicate, And):
        parts = [_compile(op, node_context) for op in predicate.operands]
        return lambda e, s, d: all(part(e, s, d) for part in parts)
    if isinstance(predicate, Or):
        parts = [_compile(op, node_context) for op in predicate.operands]
        return lambda e, s, d: any(part(e, s, d) for part in parts)
    if isinstance(predicate, Comparison):
        left = _compile_operand(predicate.left)
        right = _compile_operand(predicate.right)
        op = _OPS[predicate.op]

        def compare(e, s, d):
            lv = left(e, s, d)
            rv = right(e, s, d)
            try:
                return op(lv, rv)
            except TypeError:
                raise GvdlTypeError(
                    f"cannot compare {lv!r} {predicate.op} {rv!r}") from None

        return compare
    raise GvdlTypeError(f"unknown predicate node {predicate!r}")


def _compile_operand(side):
    if isinstance(side, Literal):
        value = side.value
        return lambda e, s, d: value
    if isinstance(side, PropRef):
        name = side.name
        if side.target == "src":
            return lambda e, s, d: _lookup(s, name, "src")
        if side.target == "dst":
            return lambda e, s, d: _lookup(d, name, "dst")
        return lambda e, s, d: _lookup(e, name, "edge")
    raise GvdlTypeError(f"unknown operand {side!r}")


def _lookup(props: Dict[str, Any], name: str, target: str) -> Any:
    try:
        return props[name]
    except KeyError:
        raise UnknownPropertyError(
            f"{target} record has no property {name!r}") from None
