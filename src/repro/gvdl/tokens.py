"""Token definitions for the GVDL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


#: Reserved words, matched case-insensitively.
KEYWORDS = frozenset({
    "create", "view", "collection", "on", "edges", "nodes", "where",
    "group", "by", "aggregate", "and", "or", "not", "true", "false",
    "count", "sum", "min", "max", "avg", "between", "in",
})

#: Multi-character symbols must be listed before their prefixes.
SYMBOLS = ("<=", ">=", "!=", "<>", "<", ">", "=", "(", ")", "[", "]",
           ",", ":", ".", "*", ";")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value == symbol
