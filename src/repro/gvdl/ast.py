"""Abstract syntax for GVDL statements and predicates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union


# -- predicate expressions ------------------------------------------------------


@dataclass(frozen=True)
class PropRef:
    """A property reference: ``src.x``, ``dst.x``, or a bare edge/node prop.

    ``target`` is one of ``"src"``, ``"dst"``, ``"edge"``; in node contexts
    (aggregate-view group predicates) bare names resolve to the node.
    """

    target: str
    name: str

    def __str__(self) -> str:
        return self.name if self.target == "edge" else f"{self.target}.{self.name}"


@dataclass(frozen=True)
class Literal:
    value: Any

    def __str__(self) -> str:
        """Render in GVDL syntax (so rendered predicates re-parse)."""
        if self.value is True:
            return "true"
        if self.value is False:
            return "false"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Comparison:
    left: Union[PropRef, Literal]
    op: str  # '=', '!=', '<', '<=', '>', '>='
    right: Union[PropRef, Literal]

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Not:
    operand: "Predicate"

    def __str__(self) -> str:
        return f"not ({self.operand})"


@dataclass(frozen=True)
class And:
    operands: Tuple["Predicate", ...]

    def __str__(self) -> str:
        return " and ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Or:
    operands: Tuple["Predicate", ...]

    def __str__(self) -> str:
        return " or ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class BoolLiteral:
    """Bare ``true``/``false`` as a predicate."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


Predicate = Union[Comparison, Not, And, Or, BoolLiteral]


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class FilteredViewStmt:
    """``create view <name> on <source> edges where <predicate>``."""

    name: str
    source: str
    predicate: Predicate


@dataclass(frozen=True)
class ViewCollectionStmt:
    """``create view collection <name> on <source> [v1: p1], [v2: p2], ...``."""

    name: str
    source: str
    views: Tuple[Tuple[str, Predicate], ...]  # (view name, predicate)


@dataclass(frozen=True)
class AggSpec:
    """An aggregate: optional output name, function, argument property.

    ``count(*)`` has ``arg == "*"``.
    """

    name: Optional[str]
    func: str  # count | sum | min | max | avg
    arg: str

    def output_name(self) -> str:
        if self.name:
            return self.name
        return f"{self.func}_{'all' if self.arg == '*' else self.arg}"


@dataclass(frozen=True)
class GroupByProperties:
    """Group nodes by the values of one or more node properties."""

    properties: Tuple[str, ...]


@dataclass(frozen=True)
class GroupByPredicates:
    """Group nodes into explicit predicate-defined groups.

    Nodes matching the i-th predicate form super-node i; nodes matching no
    predicate are dropped from the aggregate view.
    """

    predicates: Tuple[Predicate, ...]


GroupBy = Union[GroupByProperties, GroupByPredicates]


@dataclass(frozen=True)
class AggregateViewStmt:
    """``create view <name> on <source> nodes group by ... aggregate ...``."""

    name: str
    source: str
    group_by: GroupBy
    node_aggregates: Tuple[AggSpec, ...] = field(default=())
    edge_aggregates: Tuple[AggSpec, ...] = field(default=())


Statement = Union[FilteredViewStmt, ViewCollectionStmt, AggregateViewStmt]
