"""Command-line entry point for the experiment drivers.

Usage::

    python -m repro.bench table2            # one experiment
    python -m repro.bench fig6 --quick      # smaller/faster configuration
    python -m repro.bench all               # everything, in paper order

Scale all experiments with the ``REPRO_BENCH_SCALE`` environment variable
(e.g. ``REPRO_BENCH_SCALE=2`` doubles graph sizes).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS

ORDER = ["table2", "fig6", "fig7", "table3", "table4", "fig8", "fig9",
         "fig10", "ablation", "baselines"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("experiment", choices=ORDER + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="smaller configuration for a fast smoke run")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="archive results as CSV+Markdown under DIR")
    args = parser.parse_args(argv)
    names = ORDER if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        rows = EXPERIMENTS[name](quick=args.quick)
        print(f"[{name} done in {time.perf_counter() - started:.1f}s]")
        if args.save:
            from repro.bench.reporting import save_report

            save_report(rows, args.save, name)
            print(f"[saved {name}.csv and {name}.md under {args.save}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
