"""§7.5 driver: algorithm-specific (GraphBolt-style) maintenance vs the
engine's black-box differential maintenance, PageRank and SSSP.

Prints the work-unit comparison recorded in EXPERIMENTS.md; the published
relative shape is: specialized PR ≫ differential PR, while differential
SSSP is competitive with (or beats) the specialized maintainer.
"""

from __future__ import annotations

from typing import List

from repro.algorithms import BellmanFord, PageRank
from repro.baselines import IncrementalPageRank, IncrementalSssp
from repro.bench.harness import ExperimentResult, bench_scale
from repro.bench.workloads import orkut_churn_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode


def _edge_changes(collection, index, weighted):
    additions, removals = [], []
    for (_eid, src, dst, weight), mult in collection.diffs[index].items():
        record = (src, dst, weight) if weighted else (src, dst)
        (additions if mult > 0 else removals).append(record)
    return additions, removals


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    collection = orkut_churn_collection(
        num_nodes=int(120 * scale), num_edges=int(600 * scale),
        num_views=8 if quick else 12, additions_per_view=3,
        removals_per_view=3, seed=0, name="stream")
    source = min(s for (_e, s, _d, _w) in collection.diffs[0])
    executor = AnalyticsExecutor()

    pr_maintainer = IncrementalPageRank(iterations=8)
    for index in range(collection.num_views):
        pr_maintainer.apply_diff(
            *_edge_changes(collection, index, weighted=False))
    pr_differential = executor.run_on_collection(
        PageRank(iterations=8), collection, mode=ExecutionMode.DIFF_ONLY,
        cost_metric="work")

    sssp_maintainer = IncrementalSssp(source)
    for index in range(collection.num_views):
        sssp_maintainer.apply_diff(
            *_edge_changes(collection, index, weighted=True))
    sssp_differential = executor.run_on_collection(
        BellmanFord(source=source), collection,
        mode=ExecutionMode.DIFF_ONLY, cost_metric="work")

    print("\n== §7.5: specialized vs differential maintenance "
          "(work units) ==")
    print(f"{'algorithm':>10} {'specialized':>12} {'differential':>13} "
          f"{'diff/spec':>10}")
    rows: List[ExperimentResult] = []
    for name, specialized, differential in (
            ("PR", pr_maintainer.work, pr_differential.total_work),
            ("SSSP", sssp_maintainer.work, sssp_differential.total_work)):
        gap = differential / max(1, specialized)
        print(f"{name:>10} {specialized:>12} {differential:>13} "
              f"{gap:>10.2f}")
        rows.append(ExperimentResult(
            "baselines", "churn-stream", name, "specialized",
            "graphbolt-style", collection.num_views, 0.0, specialized, 0))
        rows.append(ExperimentResult(
            "baselines", "churn-stream", name, "differential", "diff-only",
            collection.num_views, 0.0, differential, 0))
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
