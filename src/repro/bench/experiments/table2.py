"""Table 2 (§5): diff-only vs scratch for Bellman-Ford and PageRank on two
random-churn collections over an Orkut-like graph.

Paper shape to reproduce: on the *similar* collection (tiny churn) both
algorithms prefer diff-only; on the *dissimilar* collection (massive churn)
Bellman-Ford still prefers diff-only but PageRank — the unstable
computation — prefers scratch.
"""

from __future__ import annotations

from typing import List

from repro.algorithms import BellmanFord, PageRank
from repro.bench.harness import (
    ExperimentResult,
    bench_scale,
    print_table,
    run_modes,
    to_rows,
)
from repro.bench.workloads import orkut_churn_collection
from repro.core.executor import ExecutionMode

MODES = (ExecutionMode.DIFF_ONLY, ExecutionMode.SCRATCH)


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    nodes = max(60, int(300 * scale))
    edges = max(240, int(1500 * scale))
    views = 8 if quick else 20
    # The paper's C_1K churns ±500 edges of 10M (0.005%) per view; C_3.5M
    # churns +2M/-1.5M (~35%). Proportional analogues at our scale:
    similar = orkut_churn_collection(
        num_nodes=nodes, num_edges=edges, num_views=views,
        additions_per_view=max(1, edges // 750),
        removals_per_view=max(1, edges // 750),
        seed=0, name="C-small")
    dissimilar = orkut_churn_collection(
        num_nodes=nodes, num_edges=edges, num_views=views,
        additions_per_view=int(edges * 0.20),
        removals_per_view=int(edges * 0.15),
        seed=1, name="C-large")
    rows: List[ExperimentResult] = []
    for collection, label in ((similar, "1K-like"), (dissimilar, "3.5M-like")):
        for factory in (BellmanFord, lambda: PageRank(iterations=8)):
            results = run_modes(factory, collection, modes=MODES)
            rows.extend(to_rows(results, "table2", "orkut-like", label))
    print_table(rows, "Table 2: diff-only vs scratch (similar vs dissimilar "
                      "churn)")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
