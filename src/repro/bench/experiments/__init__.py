"""Experiment drivers, one per table/figure of the paper.

Run from the command line::

    python -m repro.bench table2
    python -m repro.bench fig6 --quick
    python -m repro.bench all

Every driver exposes ``run(quick=False) -> list[ExperimentResult]`` and
prints the same rows/series the paper reports (scaled to the synthetic
datasets — see EXPERIMENTS.md for the paper-vs-measured record).
"""

from repro.bench.experiments import (  # noqa: F401
    ablation,
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table2,
    table3,
    table4,
)

EXPERIMENTS = {
    "table2": table2.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "ablation": ablation.run,
    "baselines": baselines.run,
}

__all__ = ["EXPERIMENTS"]
