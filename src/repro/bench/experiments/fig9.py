"""Figure 9 (§7.4): same grid as Figure 8, on the WTC-like graph."""

from __future__ import annotations

from typing import List

from repro.bench.experiments.fig8 import run_for_graph
from repro.bench.harness import ExperimentResult, bench_scale, print_table
from repro.bench.workloads import default_wtc_graph


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.4 if quick else 0.6)
    graph = default_wtc_graph(scale=scale)
    configs = [(5, 2)] if quick else [(6, 3), (5, 2)]
    rows = run_for_graph(graph, "WTC-like", "fig9", configs,
                         random_orders=1 if quick else 2)
    print_table(rows, "Figure 9: ordering benefits on the WTC-like graph "
                      "(adaptive off = diff-only vs on = adaptive)")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
