"""Table 3 (§7.3): adaptive splitting on three citation-graph collections.

C_sl (sliding decades), C_ex-sh-sl (expand/shrink/slide), C_aut (year x
author-count product). Shape to reproduce: adaptive matches or beats the
better of diff-only/scratch; on C_aut it beats *both* by splitting exactly
where the year window slides.
"""

from __future__ import annotations

from typing import List

from repro.algorithms import Bfs, PageRank, Scc, Wcc
from repro.bench.harness import (
    ExperimentResult,
    bench_scale,
    print_table,
    run_modes,
    to_rows,
)
from repro.bench.workloads import (
    caut_collection,
    cex_sh_sl_collection,
    csl_collection,
    default_pc_graph,
)

ALGORITHMS = (
    ("WCC", Wcc),
    ("BFS", Bfs),
    ("SCC", Scc),
    ("PR", lambda: PageRank(iterations=8)),
)


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    graph = default_pc_graph(scale=scale)
    collections = [
        ("1:C_sl", csl_collection(graph)),
        ("2:C_ex-sh-sl", cex_sh_sl_collection(graph)),
        ("3:C_aut", caut_collection(graph)),
    ]
    algorithms = ALGORITHMS[:2] if quick else ALGORITHMS
    rows: List[ExperimentResult] = []
    for label, collection in collections:
        for name, factory in algorithms:
            # Batch size 1 lets the splitter react to every view; the
            # collections here are small (16-25 views) so the paper's
            # ℓ=10 default would mask the split points.
            results = run_modes(factory, collection, batch_size=1)
            rows.extend(to_rows(results, "table3", "pc-like", label))
    print_table(rows, "Table 3: adaptive splitting on citation collections")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
