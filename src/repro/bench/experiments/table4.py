"""Table 4 (§7.4): #diffs and collection-creation time, optimizer order vs
random orders, on the community-perturbation collections.

Shape to reproduce: the Christofides order generates several-fold (paper:
3-17x) fewer differences than random orders, at a modest collection
creation time overhead (paper: 1.1-1.7x).
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import ExperimentResult, bench_scale
from repro.bench.workloads import (
    default_lj_graph,
    default_wtc_graph,
    perturbation_collection,
)


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    datasets = [("LJ-like", default_lj_graph(scale=scale)),
                ("WTC-like", default_wtc_graph(scale=scale))]
    configs = [(7, 4)] if quick else [(10, 5), (7, 4)]
    rows: List[ExperimentResult] = []
    for ds_name, graph in datasets:
        for top_n, k in configs:
            variants = [("Ord.", "christofides", 0)]
            variants += [(f"R{i}", "random", i) for i in (1, 2, 3)]
            print(f"\n== Table 4: {ds_name} {top_n}C{k} ==")
            print(f"{'order':8} {'#diffs':>12} {'CCT(s)':>10}")
            for label, method, seed in variants:
                collection = perturbation_collection(
                    graph, top_n, k, order_method=method, seed=seed)
                print(f"{label:8} {collection.total_diffs:>12} "
                      f"{collection.creation_seconds:>10.3f}")
                rows.append(ExperimentResult(
                    experiment="table4",
                    dataset=ds_name,
                    algorithm="(materialize)",
                    config=f"{top_n}C{k}:{label}",
                    mode=method,
                    num_views=collection.num_views,
                    wall_seconds=collection.creation_seconds,
                    work=collection.total_diffs,
                    parallel_time=0,
                    extra={"total_diffs": collection.total_diffs},
                ))
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
