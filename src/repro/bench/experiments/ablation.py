"""Ablations of Graphsurge's design choices (DESIGN.md §6).

Not a paper table; prints three studies:

1. splitting batch size ℓ (the paper defaults to 10);
2. PageRank quantization (our stand-in for a convergence tolerance);
3. ordering algorithm quality: Christofides vs greedy vs random vs exact.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.algorithms import PageRank, Wcc
from repro.bench.harness import ExperimentResult, bench_scale
from repro.bench.workloads import caut_collection, orkut_churn_collection
from repro.core.executor import AnalyticsExecutor, ExecutionMode
from repro.core.ordering.optimizer import order_collection
from repro.datasets import citations_like


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    rows: List[ExperimentResult] = []
    executor = AnalyticsExecutor()

    # -- 1. splitting batch size --------------------------------------------
    caut = caut_collection(citations_like(
        num_nodes=int(400 * scale), num_edges=int(1600 * scale), seed=0))
    print("\n== Ablation 1: adaptive batch size ℓ on C_aut (WCC) ==")
    print(f"{'ℓ':>4} {'work':>10} {'splits':>7}")
    for batch in (1, 2, 5, 10):
        result = executor.run_on_collection(
            Wcc(), caut, mode=ExecutionMode.ADAPTIVE, batch_size=batch,
            cost_metric="work")
        print(f"{batch:>4} {result.total_work:>10} "
              f"{len(result.split_points):>7}")
        rows.append(ExperimentResult(
            "ablation", "pc-like", "WCC", f"batch={batch}", "adaptive",
            caut.num_views, result.total_wall_seconds, result.total_work,
            result.total_parallel_time, len(result.split_points)))

    # -- 2. PageRank quantization ---------------------------------------------
    churn = orkut_churn_collection(
        num_nodes=int(120 * scale), num_edges=int(600 * scale),
        num_views=8 if quick else 16, additions_per_view=2,
        removals_per_view=2, seed=3)
    print("\n== Ablation 2: PageRank quantum (differential work) ==")
    print(f"{'quantum':>8} {'work':>12}")
    for quantum in (100, 1_000, 10_000):
        result = executor.run_on_collection(
            PageRank(iterations=6, quantum=quantum), churn,
            mode=ExecutionMode.DIFF_ONLY, cost_metric="work")
        print(f"{quantum:>8} {result.total_work:>12}")
        rows.append(ExperimentResult(
            "ablation", "orkut-like", "PR", f"quantum={quantum}",
            "diff-only", churn.num_views, result.total_wall_seconds,
            result.total_work, result.total_parallel_time))

    # -- 3. ordering quality ------------------------------------------------------
    rng = np.random.default_rng(0)
    matrix = rng.random((int(2000 * scale), 20)) < 0.45
    small = rng.random((300, 7)) < 0.4
    print("\n== Ablation 3: ordering method quality (#diffs) ==")
    print(f"{'method':>14} {'#diffs':>10} {'seconds':>9}")
    for method in ("christofides", "greedy", "random", "identity"):
        result = order_collection(matrix, method=method, seed=1)
        print(f"{method:>14} {result.diff_count:>10} "
              f"{result.elapsed_seconds:>9.3f}")
        rows.append(ExperimentResult(
            "ablation", "synthetic-ebm", "(ordering)", method, "-",
            matrix.shape[1], result.elapsed_seconds, result.diff_count, 0))
    exact = order_collection(small, method="exact")
    christofides_small = order_collection(small, method="christofides")
    ratio = christofides_small.diff_count / max(1, exact.diff_count)
    print(f"small-instance approximation ratio vs exact: {ratio:.3f} "
          f"(guarantee: <= 3)")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
