"""Figure 8 (§7.4): runtime benefit of collection ordering on the LJ-like
graph — WCC, BFS, MPSP under the optimizer's order vs random orders, with
the adaptive splitter off (diff-only) and on.

Shape to reproduce: the optimizer's order beats random orders consistently
(paper: 1.7x-37x); turning adaptive splitting on narrows but does not
erase the gap (except MPSP, where it widens).
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.algorithms import Bfs, Mpsp, Wcc
from repro.bench.harness import (
    ExperimentResult,
    bench_scale,
    print_table,
    run_modes,
    to_rows,
)
from repro.bench.workloads import default_lj_graph, perturbation_collection
from repro.core.executor import ExecutionMode
from repro.graph.property_graph import PropertyGraph

MODES = (ExecutionMode.DIFF_ONLY, ExecutionMode.ADAPTIVE)


def mpsp_pairs(graph: PropertyGraph, count: int = 5, seed: int = 0):
    """The paper's MPSP setup: src = first vertex with an outgoing edge,
    dst random among the others."""
    rng = random.Random(seed)
    sources = sorted({edge.src for edge in graph.edges})
    src = sources[0]
    others = [v for v in sorted(graph.nodes) if v != src]
    return [(src, rng.choice(others)) for _ in range(count)]


def algorithms(graph: PropertyGraph) -> Tuple[Tuple[str, Callable], ...]:
    pairs = mpsp_pairs(graph)
    return (
        ("WCC", Wcc),
        ("BFS", Bfs),
        ("MPSP", lambda: Mpsp(pairs)),
    )


def run_for_graph(graph: PropertyGraph, dataset: str, experiment: str,
                  configs: List[Tuple[int, int]],
                  random_orders: int = 2) -> List[ExperimentResult]:
    rows: List[ExperimentResult] = []
    for top_n, k in configs:
        orderings = [("Ord.", "christofides", 0)]
        orderings += [(f"R{i}", "random", i)
                      for i in range(1, random_orders + 1)]
        for label, method, seed in orderings:
            collection = perturbation_collection(
                graph, top_n, k, order_method=method, seed=seed)
            for name, factory in algorithms(graph):
                results = run_modes(factory, collection, modes=MODES)
                rows.extend(to_rows(
                    results, experiment, dataset,
                    f"{top_n}C{k}:{label}"))
    return rows


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.4 if quick else 0.6)
    graph = default_lj_graph(scale=scale)
    configs = [(5, 2)] if quick else [(6, 3), (5, 2)]
    rows = run_for_graph(graph, "LJ-like", "fig8", configs,
                         random_orders=1 if quick else 2)
    print_table(rows, "Figure 8: ordering benefits on the LJ-like graph "
                      "(adaptive off = diff-only vs on = adaptive)")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
