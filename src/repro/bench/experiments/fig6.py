"""Figure 6 (§7.2): benefits of diff-only on similar collections (C_sim).

A 5-year Stack-Overflow window expanded per view by w ∈ {1mo ... 2y};
smaller w ⇒ more, more-similar views ⇒ growing diff-only advantage for the
stable algorithms (WCC, BFS, SCC), with PageRank the noted exception.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.algorithms import Bfs, PageRank, Scc, Wcc
from repro.bench.harness import (
    ExperimentResult,
    bench_scale,
    print_table,
    run_modes,
    to_rows,
)
from repro.bench.workloads import CSIM_WINDOWS, csim_collection, default_so_graph

ALGORITHMS: Tuple[Tuple[str, Callable], ...] = (
    ("WCC", Wcc),
    ("BFS", Bfs),
    ("SCC", Scc),
    ("PR", lambda: PageRank(iterations=8)),
)


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    graph = default_so_graph(scale=scale)
    windows: Dict[str, int] = CSIM_WINDOWS
    if quick:
        windows = {k: CSIM_WINDOWS[k] for k in ("6mo", "2y")}
    rows: List[ExperimentResult] = []
    for label, seconds in windows.items():
        collection = csim_collection(graph, seconds,
                                     max_views=12 if quick else 48,
                                     name=f"csim-{label}")
        for name, factory in ALGORITHMS:
            results = run_modes(factory, collection)
            rows.extend(to_rows(
                results, "fig6", "so-like",
                f"w={label},k={collection.num_views}"))
    print_table(rows, "Figure 6: runtime on expanding-window collections "
                      "(C_sim)")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
