"""Figure 7 (§7.2): benefits of scratch on non-overlapping collections
(C_no).

Fully disjoint sliding windows: scratch should win by a bounded factor
(≤ ~2.5x in the paper) that does *not* grow with the number of views —
the robustness property of differential computation discussed in §5.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.experiments.fig6 import ALGORITHMS
from repro.bench.harness import (
    ExperimentResult,
    bench_scale,
    print_table,
    run_modes,
    to_rows,
)
from repro.bench.workloads import CNO_WINDOWS, cno_collection, default_so_graph


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    graph = default_so_graph(scale=scale)
    windows: Dict[str, int] = CNO_WINDOWS
    if quick:
        windows = {k: CNO_WINDOWS[k] for k in ("1y", "4y")}
    rows: List[ExperimentResult] = []
    for label, seconds in windows.items():
        collection = cno_collection(graph, seconds,
                                    max_views=12 if quick else 48,
                                    name=f"cno-{label}")
        for name, factory in ALGORITHMS:
            results = run_modes(factory, collection)
            rows.extend(to_rows(
                results, "fig7", "so-like",
                f"w={label},k={collection.num_views}"))
    print_table(rows, "Figure 7: runtime on non-overlapping collections "
                      "(C_no)")
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
