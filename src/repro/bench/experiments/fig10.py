"""Figure 10 (§7.6): distributed scalability, 1 → 12 simulated machines.

BFS and WCC on the 9-view locality x affinity collection over the
TW-like graph. The reported metric is *simulated parallel time*: the sum
over operator supersteps of the maximum per-worker work under hash
partitioning — the cost model of a timely cluster (see DESIGN.md §2.3).
Shape to reproduce: near-linear scaling.
"""

from __future__ import annotations

from typing import List

from repro.algorithms import Bfs, Wcc
from repro.bench.harness import ExperimentResult, bench_scale, run_modes
from repro.bench.workloads import scalability_collection
from repro.core.executor import ExecutionMode

MACHINES = (1, 2, 4, 8, 12)


def run(quick: bool = False) -> List[ExperimentResult]:
    scale = bench_scale(0.5 if quick else 1.0)
    graph, collection = scalability_collection(
        num_nodes=int(400 * scale), num_edges=int(2400 * scale))
    machines = (1, 4, 12) if quick else MACHINES
    # The paper fixes the BFS source to the first vertex with an outgoing
    # edge; resolving it upfront keeps the dataflow free of the serial
    # global-min operator.
    source = min(edge.src for edge in graph.edges)
    rows: List[ExperimentResult] = []
    print("\n== Figure 10: simulated parallel time vs machines ==")
    print(f"{'machines':>8} {'BFS':>12} {'WCC':>12}")
    for workers in machines:
        line = [f"{workers:>8}"]
        for name, factory in (("BFS", lambda: Bfs(source=source)),
                              ("WCC", Wcc)):
            results = run_modes(factory, collection,
                                modes=(ExecutionMode.DIFF_ONLY,),
                                workers=workers)
            result = results[ExecutionMode.DIFF_ONLY]
            line.append(f"{result.total_parallel_time:>12}")
            rows.append(ExperimentResult(
                experiment="fig10",
                dataset="tw-like",
                algorithm=name,
                config=f"machines={workers}",
                mode="diff-only",
                num_views=collection.num_views,
                wall_seconds=result.total_wall_seconds,
                work=result.total_work,
                parallel_time=result.total_parallel_time,
            ))
        print(" ".join(line))
    return rows


if __name__ == "__main__":  # pragma: no cover
    run()
