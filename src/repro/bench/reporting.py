"""Render experiment results to Markdown, CSV, ASCII charts, and JSON.

Used by ``python -m repro.bench <exp> --save DIR`` to archive runs, and
handy for comparing against the records in EXPERIMENTS.md. The JSON
helpers back the hot-path benchmark-regression gate
(``benchmarks/bench_hotpath.py`` against the committed
``BENCH_engine.json`` baseline).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.bench.harness import ExperimentResult

PathLike = Union[str, Path]

_FIELDS = ["experiment", "dataset", "algorithm", "config", "mode",
           "num_views", "wall_seconds", "work", "parallel_time", "splits"]


def to_csv(rows: Iterable[ExperimentResult], path: PathLike) -> None:
    """Write rows as CSV."""
    rows = list(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for row in rows:
            writer.writerow([getattr(row, field) for field in _FIELDS])


def to_markdown(rows: Iterable[ExperimentResult],
                title: str = "") -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(_FIELDS) + " |")
    lines.append("|" + "|".join("---" for _ in _FIELDS) + "|")
    for row in rows:
        cells = []
        for field in _FIELDS:
            value = getattr(row, field)
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ascii_chart(series: Sequence[Tuple[str, float]], width: int = 50,
                title: str = "") -> str:
    """Horizontal ASCII bar chart (for figure-style results).

    ``series`` is (label, value) pairs; bars are scaled to ``width``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(value for _label, value in series)
    label_width = max(len(label) for label, _value in series)
    for label, value in series:
        bar = "#" * (int(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.rjust(label_width)} | "
                     f"{bar} {value:g}")
    return "\n".join(lines)


def save_report(rows: Iterable[ExperimentResult], directory: PathLike,
                name: str) -> None:
    """Write both CSV and Markdown for an experiment's rows."""
    rows = list(rows)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    to_csv(rows, directory / f"{name}.csv")
    (directory / f"{name}.md").write_text(
        to_markdown(rows, title=name) + "\n")


# -- per-view profile summaries (traced runs) ---------------------------------

_PROFILE_FIELDS = ["view", "strategy", "work", "parallel_time",
                   "critical_path", "supersteps", "top_contributor"]


def profile_rows(result) -> List[Dict[str, object]]:
    """Per-view profile summary rows for a traced collection run.

    ``result`` is a ``CollectionRunResult`` produced with tracing enabled
    (``AnalyticsExecutor(tracer=...)`` / ``Graphsurge.profile``); views
    without a profile (e.g. restored from a checkpoint) are skipped.
    """
    rows: List[Dict[str, object]] = []
    for view in result.views:
        profile = getattr(view, "profile", None)
        if profile is None:
            continue
        path = profile.critical_path
        top = path.contributors[0] if path.contributors else None
        rows.append({
            "view": view.view_name,
            "strategy": view.strategy.value,
            "work": view.work,
            "parallel_time": view.parallel_time,
            "critical_path": path.length,
            "supersteps": path.supersteps,
            "top_contributor": (
                f"{top.operator}@{top.epoch} ({top.units})" if top else ""),
        })
    return rows


def profiles_to_markdown(result, title: str = "") -> str:
    """Render a traced run's per-view critical paths as a Markdown table."""
    rows = profile_rows(result)
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(_PROFILE_FIELDS) + " |")
    lines.append("|" + "|".join("---" for _ in _PROFILE_FIELDS) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(row[field])
                                       for field in _PROFILE_FIELDS) + " |")
    return "\n".join(lines)


# -- benchmark-baseline JSON (the hot-path regression gate) -------------------

#: Schema version of the benchmark-baseline files. Bump when the payload
#: layout changes incompatibly; the gate refuses to compare across versions.
BENCH_SCHEMA = 1


def bench_to_json(payload: Dict[str, object], path: PathLike) -> None:
    """Write a benchmark payload (see :func:`compare_benchmarks`) as JSON.

    The payload is produced by ``benchmarks/bench_hotpath.py`` and looks
    like::

        {"suite": "hotpath", "schema": 1, "calibration_seconds": 0.12,
         "backend": "inline", "workers": 1,
         "scenarios": {"join_heavy": {"wall_seconds": ..., "score": ...,
                                      "work": ..., "parallel_time": ...}}}

    ``backend``/``workers`` record the execution configuration of the
    run; the regression gate compares only per-scenario ``score`` and
    ``work``, so baselines written before those fields existed still
    load and compare.

    The write is atomic (temp file + ``os.replace``), so a crash or an
    interrupted ``--update-baseline`` run never leaves a torn baseline
    behind for the gate to choke on.
    """
    from repro.core.persistence import atomic_write_text

    atomic_write_text(
        Path(path), json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench_json(path: PathLike) -> Dict[str, object]:
    """Load a benchmark baseline written by :func:`bench_to_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"benchmark baseline {path} has schema {schema!r}; "
            f"this build reads schema {BENCH_SCHEMA}")
    return payload


def compare_benchmarks(current: Dict[str, object],
                       baseline: Dict[str, object],
                       tolerance: float = 0.25) -> List[str]:
    """Compare a benchmark run against a baseline; return regressions.

    Wall clock is compared through the calibration-normalized ``score``
    (scenario seconds divided by the run's pure-Python calibration loop
    seconds), which absorbs machine-speed differences between the laptop
    that committed the baseline and the CI runner. The deterministic cost
    counters (``work``, ``parallel_time``) are compared directly.

    A scenario regresses when its score or work exceeds the baseline by
    more than ``tolerance`` (fractional, e.g. ``0.25`` = 25%). Missing
    scenarios are regressions too — a gate that silently stops measuring
    is not a gate — and so are scenarios present in the current run but
    absent from the baseline: an unbaselined scenario is unguarded until
    someone reruns ``--update-baseline``, and the gate must say so rather
    than silently pass it. A zero or near-zero baseline value (below
    ``1e-9``) cannot anchor a meaningful ratio, so it is reported as a
    problem instead of being skipped or dividing to ``inf``. Returns
    human-readable problem messages (empty = pass).
    """
    problems: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name, base in sorted(base_scenarios.items()):
        cur = cur_scenarios.get(name)
        if cur is None:
            problems.append(f"{name}: scenario missing from current run")
            continue
        for metric in ("score", "work"):
            base_value = base.get(metric)
            cur_value = cur.get(metric)
            if base_value is None or cur_value is None:
                continue
            if not base_value > 1e-9:
                problems.append(
                    f"{name}: baseline {metric} is {base_value!r}; a zero "
                    f"or near-zero baseline cannot gate regressions — "
                    f"re-record it with --update-baseline")
                continue
            ratio = cur_value / base_value
            if ratio > 1.0 + tolerance:
                problems.append(
                    f"{name}: {metric} regressed {ratio:.2f}x "
                    f"({base_value:g} -> {cur_value:g}, "
                    f"tolerance {tolerance:.0%})")
    for name in sorted(set(cur_scenarios) - set(base_scenarios)):
        problems.append(
            f"{name}: scenario has no baseline entry — run "
            f"--update-baseline to start gating it")
    return problems


# -- backend comparison (the parallel-smoke gate) -----------------------------


def compare_backend_payloads(inline_payload: Dict[str, object],
                             process_payload: Dict[str, object]
                             ) -> List[str]:
    """Check two same-workload runs for backend observational equality.

    The process backend's contract (``docs/parallel.md``) is that moving
    worker shards onto real OS processes changes wall clock only: the
    metered ``work`` and ``parallel_time`` counters and the canonical
    output digest of every scenario must be byte-identical to the inline
    run. Returns human-readable violations (empty = equal).
    """
    problems: List[str] = []
    inline_scenarios = inline_payload.get("scenarios", {})
    process_scenarios = process_payload.get("scenarios", {})
    for name in sorted(set(inline_scenarios) | set(process_scenarios)):
        inline_row = inline_scenarios.get(name)
        process_row = process_scenarios.get(name)
        if inline_row is None or process_row is None:
            missing = "inline" if inline_row is None else "process"
            problems.append(f"{name}: missing from the {missing} run")
            continue
        for metric in ("work", "parallel_time", "output_digest"):
            inline_value = inline_row.get(metric)
            process_value = process_row.get(metric)
            if inline_value != process_value:
                problems.append(
                    f"{name}: {metric} diverged between backends "
                    f"(inline {inline_value!r} != process "
                    f"{process_value!r})")
    return problems


def backend_speedup_rows(inline_payload: Dict[str, object],
                         process_payload: Dict[str, object]
                         ) -> List[Dict[str, object]]:
    """Per-scenario wall-clock speedup rows: inline wall / process wall."""
    rows: List[Dict[str, object]] = []
    inline_scenarios = inline_payload.get("scenarios", {})
    process_scenarios = process_payload.get("scenarios", {})
    for name, inline_row in inline_scenarios.items():
        process_row = process_scenarios.get(name)
        if process_row is None:
            continue
        inline_wall = float(inline_row.get("wall_seconds", 0.0))
        process_wall = float(process_row.get("wall_seconds", 0.0))
        speedup = (inline_wall / process_wall
                   if process_wall > 1e-9 else float("inf"))
        rows.append({
            "scenario": name,
            "inline_wall": inline_wall,
            "process_wall": process_wall,
            "speedup": round(speedup, 2),
        })
    return rows


def render_backend_comparison(rows: Sequence[Dict[str, object]]) -> str:
    """ASCII table of the backend comparison, with a speedup column."""
    lines = [f"{'scenario':<24} {'inline(s)':>10} {'process(s)':>11} "
             f"{'speedup':>8}"]
    for row in rows:
        lines.append(
            f"{row['scenario']:<24} {row['inline_wall']:>10.3f} "
            f"{row['process_wall']:>11.3f} {row['speedup']:>7.2f}x")
    return "\n".join(lines)
