"""Render experiment results to Markdown, CSV, ASCII charts, and JSON.

Used by ``python -m repro.bench <exp> --save DIR`` to archive runs, and
handy for comparing against the records in EXPERIMENTS.md. The JSON
helpers back the hot-path benchmark-regression gate
(``benchmarks/bench_hotpath.py`` against the committed
``BENCH_engine.json`` baseline).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.bench.harness import ExperimentResult

PathLike = Union[str, Path]

_FIELDS = ["experiment", "dataset", "algorithm", "config", "mode",
           "num_views", "wall_seconds", "work", "parallel_time", "splits"]


def to_csv(rows: Iterable[ExperimentResult], path: PathLike) -> None:
    """Write rows as CSV."""
    rows = list(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for row in rows:
            writer.writerow([getattr(row, field) for field in _FIELDS])


def to_markdown(rows: Iterable[ExperimentResult],
                title: str = "") -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(_FIELDS) + " |")
    lines.append("|" + "|".join("---" for _ in _FIELDS) + "|")
    for row in rows:
        cells = []
        for field in _FIELDS:
            value = getattr(row, field)
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ascii_chart(series: Sequence[Tuple[str, float]], width: int = 50,
                title: str = "") -> str:
    """Horizontal ASCII bar chart (for figure-style results).

    ``series`` is (label, value) pairs; bars are scaled to ``width``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(value for _label, value in series)
    label_width = max(len(label) for label, _value in series)
    for label, value in series:
        bar = "#" * (int(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.rjust(label_width)} | "
                     f"{bar} {value:g}")
    return "\n".join(lines)


def save_report(rows: Iterable[ExperimentResult], directory: PathLike,
                name: str) -> None:
    """Write both CSV and Markdown for an experiment's rows."""
    rows = list(rows)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    to_csv(rows, directory / f"{name}.csv")
    (directory / f"{name}.md").write_text(
        to_markdown(rows, title=name) + "\n")


# -- benchmark-baseline JSON (the hot-path regression gate) -------------------

#: Schema version of the benchmark-baseline files. Bump when the payload
#: layout changes incompatibly; the gate refuses to compare across versions.
BENCH_SCHEMA = 1


def bench_to_json(payload: Dict[str, object], path: PathLike) -> None:
    """Write a benchmark payload (see :func:`compare_benchmarks`) as JSON.

    The payload is produced by ``benchmarks/bench_hotpath.py`` and looks
    like::

        {"suite": "hotpath", "schema": 1, "calibration_seconds": 0.12,
         "scenarios": {"join_heavy": {"wall_seconds": ..., "score": ...,
                                      "work": ..., "parallel_time": ...}}}
    """
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench_json(path: PathLike) -> Dict[str, object]:
    """Load a benchmark baseline written by :func:`bench_to_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"benchmark baseline {path} has schema {schema!r}; "
            f"this build reads schema {BENCH_SCHEMA}")
    return payload


def compare_benchmarks(current: Dict[str, object],
                       baseline: Dict[str, object],
                       tolerance: float = 0.25) -> List[str]:
    """Compare a benchmark run against a baseline; return regressions.

    Wall clock is compared through the calibration-normalized ``score``
    (scenario seconds divided by the run's pure-Python calibration loop
    seconds), which absorbs machine-speed differences between the laptop
    that committed the baseline and the CI runner. The deterministic cost
    counters (``work``, ``parallel_time``) are compared directly.

    A scenario regresses when its score or work exceeds the baseline by
    more than ``tolerance`` (fractional, e.g. ``0.25`` = 25%). Missing
    scenarios are regressions too — a gate that silently stops measuring
    is not a gate. Returns human-readable regression messages (empty =
    pass).
    """
    problems: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    for name, base in sorted(base_scenarios.items()):
        cur = cur_scenarios.get(name)
        if cur is None:
            problems.append(f"{name}: scenario missing from current run")
            continue
        for metric in ("score", "work"):
            base_value = base.get(metric)
            cur_value = cur.get(metric)
            if not base_value:
                continue
            ratio = cur_value / base_value
            if ratio > 1.0 + tolerance:
                problems.append(
                    f"{name}: {metric} regressed {ratio:.2f}x "
                    f"({base_value:g} -> {cur_value:g}, "
                    f"tolerance {tolerance:.0%})")
    return problems
