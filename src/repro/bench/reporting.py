"""Render experiment results to Markdown, CSV, and ASCII charts.

Used by ``python -m repro.bench <exp> --save DIR`` to archive runs, and
handy for comparing against the records in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.bench.harness import ExperimentResult

PathLike = Union[str, Path]

_FIELDS = ["experiment", "dataset", "algorithm", "config", "mode",
           "num_views", "wall_seconds", "work", "parallel_time", "splits"]


def to_csv(rows: Iterable[ExperimentResult], path: PathLike) -> None:
    """Write rows as CSV."""
    rows = list(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for row in rows:
            writer.writerow([getattr(row, field) for field in _FIELDS])


def to_markdown(rows: Iterable[ExperimentResult],
                title: str = "") -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(_FIELDS) + " |")
    lines.append("|" + "|".join("---" for _ in _FIELDS) + "|")
    for row in rows:
        cells = []
        for field in _FIELDS:
            value = getattr(row, field)
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ascii_chart(series: Sequence[Tuple[str, float]], width: int = 50,
                title: str = "") -> str:
    """Horizontal ASCII bar chart (for figure-style results).

    ``series`` is (label, value) pairs; bars are scaled to ``width``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(value for _label, value in series)
    label_width = max(len(label) for label, _value in series)
    for label, value in series:
        bar = "#" * (int(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.rjust(label_width)} | "
                     f"{bar} {value:g}")
    return "\n".join(lines)


def save_report(rows: Iterable[ExperimentResult], directory: PathLike,
                name: str) -> None:
    """Write both CSV and Markdown for an experiment's rows."""
    rows = list(rows)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    to_csv(rows, directory / f"{name}.csv")
    (directory / f"{name}.md").write_text(
        to_markdown(rows, title=name) + "\n")
