"""Grid runner and paper-style table printing for the experiments."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.computation import GraphComputation
from repro.core.executor import (
    AnalyticsExecutor,
    CollectionRunResult,
    ExecutionMode,
)
from repro.core.view_collection import MaterializedCollection

ALL_MODES = (ExecutionMode.DIFF_ONLY, ExecutionMode.SCRATCH,
             ExecutionMode.ADAPTIVE)


def bench_scale(default: float = 1.0) -> float:
    """Experiment size multiplier, settable via ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass
class ExperimentResult:
    """One (collection, computation, mode) measurement."""

    experiment: str
    dataset: str
    algorithm: str
    config: str
    mode: str
    num_views: int
    wall_seconds: float
    work: int
    parallel_time: int
    splits: int = 0
    extra: Dict[str, object] = field(default_factory=dict)


def run_modes(computation_factory: Callable[[], GraphComputation],
              collection: MaterializedCollection,
              modes: Sequence[ExecutionMode] = ALL_MODES,
              workers: int = 1, batch_size: int = 10,
              cost_metric: str = "work", trace: bool = False
              ) -> Dict[ExecutionMode, CollectionRunResult]:
    """Run one computation over one collection under several modes.

    A fresh computation instance per mode keeps runs independent. With
    ``trace=True``, each mode runs under its own
    :class:`repro.observe.TraceSink`, so every result carries per-view
    critical-path profiles (``result.profile``) — the work/parallel-time
    counters are unchanged by tracing.
    """
    results: Dict[ExecutionMode, CollectionRunResult] = {}
    for mode in modes:
        if trace:
            from repro.observe import TraceSink

            executor = AnalyticsExecutor(workers=workers,
                                         tracer=TraceSink(workers))
        else:
            executor = AnalyticsExecutor(workers=workers)
        computation = computation_factory()
        results[mode] = executor.run_on_collection(
            computation, collection, mode=mode, batch_size=batch_size,
            cost_metric=cost_metric)
    return results


def to_rows(results: Dict[ExecutionMode, CollectionRunResult],
            experiment: str, dataset: str, config: str
            ) -> List[ExperimentResult]:
    rows = []
    for mode, result in results.items():
        extra: Dict[str, object] = {}
        profile = getattr(result, "profile", None)
        if profile is not None and (slowest := profile.slowest()) is not None:
            extra["slowest_view"] = slowest.view_name
            extra["slowest_critical_path"] = slowest.critical_path.length
        rows.append(ExperimentResult(
            experiment=experiment,
            dataset=dataset,
            algorithm=result.computation,
            config=config,
            mode=mode.value,
            num_views=len(result.views),
            wall_seconds=result.total_wall_seconds,
            work=result.total_work,
            parallel_time=result.total_parallel_time,
            splits=len(result.split_points),
            extra=extra,
        ))
    return rows


def print_table(rows: Iterable[ExperimentResult],
                title: Optional[str] = None) -> None:
    """Print rows as a fixed-width table, paper style."""
    rows = list(rows)
    if title:
        print(f"\n== {title} ==")
    if not rows:
        print("(no rows)")
        return
    headers = ["dataset", "algorithm", "config", "mode", "views",
               "wall(s)", "work", "par.time", "splits"]
    table = [[r.dataset, r.algorithm, r.config, r.mode, str(r.num_views),
              f"{r.wall_seconds:.2f}", str(r.work), str(r.parallel_time),
              str(r.splits)] for r in rows]
    widths = [max(len(h), *(len(line[i]) for line in table))
              for i, h in enumerate(headers)]
    def render(line):
        return "  ".join(cell.ljust(w) for cell, w in zip(line, widths))
    print(render(headers))
    print(render(["-" * w for w in widths]))
    for line in table:
        print(render(line))


def speedup_summary(results: Dict[ExecutionMode, CollectionRunResult],
                    metric: str = "work") -> Dict[str, float]:
    """Pairwise factors between modes (e.g. scratch/diff) on a metric."""
    def value(mode: ExecutionMode) -> float:
        result = results.get(mode)
        if result is None:
            return float("nan")
        if metric == "work":
            return float(max(1, result.total_work))
        if metric == "wall":
            return max(1e-9, result.total_wall_seconds)
        return float(max(1, result.total_parallel_time))

    out: Dict[str, float] = {}
    if ExecutionMode.DIFF_ONLY in results and ExecutionMode.SCRATCH in results:
        out["scratch/diff"] = value(ExecutionMode.SCRATCH) / \
            value(ExecutionMode.DIFF_ONLY)
    if ExecutionMode.ADAPTIVE in results:
        best = min(value(m) for m in results if m is not ExecutionMode.ADAPTIVE) \
            if len(results) > 1 else float("nan")
        out["best/adaptive"] = best / value(ExecutionMode.ADAPTIVE)
    return out
