"""Benchmark harness reproducing every table and figure of the paper.

Structure:

* :mod:`repro.bench.workloads` — builders for each experiment's view
  collections (verbatim translations of the paper's definitions at
  engine-appropriate scale).
* :mod:`repro.bench.harness` — grid runner + paper-style table printing.
* :mod:`repro.bench.experiments` — one driver per table/figure; run them
  with ``python -m repro.bench <experiment>`` (e.g. ``table2``, ``fig6``).
* ``benchmarks/`` (repo root) — pytest-benchmark entry points that wrap the
  same drivers.
"""

from repro.bench.harness import ExperimentResult, print_table, run_modes

__all__ = ["ExperimentResult", "print_table", "run_modes"]
