"""View-collection builders for every experiment in the paper.

Each builder returns a :class:`MaterializedCollection` (plus the base graph
where callers need it). Definitions mirror the paper's §5/§7 workloads; the
scale is set by each builder's size parameters (defaults are tuned so a
full experiment run completes in minutes on one core — see DESIGN.md's
substitution notes).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.view_collection import (
    MaterializedCollection,
    ViewCollectionDefinition,
    collection_from_diffs,
)
from repro.datasets.citation import citations_like
from repro.datasets.community import community_graph, perturbation_views
from repro.datasets.social import locality_affinity_views, social_like
from repro.datasets.synthetic import random_edge_pairs
from repro.datasets.temporal import SECONDS_PER_DAY, SECONDS_PER_YEAR, stackoverflow_like, ts_after
from repro.graph.property_graph import PropertyGraph
from repro.gvdl.ast import And, Comparison, Literal, Predicate, PropRef

EdgeKey = Tuple[int, int, int, int]


# ---------------------------------------------------------------------------
# Table 2 (§5): random-churn collections on an Orkut-like graph
# ---------------------------------------------------------------------------

def orkut_churn_collection(num_nodes: int = 300, num_edges: int = 1500,
                           num_views: int = 20,
                           additions_per_view: int = 25,
                           removals_per_view: int = 25,
                           seed: int = 0,
                           name: str = "churn") -> MaterializedCollection:
    """The §5 controlled experiment: GV1 plus random ± churn per view.

    The paper uses 10M Orkut edges with ±500 (C_1K, very similar views) or
    +2M/−1.5M (C_3.5M, very different views) per view; scale the
    ``*_per_view`` knobs proportionally.
    """
    rng = random.Random(seed)
    pairs = random_edge_pairs(num_nodes, num_edges, seed=seed, rng=rng)
    edge_ids: Dict[Tuple[int, int], int] = {}

    def key_for(pair: Tuple[int, int]) -> EdgeKey:
        eid = edge_ids.setdefault(pair, len(edge_ids))
        return (eid, pair[0], pair[1], 1)

    current = set(pairs)
    diffs: List[Dict[EdgeKey, int]] = [
        {key_for(pair): 1 for pair in sorted(current)}]
    for _view in range(1, num_views):
        diff: Dict[EdgeKey, int] = {}
        removable = sorted(current)
        rng.shuffle(removable)
        for pair in removable[:removals_per_view]:
            current.discard(pair)
            diff[key_for(pair)] = -1
        added = 0
        attempts = 0
        while added < additions_per_view and attempts < 50 * additions_per_view:
            attempts += 1
            u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if u == v or (u, v) in current:
                continue
            current.add((u, v))
            key = key_for((u, v))
            if diff.get(key) == -1:
                del diff[key]
            else:
                diff[key] = 1
            added += 1
        diffs.append(diff)
    return collection_from_diffs(name, diffs, source="orkut-like")


# ---------------------------------------------------------------------------
# Figures 6-7 (§7.2): window collections on the SO-like temporal graph
# ---------------------------------------------------------------------------

def _ts_window_predicate(lo: Optional[int], hi: int) -> Predicate:
    upper = Comparison(PropRef("edge", "ts"), "<", Literal(hi))
    if lo is None:
        return upper
    lower = Comparison(PropRef("edge", "ts"), ">=", Literal(lo))
    return And((lower, upper))


#: Paper window label -> seconds. The SO graph spans 8 years like the real
#: dataset; the default benchmark scale divides counts, not the windows.
CSIM_WINDOWS: Dict[str, int] = {
    "1mo": 30 * SECONDS_PER_DAY,
    "3mo": 91 * SECONDS_PER_DAY,
    "6mo": 182 * SECONDS_PER_DAY,
    "1y": SECONDS_PER_YEAR,
    "2y": 2 * SECONDS_PER_YEAR,
}

CNO_WINDOWS: Dict[str, int] = {
    "6mo": 182 * SECONDS_PER_DAY,
    "1y": SECONDS_PER_YEAR,
    "2y": 2 * SECONDS_PER_YEAR,
    "3y": 3 * SECONDS_PER_YEAR,
    "4y": 4 * SECONDS_PER_YEAR,
}


def csim_collection(graph: PropertyGraph, window_seconds: int,
                    initial_years: float = 5.0, span_years: float = 8.0,
                    max_views: int = 48,
                    name: str = "csim") -> MaterializedCollection:
    """§7.2 C_sim: a 5-year initial window expanded by ``window_seconds``
    per view (each view is a superset of its predecessor)."""
    start = ts_after(years=initial_years)
    end = ts_after(years=span_years)
    views: List[Tuple[str, Predicate]] = [
        ("base", _ts_window_predicate(None, start))]
    bound = start
    index = 1
    while bound < end and len(views) < max_views:
        bound = min(end, bound + window_seconds)
        views.append((f"expand-{index}", _ts_window_predicate(None, bound)))
        index += 1
    definition = ViewCollectionDefinition(name, graph.name, tuple(views))
    return definition.materialize(graph)


def cno_collection(graph: PropertyGraph, window_seconds: int,
                   first_window_days: int = 214, span_years: float = 8.0,
                   max_views: int = 48,
                   name: str = "cno") -> MaterializedCollection:
    """§7.2 C_no: completely disjoint sliding windows (first window
    2008-05..2008-12, then full slides of ``window_seconds``)."""
    views: List[Tuple[str, Predicate]] = []
    lo = ts_after(days=0)
    hi = ts_after(days=first_window_days)
    end = ts_after(years=span_years)
    index = 0
    while lo < end and len(views) < max_views:
        views.append((f"win-{index}", _ts_window_predicate(lo, hi)))
        lo, hi = hi, min(end, hi + window_seconds)
        if hi <= lo:
            break
        index += 1
    definition = ViewCollectionDefinition(name, graph.name, tuple(views))
    return definition.materialize(graph)


# ---------------------------------------------------------------------------
# Table 3 (§7.3): citation-graph collections
# ---------------------------------------------------------------------------

def _year_window_predicate(lo: int, hi: int,
                           max_authors: Optional[int] = None) -> Predicate:
    terms: List[Comparison] = []
    for side in ("src", "dst"):
        terms.append(Comparison(PropRef(side, "year"), ">=", Literal(lo)))
        terms.append(Comparison(PropRef(side, "year"), "<=", Literal(hi)))
        if max_authors is not None:
            terms.append(Comparison(PropRef(side, "authors"), "<=",
                                    Literal(max_authors)))
    return And(tuple(terms))


def csl_collection(graph: PropertyGraph,
                   name: str = "csl") -> MaterializedCollection:
    """§7.3 C_sl: decade windows sliding by 5 years, [1936,1945] ...
    [2011,2020] — 16 views, each adding and removing 5 years of papers."""
    views = []
    for lo in range(1936, 2012, 5):
        hi = lo + 9
        views.append((f"{lo}-{hi}", _year_window_predicate(lo, hi)))
    definition = ViewCollectionDefinition(name, graph.name, tuple(views))
    return definition.materialize(graph)


def cex_sh_sl_collection(graph: PropertyGraph,
                         name: str = "cex-sh-sl") -> MaterializedCollection:
    """§7.3 C_ex-sh-sl: [1995,2000] expands to [1995,2005], shrinks to
    [2000,2005], then slides to [2005,2010], all by one-year steps."""
    windows: List[Tuple[int, int]] = [(1995, 2000)]
    for hi in range(2001, 2006):          # expand
        windows.append((1995, hi))
    for lo in range(1996, 2001):          # shrink
        windows.append((lo, 2005))
    for step in range(1, 6):              # slide
        windows.append((2000 + step, 2005 + step))
    views = [(f"{lo}-{hi}", _year_window_predicate(lo, hi))
             for lo, hi in windows]
    definition = ViewCollectionDefinition(name, graph.name, tuple(views))
    return definition.materialize(graph)


def caut_collection(graph: PropertyGraph,
                    name: str = "caut") -> MaterializedCollection:
    """§7.3 C_aut: the Cartesian product of 5-year non-overlapping year
    windows [1996,2000] ... [2016,2020] with an expanding author-count
    window [0,5] ... [0,25]. Author expansion yields addition-only diffs;
    each year slide is a non-overlapping jump — a natural split point."""
    views = []
    for lo in range(1996, 2017, 5):
        hi = lo + 4
        for authors in range(5, 26, 5):
            views.append((
                f"{lo}-{hi}xA{authors}",
                _year_window_predicate(lo, hi, max_authors=authors),
            ))
    definition = ViewCollectionDefinition(name, graph.name, tuple(views))
    return definition.materialize(graph)


# ---------------------------------------------------------------------------
# Table 4 / Figures 8-9 (§7.4): community-removal perturbation collections
# ---------------------------------------------------------------------------

def perturbation_collection(graph: PropertyGraph, top_n: int, k: int,
                            order_method: str = "identity", seed: int = 0,
                            workers: int = 1,
                            name: Optional[str] = None
                            ) -> MaterializedCollection:
    """§7.4 C_{N,k}: one view per k-combination of the N largest
    communities, removing those communities. ``order_method`` selects the
    collection ordering (``christofides`` = the paper's Ord., ``random`` =
    the R1/R2/R3 baselines via ``seed``)."""
    views = perturbation_views(graph, top_n, k)
    definition = ViewCollectionDefinition(
        name or f"{graph.name}-{top_n}C{k}", graph.name, tuple(views))
    return definition.materialize(
        graph, order_method=order_method, seed=seed, workers=workers)


# ---------------------------------------------------------------------------
# Figure 10 (§7.6): scalability collection on the TW-like graph
# ---------------------------------------------------------------------------

def scalability_collection(num_nodes: int = 400, num_edges: int = 2400,
                           seed: int = 0,
                           name: str = "locality"
                           ) -> Tuple[PropertyGraph, MaterializedCollection]:
    """The 9-view same-city/state/country x affinity collection."""
    graph = social_like(num_nodes, num_edges, seed=seed,
                        with_attributes=True, name="twitter-like")
    views = locality_affinity_views()
    definition = ViewCollectionDefinition(name, graph.name, tuple(views))
    return graph, definition.materialize(graph)


# ---------------------------------------------------------------------------
# Default experiment graphs
# ---------------------------------------------------------------------------

def default_so_graph(scale: float = 1.0, seed: int = 0) -> PropertyGraph:
    return stackoverflow_like(num_nodes=int(300 * scale),
                              num_edges=int(1500 * scale), seed=seed)


def default_pc_graph(scale: float = 1.0, seed: int = 0) -> PropertyGraph:
    return citations_like(num_nodes=int(400 * scale),
                          num_edges=int(1600 * scale), seed=seed)


def default_lj_graph(scale: float = 1.0, seed: int = 0) -> PropertyGraph:
    return community_graph(num_nodes=int(300 * scale),
                           intra_edges=int(1200 * scale),
                           background_edges=int(300 * scale),
                           seed=seed, name="livejournal-like")


def default_wtc_graph(scale: float = 1.0, seed: int = 1) -> PropertyGraph:
    return community_graph(num_nodes=int(250 * scale),
                           intra_edges=int(1000 * scale),
                           background_edges=int(250 * scale),
                           seed=seed, overlap=0.35, name="wiki-topcats-like")
