"""Command-line interface to a Graphsurge session.

The paper's users load graphs, run GVDL statements, and invoke analytics
computations from a command line; this module provides the same workflow::

    # load a graph, create views/collections, run a computation
    python -m repro.cli \
        --load Calls=nodes.csv,edges.csv \
        --gvdl script.gvdl \
        run wcc call-analysis --mode adaptive --out results.csv

Subcommands:

* ``gvdl``  — execute GVDL statements (from --gvdl files or --execute text)
  and report what was created.
* ``run``   — run a named computation on a graph, view, or collection.
* ``profile`` — run a computation traced and print the per-view
  critical-path report (``--trace-out`` writes a Chrome trace-event JSON
  loadable at chrome://tracing; see docs/observability.md).
* ``info``  — describe the session's graphs, views, and collections.
* ``fuzz``  — differential-oracle fuzzing: randomized view collections
  cross-checked against scratch recomputation and the metamorphic
  invariants (see docs/verification.md). ``--replay FILE`` re-runs a
  previously written repro file.
* ``serve`` — run the always-on analytics daemon: one resident session
  answers GVDL and analytics requests over HTTP with a result cache,
  admission control, circuit breakers, per-request deadlines, and
  graceful checkpointing shutdown (see docs/serving.md).
* ``analyze`` — static plan analysis + UDF determinism linting over the
  built-in algorithms (and ``--generated N`` fuzzer-derived plans)
  without executing anything; exits 1 on any ERROR finding (see
  docs/analysis.md). ``--concurrency`` adds the shard-safety pass
  (GS-S3xx), ``--stream`` the stream-maintainability pass (GS-M4xx),
  ``--strict-warnings`` also fails on WARNING findings. ``run --strict``
  applies the same check before executing; ``run --sanitize`` (process
  backend) shadow-executes every epoch inline and fails at the first
  divergence.

Computations: wcc, scc, bfs, bf (Bellman-Ford), pagerank, mpsp, kcore,
triangles, degrees, maxdegree, plus the community & scoring pack:
labelprop, ppr, ktruss, score (see docs/algorithms.md). Options like
``--source``/``--iterations``/``--seeds`` configure them.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional

from repro.algorithms import (
    BellmanFord,
    Bfs,
    CompositeScore,
    KCore,
    KTruss,
    LabelPropagation,
    MaxDegree,
    Mpsp,
    OutDegrees,
    PageRank,
    PersonalizedPageRank,
    Scc,
    Triangles,
    Wcc,
)
from repro.core.computation import GraphComputation
from repro.core.executor import CollectionRunResult, ExecutionMode
from repro.core.system import Graphsurge
from repro.errors import GraphsurgeError
from repro.timely.worker import canonical_order_key


def build_computation(name: str, args: argparse.Namespace) -> GraphComputation:
    """Instantiate a computation by CLI name."""
    name = name.lower()
    if name == "wcc":
        return Wcc()
    if name == "scc":
        return Scc()
    if name == "bfs":
        return Bfs(source=args.source)
    if name in ("bf", "sssp", "bellman-ford"):
        return BellmanFord(source=args.source)
    if name in ("pagerank", "pr"):
        return PageRank(iterations=args.iterations)
    if name == "mpsp":
        if not args.pairs:
            raise GraphsurgeError(
                "mpsp needs --pairs, e.g. --pairs 1:5,1:9")
        pairs = []
        for chunk in args.pairs.split(","):
            src_text, _, dst_text = chunk.partition(":")
            pairs.append((int(src_text), int(dst_text)))
        return Mpsp(pairs)
    if name == "kcore":
        return KCore(args.k)
    if name == "ktruss":
        return KTruss(args.k)
    if name == "triangles":
        return Triangles()
    if name == "degrees":
        return OutDegrees()
    if name == "maxdegree":
        return MaxDegree()
    if name in ("labelprop", "lpa"):
        return LabelPropagation(rounds=args.rounds)
    if name == "ppr":
        if not args.seeds:
            raise GraphsurgeError("ppr needs --seeds, e.g. --seeds 1,5")
        seeds = [int(part) for part in args.seeds.split(",") if part]
        return PersonalizedPageRank(seeds, iterations=args.iterations)
    if name == "score":
        return CompositeScore(degree_weight=args.degree_weight,
                              triangle_weight=args.triangle_weight,
                              rank_weight=args.rank_weight,
                              iterations=args.iterations)
    raise GraphsurgeError(f"unknown computation {name!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Graphsurge command line")
    parser.add_argument(
        "--load", action="append", default=[], metavar="NAME=NODES,EDGES",
        help="load a base graph from CSV files (repeatable)")
    parser.add_argument(
        "--gvdl", action="append", default=[], metavar="FILE",
        help="execute GVDL statements from a file (repeatable)")
    parser.add_argument(
        "--execute", action="append", default=[], metavar="TEXT",
        help="execute GVDL statements given inline (repeatable)")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="simulated worker count (default 1)")
    parser.add_argument(
        "--backend", default="inline", choices=["inline", "process"],
        help="execution backend: inline runs all shards in this "
             "process; process forks one OS worker per shard "
             "(see docs/parallel.md; default inline)")
    parser.add_argument(
        "--order-collections", default="identity",
        choices=["identity", "christofides", "greedy", "random"],
        help="collection ordering method (default identity)")
    parser.add_argument(
        "--weight-property", default=None,
        help="edge property to use as weight for analytics")

    subcommands = parser.add_subparsers(dest="command")

    info = subcommands.add_parser("info", help="describe the session")
    del info

    def add_computation_args(sub) -> None:
        sub.add_argument("computation",
                         help="wcc|scc|bfs|bf|pagerank|mpsp|kcore|"
                              "triangles|degrees|maxdegree|labelprop|"
                              "ppr|ktruss|score")
        sub.add_argument("target", help="graph, view, or collection name")
        sub.add_argument("--mode", default="adaptive",
                         choices=[m.value for m in ExecutionMode],
                         help="execution policy for collections")
        sub.add_argument("--batch-size", type=int, default=10,
                         help="adaptive splitting batch size (default 10)")
        sub.add_argument("--source", type=int, default=None,
                         help="source vertex for bfs/bf")
        sub.add_argument("--iterations", type=int, default=10,
                         help="pagerank/ppr/score iterations (default 10)")
        sub.add_argument("--k", type=int, default=2,
                         help="k for kcore (default 2); ktruss needs >= 2")
        sub.add_argument("--pairs", default=None,
                         help="mpsp pairs as src:dst,src:dst,...")
        sub.add_argument("--seeds", default=None,
                         help="ppr seed vertices as comma-separated ids, "
                              "e.g. --seeds 1,5")
        sub.add_argument("--rounds", type=int, default=8,
                         help="labelprop synchronous rounds (default 8)")
        sub.add_argument("--degree-weight", type=int, default=1,
                         help="score weight on out-degree (default 1)")
        sub.add_argument("--triangle-weight", type=int, default=1,
                         help="score weight on triangle count (default 1)")
        sub.add_argument("--rank-weight", type=int, default=1,
                         help="score weight on centi-PageRank (default 1)")

    run = subcommands.add_parser("run", help="run a computation")
    add_computation_args(run)
    run.add_argument("--out", default=None, metavar="FILE",
                     help="write per-view results to a CSV file")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="trace the run and write a Chrome trace-event "
                          "JSON (load at chrome://tracing)")
    run.add_argument("--checkpoint", default=None, metavar="FILE",
                     help="journal each completed view to a resumable "
                          "checkpoint file")
    run.add_argument("--resume", action="store_true",
                     help="resume an interrupted collection run from the "
                          "--checkpoint file")
    run.add_argument("--max-wall-seconds", type=float, default=None,
                     help="abort (with partial progress) past this wall "
                          "time")
    run.add_argument("--max-work", type=int, default=None,
                     help="abort (with partial progress) past this many "
                          "work units")
    run.add_argument("--max-iterations", type=int, default=None,
                     help="abort a fixed point past this many iterations")
    run.add_argument("--retries", type=int, default=0,
                     help="per-view retries; a repeatedly failing "
                          "differential view degrades to scratch "
                          "(default 0 = fail fast)")
    run.add_argument("--retry-backoff", type=float, default=0.5,
                     help="seconds before the first retry, doubled each "
                          "further retry (default 0.5)")
    run.add_argument("--strict", action="store_true",
                     help="statically analyze the plan at build time and "
                          "refuse to run on any ERROR finding (see "
                          "docs/analysis.md); on --backend process this "
                          "includes the shard-safety pass")
    run.add_argument("--sanitize", action="store_true",
                     help="shadow-execute every epoch on an inline twin "
                          "and fail at the first divergent (operator, "
                          "timestamp, shard); requires --backend process "
                          "(see docs/parallel.md)")

    profile = subcommands.add_parser(
        "profile", help="run a computation traced; print the per-view "
                        "critical-path report")
    add_computation_args(profile)
    profile.add_argument("--trace-out", default=None, metavar="FILE",
                         help="also write a Chrome trace-event JSON "
                              "(load at chrome://tracing)")
    profile.add_argument("--top", type=int, default=3,
                         help="critical-path contributors shown per view "
                              "(default 3)")
    profile.add_argument("--flame-top", type=int, default=10,
                         help="operators shown in the work rollup "
                              "(default 10)")

    gvdl = subcommands.add_parser(
        "gvdl", help="only execute the --gvdl/--execute statements")
    del gvdl

    analyze = subcommands.add_parser(
        "analyze", help="statically analyze computation plans and their "
                        "UDFs without running anything (docs/analysis.md)")
    analyze.add_argument(
        "computations", nargs="*", metavar="NAME",
        help="algorithm names to analyze (default: every built-in "
             "algorithm)")
    analyze.add_argument("--seed", type=int, default=0,
                         help="seed for sampled parameters and generated "
                              "plans (default 0)")
    analyze.add_argument("--generated", type=int, default=0, metavar="N",
                         help="also analyze N fuzzer-generated plans from "
                              "repro.verify.generator (default 0)")
    analyze.add_argument("--json", default=None, metavar="FILE",
                         help="write the full report as JSON")
    analyze.add_argument("--quiet", action="store_true",
                         help="print only per-plan verdict lines and the "
                              "summary")
    analyze.add_argument("--concurrency", action="store_true",
                         help="also run the shard-safety pass (GS-S3xx: "
                              "process-backend hazards — unpicklable "
                              "captures, cross-process state, unstable "
                              "hash keys)")
    analyze.add_argument("--stream", action="store_true",
                         help="also run the stream-maintainability pass "
                              "(GS-M4xx: retraction and compaction "
                              "hazards for continuous queries)")
    analyze.add_argument("--strict-warnings", action="store_true",
                         help="exit non-zero on WARNING findings too, "
                              "not just ERROR")

    serve = subcommands.add_parser(
        "serve", help="run the always-on analytics daemon: resident "
                      "session state, result cache, request hardening "
                      "(see docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8850,
                       help="TCP port; 0 picks an ephemeral port "
                            "(default 8850)")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="concurrently executing requests "
                            "(default 4)")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="requests allowed to wait for admission; "
                            "past this they are shed with 429 "
                            "(default 16)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock budget; exhaustion "
                            "answers 503 (default: none)")
    serve.add_argument("--max-work", type=int, default=None,
                       help="per-request work-unit budget (default: none)")
    serve.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="session journal: restored on boot, written "
                            "on graceful shutdown")
    serve.add_argument("--retries", type=int, default=1,
                       help="recompute retries before degrading to a "
                            "stale cached result (default 1)")
    serve.add_argument("--retry-backoff", type=float, default=0.05,
                       help="base backoff seconds, doubled per retry "
                            "(default 0.05)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failures that open an "
                            "algorithm's circuit breaker (default 3)")
    serve.add_argument("--breaker-reset", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds an open breaker waits before "
                            "half-opening (default 30)")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       help="result cache entries (default 256)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to wait for in-flight requests on "
                            "shutdown (default 10)")
    serve.add_argument("--workers", type=int, default=None,
                       dest="serve_workers", metavar="N",
                       help="worker count for resident dataflows "
                            "(overrides the global --workers)")
    serve.add_argument("--backend", default=None, dest="serve_backend",
                       choices=["inline", "process"],
                       help="execution backend for resident dataflows "
                            "(overrides the global --backend; see "
                            "docs/parallel.md)")

    stream = subcommands.add_parser(
        "stream", help="stream edge batches into continuously maintained "
                       "queries (see docs/streaming.md)")
    stream.add_argument(
        "queries", nargs="+", metavar="QUERY",
        help="computations to maintain, as NAME or NAME:key=value,... "
             "e.g. wcc, bfs:source=3, pagerank:iterations=5, "
             "mpsp:pairs=1-4;2-5, ppr:seeds=1;5 (ignored with --resume: "
             "the journal header pins the queries)")
    stream.add_argument("--target", default=None,
                        help="loaded graph or view; seeds the stream "
                             "for the churn source, is replayed edge by "
                             "edge for the replay source (default: "
                             "start empty)")
    stream.add_argument("--stream-source", default="churn",
                        choices=["churn", "replay"],
                        help="batch source: seeded random churn, or "
                             "temporal replay of --target's edges "
                             "(default churn)")
    stream.add_argument("--epochs", type=int, default=20,
                        help="batches to ingest (default 20)")
    stream.add_argument("--seed", type=int, default=0,
                        help="churn source seed (default 0)")
    stream.add_argument("--nodes", type=int, default=12,
                        help="churn source vertex-id space (default 12)")
    stream.add_argument("--churn", type=int, default=4,
                        help="max appends and max retracts per churn "
                             "batch (default 4)")
    stream.add_argument("--ts-property", default="ts",
                        help="edge property ordering the replay source "
                             "(default ts)")
    stream.add_argument("--window", type=int, default=None, metavar="N",
                        help="sliding window: each batch also retracts "
                             "what arrived N batches ago (append-only "
                             "sources, i.e. replay)")
    stream.add_argument("--journal", default=None, metavar="FILE",
                        help="journal every ingested batch for resume")
    stream.add_argument("--resume", action="store_true",
                        help="replay the --journal file first, then "
                             "continue the source from where it left "
                             "off (pass the same source flags; for the "
                             "replay source --epochs fixes the batch "
                             "partition and must match the first run)")
    stream.add_argument("--snapshot", action="store_true",
                        help="print each query's full result after the "
                             "final epoch")
    stream.add_argument("--out", default=None, metavar="FILE",
                        help="write per-epoch meter rows to a CSV file")
    stream.add_argument("--compact-every", type=int, default=8,
                        help="trace-compaction cadence in epochs; 0 "
                             "disables (default 8)")
    stream.add_argument("--keep-epochs", type=int, default=4,
                        help="epochs of exact per-epoch history kept by "
                             "compaction (default 4)")

    fuzz = subcommands.add_parser(
        "fuzz", help="fuzz randomized view collections against the "
                     "plain-Python oracles and metamorphic invariants")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; fixes every generated case and "
                           "sampled parameter (default 0)")
    fuzz.add_argument("--iterations", type=int, default=20,
                      help="number of generated collections (default 20)")
    fuzz.add_argument("--algorithms", default=None,
                      help="comma-separated algorithm names (default: all "
                           "oracle-backed algorithms)")
    fuzz.add_argument("--repro-out", default="fuzz-repro.json",
                      metavar="FILE",
                      help="where a failure's shrunk repro is written "
                           "(default fuzz-repro.json)")
    fuzz.add_argument("--kinds", default=None,
                      help="comma-separated generator kinds: "
                           "churn,window,gvdl (default: all)")
    fuzz.add_argument("--keep-going", action="store_true",
                      help="keep fuzzing after a mismatch instead of "
                           "stopping at the first failure")
    fuzz.add_argument("--quiet", action="store_true",
                      help="only print the final summary line")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="re-run a previously written repro file instead "
                           "of fuzzing")
    return parser


def _setup_session(args: argparse.Namespace) -> Graphsurge:
    session = Graphsurge(workers=args.workers,
                         order_collections=args.order_collections,
                         weight_property=args.weight_property,
                         backend=args.backend)
    for spec in args.load:
        name, _, files = spec.partition("=")
        nodes_path, _, edges_path = files.partition(",")
        if not (name and nodes_path and edges_path):
            raise GraphsurgeError(
                f"--load expects NAME=NODES,EDGES, got {spec!r}")
        session.load_graph(name, nodes_path, edges_path)
        print(f"loaded graph {name}")
    for path in args.gvdl:
        created = session.execute(Path(path).read_text())
        for name in created:
            print(f"created {name}")
    for text in args.execute:
        created = session.execute(text)
        for name in created:
            print(f"created {name}")
    return session


def _print_info(session: Graphsurge) -> None:
    print("graphs:")
    for name in session.graphs.names():
        print(f"  {name}: {session.graphs.get(name)!r}")
    print("views:")
    for name in session.views.view_names():
        print(f"  {name}: {session.views.get_view(name)!r}")
    print("collections:")
    for name in session.views.collection_names():
        collection = session.views.get_collection(name)
        print(f"  {name}: {collection.num_views} views, "
              f"{collection.total_diffs} total diffs")


def _write_collection_csv(result: CollectionRunResult, path: str) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["view", "vertex", "value"])
        for view_result in result.views:
            if view_result.output is None:
                continue
            for (vertex, value), mult in sorted(
                    view_result.output.items(),
                    key=lambda item: canonical_order_key(item[0])):
                for _ in range(mult):
                    writer.writerow([view_result.view_name, vertex, value])


def _build_resilience(args: argparse.Namespace):
    """Budget / retry policy / checkpoint options from CLI flags."""
    from repro.core.resilience import RetryPolicy, RunBudget

    budget = None
    if (args.max_wall_seconds is not None or args.max_work is not None
            or args.max_iterations is not None):
        budget = RunBudget(max_wall_seconds=args.max_wall_seconds,
                           max_work=args.max_work,
                           max_iterations=args.max_iterations)
    retry_policy = None
    if args.retries > 0:
        retry_policy = RetryPolicy(max_retries=args.retries,
                                   backoff_seconds=args.retry_backoff)
    resume_from = args.checkpoint if args.resume else None
    if args.resume and args.checkpoint is None:
        raise GraphsurgeError("--resume requires --checkpoint FILE")
    return budget, retry_policy, args.checkpoint, resume_from


def _run(session: Graphsurge, args: argparse.Namespace) -> None:
    computation = build_computation(args.computation, args)
    budget, retry_policy, checkpoint_path, resume_from = \
        _build_resilience(args)
    tracer = None
    if args.trace_out:
        from repro.observe import TraceSink

        tracer = TraceSink(session.workers)
    result = session.run_analytics(
        computation, args.target, mode=ExecutionMode(args.mode),
        batch_size=args.batch_size, keep_outputs=bool(args.out),
        checkpoint_path=checkpoint_path, resume_from=resume_from,
        budget=budget, retry_policy=retry_policy, tracer=tracer,
        strict=args.strict, sanitize=args.sanitize)
    if isinstance(result, CollectionRunResult):
        resumed = (f", resumed at view {result.resumed_views}"
                   if result.resumed_views else "")
        print(f"{computation.name} on collection {args.target}: "
              f"{len(result.views)} views in "
              f"{result.total_wall_seconds:.2f}s "
              f"({result.total_work} work units, "
              f"splits at {result.split_points}{resumed})")
        for view_result in result.views:
            notes = ""
            if view_result.degraded:
                notes = "  [degraded to scratch after "
                notes += f"{len(view_result.failures)} failure(s)]"
            elif view_result.failures:
                notes = f"  [{len(view_result.failures)} retried failure(s)]"
            print(f"  {view_result.view_name:>12} "
                  f"{view_result.strategy.value:>12} "
                  f"{view_result.wall_seconds:>8.3f}s "
                  f"{view_result.work:>10} work{notes}")
        if args.out:
            _write_collection_csv(result, args.out)
            print(f"wrote {args.out}")
    else:
        print(f"{computation.name} on {args.target}: "
              f"{result.output_diff_size} result records in "
              f"{result.wall_seconds:.2f}s ({result.work} work units)")
        if args.out:
            with open(args.out, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["vertex", "value"])
                for (vertex, value), _mult in sorted(
                        result.output.items(),
                        key=lambda item: canonical_order_key(item[0])):
                    writer.writerow([vertex, value])
            print(f"wrote {args.out}")
    if tracer is not None:
        from repro.observe import write_chrome_trace

        write_chrome_trace(tracer.steps, args.trace_out,
                           workers=tracer.workers)
        print(f"wrote Chrome trace to {args.trace_out} "
              f"({len(tracer.steps)} steps, {tracer.total_units} units)")


def _profile(session: Graphsurge, args: argparse.Namespace) -> None:
    computation = build_computation(args.computation, args)
    report = session.profile(
        computation, args.target, mode=ExecutionMode(args.mode),
        batch_size=args.batch_size, trace_out=args.trace_out)
    print(report.render(top=args.top, flame_top=args.flame_top))
    if args.trace_out:
        print(f"wrote Chrome trace to {args.trace_out} "
              f"({len(report.sink.steps)} steps, "
              f"{report.sink.total_units} units)")


def _analyze(args: argparse.Namespace) -> int:
    from repro.analyze.corpus import default_computations, \
        generated_computations
    from repro.analyze import analyze_computation

    plans = default_computations(args.seed)
    if args.computations:
        known = {label for label, _ in plans}
        wanted = [name.lower() for name in args.computations]
        unknown = [name for name in wanted if name not in known]
        if unknown:
            raise GraphsurgeError(
                f"unknown computation(s): {', '.join(unknown)}; "
                f"expected names from: {', '.join(sorted(known))}")
        plans = [(label, comp) for label, comp in plans if label in wanted]
    if args.generated > 0:
        plans = plans + list(
            generated_computations(args.seed, args.generated))
    reports = {}
    errors = warnings = 0
    for label, computation in plans:
        report = analyze_computation(computation, workers=args.workers,
                                     concurrency=args.concurrency,
                                     stream=args.stream)
        reports[label] = report
        errors += len(report.errors())
        warnings += len(report.warnings())
        verdict = "clean" if not report.findings else \
            f"{len(report.errors())} error(s), " \
            f"{len(report.warnings())} warning(s)"
        print(f"{label}: {verdict} ({report.operators_scanned} operators, "
              f"{report.udfs_scanned} UDFs"
              + (f", {report.suppressed} suppressed"
                 if report.suppressed else "") + ")")
        if report.findings and not args.quiet:
            for finding in report.sorted_findings():
                print("  " + finding.render().replace("\n", "\n  "))
    print(f"analyzed {len(plans)} plan(s): {errors} error(s), "
          f"{warnings} warning(s)")
    if args.json:
        import json

        payload = {label: report.to_dict()
                   for label, report in reports.items()}
        Path(args.json).write_text(json.dumps(payload, indent=1,
                                              sort_keys=True))
        print(f"wrote {args.json}")
    if errors:
        return 1
    return 1 if args.strict_warnings and warnings else 0


def _serve(session: Graphsurge, args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.resilience import RetryPolicy
    from repro.serve import (
        AdmissionController,
        BreakerBoard,
        ResultCache,
        ServeApp,
        ServeSession,
        run_server,
    )

    serve_session = ServeSession(system=session)
    retry_policy = None
    if args.retries > 0:
        retry_policy = RetryPolicy(max_retries=args.retries,
                                   backoff_seconds=args.retry_backoff)
    app = ServeApp(
        serve_session,
        cache=ResultCache(capacity=args.cache_capacity),
        admission=AdmissionController(max_inflight=args.max_inflight,
                                      max_queue=args.max_queue),
        breakers=BreakerBoard(failure_threshold=args.breaker_threshold,
                              reset_seconds=args.breaker_reset),
        retry_policy=retry_policy,
        deadline_seconds=args.deadline,
        max_work=args.max_work,
    )
    asyncio.run(run_server(app, host=args.host, port=args.port,
                           checkpoint_path=args.checkpoint,
                           drain_timeout=args.drain_timeout))
    return 0


def _parse_stream_queries(items: List[str]) -> List[tuple]:
    """``wcc`` / ``bfs:source=3`` / ``mpsp:pairs=1-4;2-5`` /
    ``ppr:seeds=1;5`` → (name, params)."""
    queries = []
    for text in items:
        name, _, rest = text.partition(":")
        params: dict = {}
        for part in filter(None, rest.split(",")):
            key, sep, value = part.partition("=")
            if not sep:
                raise GraphsurgeError(
                    f"stream query parameter {part!r} must be key=value")
            if key == "pairs":
                params[key] = [tuple(int(v) for v in pair.split("-"))
                               for pair in value.split(";") if pair]
            elif key == "seeds":
                params[key] = [int(v) for v in value.split(";") if v]
            else:
                try:
                    params[key] = int(value)
                except ValueError:
                    params[key] = value
        queries.append((name, params))
    return queries


def _stream_cmd(session: Graphsurge, args: argparse.Namespace) -> int:
    from repro.stream import (
        StreamEngine,
        churn_batches,
        replay_batches,
        sliding_batches,
    )

    queries = _parse_stream_queries(args.queries)
    if args.stream_source == "replay" and not args.target:
        raise GraphsurgeError("--stream-source replay requires --target")
    if args.resume:
        if not args.journal:
            raise GraphsurgeError("--resume requires --journal FILE")
        # For the replay source the journaled engine started empty; for
        # churn it started from the target's edges — mirror that here.
        graph = (session.resolve(args.target)
                 if args.target and args.stream_source != "replay"
                 else None)
        engine = StreamEngine.resume(args.journal, graph=graph)
        print(f"resumed stream at epoch {engine.epoch} "
              f"from {args.journal}")
    else:
        seed_target = (None if args.stream_source == "replay"
                       else args.target)
        engine = session.stream(seed_target, queries,
                                compact_every=args.compact_every,
                                keep_epochs=args.keep_epochs,
                                journal_path=args.journal)
    if args.stream_source == "replay":
        batches = replay_batches(session.resolve(args.target),
                                 prop=args.ts_property,
                                 num_batches=args.epochs,
                                 weight=session.weight_property)
    else:
        batches = churn_batches(args.seed, args.epochs,
                                num_nodes=args.nodes, churn=args.churn)
    if args.window is not None:
        batches = sliding_batches(batches, args.window)
    short = {signature: query.name
             for signature, query in engine.queries.items()}
    try:
        for batch in batches[engine.epoch:]:
            payload = engine.ingest(batch)
            parts = [f"epoch {payload['epoch']:>4}: "
                     f"+{len(batch.appends)} -{len(batch.retracts)}"]
            for signature in sorted(payload["results"]):
                row = payload["results"][signature]
                parts.append(f"{short[signature]} Δ"
                             f"{len(row['output_delta'])} "
                             f"work {row['work']}")
            print("  ".join(parts))
        summary = engine.meter.summary()
        print(f"streamed {summary['epochs']} epoch(s): "
              f"{summary['total_work']} work units, max epoch "
              f"{summary['max_epoch_work']}, "
              f"{summary['total_latency_s']:.3f}s compute")
        if args.snapshot:
            for signature in sorted(engine.queries):
                output = engine.snapshot(signature)
                print(f"{short[signature]} @ epoch {engine.epoch}:")
                for (vertex, value), mult in sorted(
                        output.items(),
                        key=lambda item: canonical_order_key(item[0])):
                    print(f"  {vertex} {value}"
                          + (f" x{mult}" if mult != 1 else ""))
        if args.out:
            with open(args.out, "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["epoch", "query", "batch_size",
                                 "delta_records", "output_delta_size",
                                 "work", "parallel_time", "latency_s"])
                for row in engine.meter.rows():
                    writer.writerow([
                        row["epoch"], short.get(row["query"],
                                                row["query"]),
                        row["batch_size"], row["delta_records"],
                        row["output_delta_size"], row["work"],
                        row["parallel_time"], row["latency_s"]])
            print(f"wrote {args.out}")
    finally:
        engine.close()
    return 0


def _fuzz(args: argparse.Namespace) -> int:
    from repro.verify import FuzzConfig, replay_repro, run_fuzz

    if args.replay:
        mismatch = replay_repro(args.replay)
        if mismatch is None:
            print(f"repro {args.replay}: check passes — the failure no "
                  f"longer reproduces")
            return 0
        print(f"repro {args.replay}: still failing\n  {mismatch}")
        return 1
    kinds = None
    if args.kinds:
        kinds = [part.strip() for part in args.kinds.split(",")
                 if part.strip()]
    config = FuzzConfig(
        seed=args.seed, iterations=args.iterations,
        algorithms=args.algorithms, repro_out=args.repro_out,
        kinds=kinds, stop_on_mismatch=not args.keep_going)
    log = None if args.quiet else print
    report = run_fuzz(config, log=log)
    if args.quiet:
        print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "fuzz":
            return _fuzz(args)
        if args.command == "analyze":
            return _analyze(args)
        if args.command == "serve":
            # Per-subcommand overrides fold into the session knobs so the
            # resident dataflows (and backend validation) see them.
            if args.serve_workers is not None:
                args.workers = args.serve_workers
            if args.serve_backend is not None:
                args.backend = args.serve_backend
        session = _setup_session(args)
        if args.command == "info":
            _print_info(session)
        elif args.command == "run":
            _run(session, args)
        elif args.command == "profile":
            _profile(session, args)
        elif args.command == "serve":
            return _serve(session, args)
        elif args.command == "stream":
            return _stream_cmd(session, args)
        elif args.command in (None, "gvdl"):
            pass
    except (GraphsurgeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        partial = getattr(error, "partial", None)
        if partial is not None:
            print(f"partial progress: {len(partial.views)} view(s) "
                  f"completed before the budget ran out"
                  + (" (checkpointed)" if args.command == "run"
                     and getattr(args, "checkpoint", None) else ""),
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
