"""Difference traces: per-key histories of timestamped differences.

A trace stores, for each key, the list of ``(time, value-diff)`` entries an
operator has observed or produced. Keyed operators use traces both to
*accumulate* a key's state at a time ``t`` (summing entries at times
``s <= t`` in the product order) and to decide which (key, time) pairs need
recomputation — the lub-closure scheduling described in DESIGN.md §5.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Set, Tuple

from repro.differential.multiset import Diff, add_into, consolidate
from repro.differential.timestamp import Time, leq, lub


class KeyTrace:
    """Trace of differences for the values of a single key."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # time -> {value: diff multiplicity}
        self.entries: Dict[Time, Diff] = {}

    def compact_below(self, epoch: int) -> None:
        """Merge entries from epochs before ``epoch`` per iteration suffix.

        Once every time with epoch < ``epoch`` is in the past of the
        execution frontier, two entries ``(e1, *s)`` and ``(e2, *s)`` with
        ``e1, e2 < epoch`` compare identically against every future time,
        so they can be summed into the representative ``(0, *s)``. This is
        differential dataflow's trace compaction; it bounds history size by
        the number of distinct loop-iteration suffixes instead of the
        number of epochs (views) processed.
        """
        merged: Dict[Time, Diff] = {}
        for time, diff in self.entries.items():
            rep = (0,) + time[1:] if time[0] < epoch else time
            slot = merged.get(rep)
            if slot is None:
                merged[rep] = dict(diff)
            else:
                add_into(slot, diff)
        self.entries = {t: d for t, d in merged.items() if d}

    def update(self, time: Time, diff: Diff) -> None:
        slot = self.entries.get(time)
        if slot is None:
            self.entries[time] = dict(diff)
        else:
            add_into(slot, diff)
            if not slot:
                del self.entries[time]

    def accumulate(self, time: Time) -> Diff:
        """Sum of diffs at all stored times ``s <= time`` (product order)."""
        acc: Diff = {}
        for s, diff in self.entries.items():
            if leq(s, time):
                add_into(acc, diff)
        return acc

    def accumulate_strict(self, time: Time) -> Diff:
        """Like :meth:`accumulate` but excluding ``time`` itself."""
        acc: Diff = {}
        for s, diff in self.entries.items():
            if s != time and leq(s, time):
                add_into(acc, diff)
        return acc

    def times(self) -> Iterable[Time]:
        return self.entries.keys()

    def is_empty(self) -> bool:
        return not self.entries


class Trace:
    """A keyed difference trace: ``key -> KeyTrace``."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._keys: Dict[Any, KeyTrace] = {}

    def __contains__(self, key: Any) -> bool:
        return key in self._keys

    def key_trace(self, key: Any) -> KeyTrace:
        trace = self._keys.get(key)
        if trace is None:
            trace = KeyTrace()
            self._keys[key] = trace
        return trace

    def get(self, key: Any) -> "KeyTrace | None":
        return self._keys.get(key)

    def update(self, key: Any, time: Time, diff: Diff) -> None:
        if not diff:
            return
        self.key_trace(key).update(time, diff)

    def accumulate(self, key: Any, time: Time) -> Diff:
        trace = self._keys.get(key)
        if trace is None:
            return {}
        return trace.accumulate(time)

    def accumulate_strict(self, key: Any, time: Time) -> Diff:
        trace = self._keys.get(key)
        if trace is None:
            return {}
        return trace.accumulate_strict(time)

    def keys(self) -> Iterator[Any]:
        return iter(self._keys)

    def maybe_compact(self, key: Any, epoch: int,
                      threshold: int = 24) -> None:
        """Compact one key's history when it has grown past ``threshold``.

        Called opportunistically by keyed operators right before they scan
        a key's entries, so only touched keys pay and the cost amortizes
        into the scan they were about to do anyway.
        """
        trace = self._keys.get(key)
        if trace is not None and len(trace.entries) > threshold:
            trace.compact_below(epoch)

    def record_count(self) -> int:
        """Total number of stored (key, time, value) difference entries."""
        return sum(
            len(diff)
            for trace in self._keys.values()
            for diff in trace.entries.values()
        )


class TimeSchedule:
    """Incremental lub-closure scheduler for one keyed operator.

    Tracks, per key, the set of times at which that key has (or may need)
    differences, and maintains a global agenda of pending (time -> keys)
    recompute tasks. When a new input-difference time ``t`` arrives for a
    key, every join of ``t`` with the key's previously seen times is also
    scheduled — output corrections can be required at those joins even
    without any input difference there.
    """

    def __init__(self) -> None:
        self._seen: Dict[Any, Set[Time]] = {}
        self._agenda: Dict[Time, Set[Any]] = {}

    def schedule(self, key: Any, time: Time) -> None:
        seen = self._seen.get(key)
        if seen is None:
            seen = set()
            self._seen[key] = seen
        if len(seen) > 48:
            # Compact: times from past epochs collapse per iteration suffix
            # (same argument as KeyTrace.compact_below — their joins with
            # any current/future time are unchanged).
            epoch = time[0]
            seen = {((0,) + s[1:]) if s[0] < epoch else s for s in seen}
            self._seen[key] = seen
        if time not in seen:
            # Extend the key's lub-closure with the new time.
            frontier: List[Time] = [time]
            while frontier:
                u = frontier.pop()
                if u in seen:
                    continue
                seen.add(u)
                for s in list(seen):
                    j = lub(s, u)
                    if j not in seen:
                        frontier.append(j)
        # A diff at `time` changes the accumulation at every closure element
        # >= time, so the key must be recomputed at each of them. Elements
        # >= time are also lex->= the execution cursor, so no task lands in
        # the past.
        for u in seen:
            if leq(time, u):
                self._agenda.setdefault(u, set()).add(key)

    def tasks_at(self, time: Time) -> Set[Any]:
        """Pop and return the keys scheduled at exactly ``time``."""
        return self._agenda.pop(time, set())

    def pending_times(self) -> Iterable[Time]:
        return self._agenda.keys()

    def has_pending(self) -> bool:
        return bool(self._agenda)


def consolidate_diff(diff: Diff) -> Diff:
    """Re-export used by operator modules."""
    return consolidate(diff)
