"""Difference traces: per-key histories of timestamped differences.

A trace stores, for each key, the list of ``(time, value-diff)`` entries an
operator has observed or produced. Keyed operators use traces both to
*accumulate* a key's state at a time ``t`` (summing entries at times
``s <= t`` in the product order) and to decide which (key, time) pairs need
recomputation — the lub-closure scheduling described in DESIGN.md §5.

Accumulation is cached: each :class:`KeyTrace` remembers the sum of every
entry in the past of the last queried time (the *covered prefix*) plus the
set of stored times outside it, so a query at a later time only scans the
uncovered suffix. The engine queries each key at lexicographically
increasing times (epoch-major, then loop coordinates), so within an epoch
every accumulation after the first is incremental; only an epoch rollover
pays a full rescan, after which the cache re-anchors. Compaction
(:meth:`KeyTrace.compact_below`) maintains the cache instead of
invalidating it: merging a past-epoch entry into its epoch-0
representative can only move it *into* the covered prefix.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from repro.differential.multiset import Diff, add_into, consolidate
from repro.differential.timestamp import Time, leq, lub


class KeyTrace:
    """Trace of differences for the values of a single key."""

    __slots__ = ("entries", "_cache_time", "_cache_acc", "_uncovered",
                 "_compacted_below")

    def __init__(self) -> None:
        # time -> {value: diff multiplicity}; the authoritative store.
        self.entries: Dict[Time, Diff] = {}
        # Accumulation cache: _cache_acc == Σ diffs at s <= _cache_time,
        # _uncovered == stored times NOT <= _cache_time. All mutation must
        # go through update/take/compact_below to keep these exact.
        self._cache_time: Optional[Time] = None
        self._cache_acc: Diff = {}
        self._uncovered: Set[Time] = set()
        # Epochs below this bound are already merged into their epoch-0
        # representatives; re-running compaction there is a no-op, so the
        # per-scan compaction probes can skip it in O(1).
        self._compacted_below = 0

    def compact_below(self, epoch: int) -> None:
        """Merge entries from epochs before ``epoch`` per iteration suffix.

        Once every time with epoch < ``epoch`` is in the past of the
        execution frontier, two entries ``(e1, *s)`` and ``(e2, *s)`` with
        ``e1, e2 < epoch`` compare identically against every future time,
        so they can be summed into the representative ``(0, *s)``. This is
        differential dataflow's trace compaction; it bounds history size by
        the number of distinct loop-iteration suffixes instead of the
        number of epochs (views) processed.

        The accumulation cache survives compaction: remapping a time to
        epoch 0 can only move it into the covered prefix (its suffix is
        unchanged and ``0 <=`` any cached epoch), and such entries are
        added to the cached sum as they move.
        """
        if epoch <= self._compacted_below:
            return
        self._compacted_below = epoch
        ct = self._cache_time
        cache = self._cache_acc
        merged: Dict[Time, Diff] = {}
        for time, diff in self.entries.items():
            if time[0] < epoch:
                rep = (0,) + time[1:]
                if (ct is not None and rep != time
                        and not leq(time, ct) and leq(rep, ct)):
                    # Entered the covered prefix by moving to epoch 0.
                    add_into(cache, diff)
            else:
                rep = time
            slot = merged.get(rep)
            if slot is None:
                merged[rep] = dict(diff)
            else:
                add_into(slot, diff)
        self.entries = {t: d for t, d in merged.items() if d}
        if ct is not None:
            self._uncovered = {t for t in self.entries if not leq(t, ct)}

    def update(self, time: Time, diff: Diff) -> None:
        if time[0] < self._compacted_below:
            # An out-of-frontier write (tests / replay) reopens the epoch
            # range for compaction.
            self._compacted_below = time[0]
        entries = self.entries
        slot = entries.get(time)
        if slot is None:
            entries[time] = dict(diff)
        else:
            add_into(slot, diff)
            if not slot:
                del entries[time]
        ct = self._cache_time
        if ct is not None:
            if len(time) == len(ct):
                for a, b in zip(time, ct):
                    if a > b:
                        break
                else:
                    # In the covered prefix: fold the delta into the cache.
                    add_into(self._cache_acc, diff)
                    return
            if time in entries:
                self._uncovered.add(time)
            else:
                self._uncovered.discard(time)

    def accumulate(self, time: Time) -> Diff:
        """Sum of diffs at all stored times ``s <= time`` (product order).

        Cached: a query at (or after) the previously queried time only
        scans the uncovered suffix; an incomparable query (epoch rollover)
        rescans once and re-anchors the cache there.
        """
        ct = self._cache_time
        if ct == time:
            return dict(self._cache_acc)
        entries = self.entries
        if ct is not None and len(ct) == len(time):
            for a, b in zip(ct, time):
                if a > b:
                    break
            else:
                # Advance: fold newly covered times into the cache.
                acc = self._cache_acc
                uncovered = self._uncovered
                if uncovered:
                    newly = [s for s in uncovered if leq(s, time)]
                    if newly:
                        for s in newly:
                            add_into(acc, entries[s])
                        uncovered.difference_update(newly)
                self._cache_time = time
                return dict(acc)
        # Rebase: full scan, then anchor the cache at this time.
        acc: Diff = {}
        uncovered = set()
        for s, diff in entries.items():
            if leq(s, time):
                add_into(acc, diff)
            else:
                uncovered.add(s)
        self._cache_time = time
        self._cache_acc = acc
        self._uncovered = uncovered
        return dict(acc)

    def accumulate_strict(self, time: Time) -> Diff:
        """Like :meth:`accumulate` but excluding ``time`` itself."""
        acc = self.accumulate(time)
        at_time = self.entries.get(time)
        if at_time:
            add_into(acc, at_time, factor=-1)
        return acc

    def take(self, time: Time) -> Diff:
        """Remove and return the entry stored at exactly ``time``.

        The sanctioned way to rewrite an output entry (see ``ReduceOp``):
        popping ``entries`` directly would silently corrupt the
        accumulation cache.
        """
        diff = self.entries.pop(time, None)
        if diff is None:
            return {}
        ct = self._cache_time
        if ct is not None:
            if leq(time, ct):
                add_into(self._cache_acc, diff, factor=-1)
            else:
                self._uncovered.discard(time)
        return diff

    def times(self) -> Iterable[Time]:
        return self.entries.keys()

    def is_empty(self) -> bool:
        return not self.entries

    def check_cache(self) -> None:
        """Assert the cache invariants (debug/test aid; O(history))."""
        ct = self._cache_time
        if ct is None:
            return
        expected: Diff = {}
        uncovered = set()
        for s, diff in self.entries.items():
            if leq(s, ct):
                add_into(expected, diff)
            else:
                uncovered.add(s)
        if consolidate(dict(self._cache_acc)) != expected:
            raise AssertionError(
                f"accumulation cache at {ct} is {self._cache_acc}, "
                f"entries say {expected}")
        if self._uncovered != uncovered:
            raise AssertionError(
                f"uncovered set at {ct} is {self._uncovered}, "
                f"entries say {uncovered}")


class Trace:
    """A keyed difference trace: ``key -> KeyTrace``."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._keys: Dict[Any, KeyTrace] = {}

    def __contains__(self, key: Any) -> bool:
        return key in self._keys

    def key_trace(self, key: Any) -> KeyTrace:
        trace = self._keys.get(key)
        if trace is None:
            trace = KeyTrace()
            self._keys[key] = trace
        return trace

    def get(self, key: Any) -> "KeyTrace | None":
        return self._keys.get(key)

    def update(self, key: Any, time: Time, diff: Diff) -> None:
        if not diff:
            return
        self.key_trace(key).update(time, diff)

    def update_batch(self, time: Time, per_key: Dict[Any, Diff]) -> None:
        """Apply many per-key diffs at one time (the batched operator
        path: one trace touch per key instead of one per record)."""
        keys = self._keys
        for key, diff in per_key.items():
            if not diff:
                continue
            trace = keys.get(key)
            if trace is None:
                trace = KeyTrace()
                keys[key] = trace
            trace.update(time, diff)

    def accumulate(self, key: Any, time: Time) -> Diff:
        trace = self._keys.get(key)
        if trace is None:
            return {}
        return trace.accumulate(time)

    def accumulate_strict(self, key: Any, time: Time) -> Diff:
        trace = self._keys.get(key)
        if trace is None:
            return {}
        return trace.accumulate_strict(time)

    def keys(self) -> Iterator[Any]:
        return iter(self._keys)

    def compact_below(self, epoch: int) -> None:
        """Compact every key's history below ``epoch`` (streaming GC).

        The opportunistic :meth:`maybe_compact` only touches keys an
        operator happens to scan again; a long-running stream also needs
        a frontier-driven sweep so keys that went quiet stop holding one
        entry per past epoch. Keys whose entries cancel entirely are
        dropped. Re-running at the same bound is O(keys) thanks to the
        per-key ``_compacted_below`` guard.
        """
        empty = []
        for key, trace in self._keys.items():
            trace.compact_below(epoch)
            if trace.is_empty():
                empty.append(key)
        for key in empty:
            del self._keys[key]

    def maybe_compact(self, key: Any, epoch: int,
                      threshold: int = 24) -> None:
        """Compact one key's history when it has grown past ``threshold``.

        Called opportunistically by keyed operators right before they scan
        a key's entries, so only touched keys pay and the cost amortizes
        into the scan they were about to do anyway.
        """
        trace = self._keys.get(key)
        if trace is not None and len(trace.entries) > threshold:
            trace.compact_below(epoch)

    def record_count(self) -> int:
        """Total number of stored (key, time, value) difference entries."""
        return sum(
            len(diff)
            for trace in self._keys.values()
            for diff in trace.entries.values()
        )


class TimeSchedule:
    """Incremental lub-closure scheduler for one keyed operator.

    Tracks, per key, the set of times at which that key has (or may need)
    differences, and maintains a global agenda of pending (time -> keys)
    recompute tasks. When a new input-difference time ``t`` arrives for a
    key, every join of ``t`` with the key's previously seen times is also
    scheduled — output corrections can be required at those joins even
    without any input difference there.
    """

    def __init__(self) -> None:
        self._seen: Dict[Any, Set[Time]] = {}
        self._agenda: Dict[Time, Set[Any]] = {}

    def schedule(self, key: Any, time: Time) -> None:
        seen = self._seen.get(key)
        if seen is None:
            seen = set()
            self._seen[key] = seen
        if len(seen) > 48:
            # Compact: times from past epochs collapse per iteration suffix
            # (same argument as KeyTrace.compact_below — their joins with
            # any current/future time are unchanged).
            epoch = time[0]
            seen = {((0,) + s[1:]) if s[0] < epoch else s for s in seen}
            self._seen[key] = seen
        if time not in seen:
            # Extend the key's lub-closure with the new time.
            frontier: List[Time] = [time]
            while frontier:
                u = frontier.pop()
                if u in seen:
                    continue
                seen.add(u)
                for s in list(seen):
                    j = lub(s, u)
                    if j not in seen:
                        frontier.append(j)
        # A diff at `time` changes the accumulation at every closure element
        # >= time, so the key must be recomputed at each of them. Elements
        # >= time are also lex->= the execution cursor, so no task lands in
        # the past. (The comparison is unrolled for the common arities —
        # this loop is the scheduler's hot path.)
        agenda = self._agenda
        arity = len(time)
        if arity == 2:
            t0, t1 = time
            for u in seen:
                if t0 <= u[0] and t1 <= u[1]:
                    slot = agenda.get(u)
                    if slot is None:
                        agenda[u] = {key}
                    else:
                        slot.add(key)
        elif arity == 3:
            t0, t1, t2 = time
            for u in seen:
                if t0 <= u[0] and t1 <= u[1] and t2 <= u[2]:
                    slot = agenda.get(u)
                    if slot is None:
                        agenda[u] = {key}
                    else:
                        slot.add(key)
        else:
            for u in seen:
                if leq(time, u):
                    slot = agenda.get(u)
                    if slot is None:
                        agenda[u] = {key}
                    else:
                        slot.add(key)

    def tasks_at(self, time: Time) -> Set[Any]:
        """Pop and return the keys scheduled at exactly ``time``."""
        return self._agenda.pop(time, set())

    def pending_times(self) -> Iterable[Time]:
        return self._agenda.keys()

    def has_pending(self) -> bool:
        return bool(self._agenda)


def consolidate_diff(diff: Diff) -> Diff:
    """Re-export used by operator modules."""
    return consolidate(diff)
