"""Partially ordered timestamps for differential computation.

Timestamps are tuples of non-negative ints under the *product* partial
order: ``s <= t`` iff every component of ``s`` is <= the matching component
of ``t``. The first component is the epoch (the view index when running a
view collection); each ``iterate`` scope appends one loop-counter component,
so e.g. a doubly-iterative SCC runs with 3-dimensional times
``(view, outer_iter, inner_iter)`` exactly as in the paper's Table 1.

Lexicographic order on the tuples is a linear extension of the product order
and is the order in which the engine processes work.
"""

from __future__ import annotations

from typing import Iterable, Tuple

Time = Tuple[int, ...]


def leq(s: Time, t: Time) -> bool:
    """Product partial order: ``s <= t`` componentwise.

    Times from different scope depths are never comparable; the engine only
    compares times within one scope, where arities match.

    Arities 1-3 (root, one loop, nested loops) are unrolled: this is the
    innermost comparison of the engine and the generic zip/genexpr form
    dominated profiles.
    """
    n = len(s)
    if n != len(t):
        return False
    if n == 2:
        return s[0] <= t[0] and s[1] <= t[1]
    if n == 1:
        return s[0] <= t[0]
    if n == 3:
        return s[0] <= t[0] and s[1] <= t[1] and s[2] <= t[2]
    return all(a <= b for a, b in zip(s, t))


def lt(s: Time, t: Time) -> bool:
    """Strict product order."""
    return s != t and leq(s, t)


def lub(s: Time, t: Time) -> Time:
    """Least upper bound (join) under the product order."""
    n = len(s)
    if n != len(t):
        raise ValueError(f"cannot join times of different arity: {s} vs {t}")
    if n == 2:
        a, b = s
        c, d = t
        return (a if a >= c else c, b if b >= d else d)
    if n == 1:
        return s if s[0] >= t[0] else t
    if n == 3:
        a, b, e = s
        c, d, f = t
        return (a if a >= c else c, b if b >= d else d, e if e >= f else f)
    return tuple(max(a, b) for a, b in zip(s, t))


def glb(s: Time, t: Time) -> Time:
    """Greatest lower bound (meet) under the product order."""
    if len(s) != len(t):
        raise ValueError(f"cannot meet times of different arity: {s} vs {t}")
    return tuple(min(a, b) for a, b in zip(s, t))


def lub_closure(times: Iterable[Time]) -> set:
    """Close a finite set of times under pairwise joins.

    Differential operators may need to produce output corrections at any
    join of input-difference times, even when no input difference exists at
    exactly that time (see DESIGN.md §5). This helper computes the full
    closure; the engine's keyed operators build it incrementally instead,
    but tests validate against this reference.
    """
    closed = set(times)
    frontier = list(closed)
    while frontier:
        t = frontier.pop()
        for s in list(closed):
            j = lub(s, t)
            if j not in closed:
                closed.add(j)
                frontier.append(j)
    return closed


def extend(t: Time, inner: int = 0) -> Time:
    """Append a loop coordinate (``enter`` in DD terminology)."""
    return t + (inner,)


def truncate(t: Time) -> Time:
    """Drop the innermost loop coordinate (``leave`` in DD terminology)."""
    if len(t) < 2:
        raise ValueError(f"cannot truncate a root-scope time: {t}")
    return t[:-1]
