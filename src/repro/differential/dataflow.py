"""Dataflow construction and the epoch driver.

A :class:`Dataflow` owns the operator DAG, the scope tree, and the work
meter. Inputs are fed one *epoch* at a time with :meth:`Dataflow.step`; when
executing a Graphsurge view collection, epoch ``t`` is view ``t`` and the
fed differences are the collection's edge difference sets (paper §3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.differential.collection import Collection
from repro.differential.multiset import Diff
from repro.differential.operators.base import Operator
from repro.differential.operators.io import CaptureOp, InputOp
from repro.errors import DataflowError
from repro.timely.cluster import ProcessCluster, validate_backend
from repro.timely.meter import WorkMeter


class Scope:
    """A nesting level of the dataflow; each ``iterate`` adds one."""

    def __init__(self, dataflow: "Dataflow", parent: Optional["Scope"]):
        self.dataflow = dataflow
        self.parent = parent
        self.depth = 1 if parent is None else parent.depth + 1
        self.children: List["Scope"] = []
        if parent is not None:
            parent.children.append(self)

    def enter(self, collection: Collection) -> Collection:
        """Bring a collection from an ancestor scope into this scope.

        Chains one ``enter`` per nesting level, so a root-scope collection
        can be brought directly into a doubly-nested scope.
        """
        from repro.differential.operators.iterate import EnterOp

        path: List[Scope] = []
        scope: Optional[Scope] = self
        while scope is not None and scope is not collection.scope:
            path.append(scope)
            scope = scope.parent
        if scope is None:
            raise DataflowError(
                "enter() requires the collection to come from an ancestor "
                "scope")
        current = collection
        for target in reversed(path):
            op = EnterOp(self.dataflow, current.scope, "enter", current.op)
            current = Collection(self.dataflow, op, target)
        return current

    def is_ancestor_of(self, other: "Scope") -> bool:
        scope: Optional[Scope] = other
        while scope is not None:
            if scope is self:
                return True
            scope = scope.parent
        return False


class Dataflow:
    """An executable differential dataflow."""

    def __init__(self, workers: int = 1, meter: Optional[WorkMeter] = None,
                 budget=None, fault_plan=None, tracer=None,
                 backend: str = "inline"):
        self.meter = (meter if meter is not None
                      else WorkMeter(workers, fault_plan=fault_plan,
                                     tracer=tracer))
        if tracer is not None:
            self.meter.tracer = tracer
        validate_backend(backend, self.meter.workers)
        #: Execution backend: ``"inline"`` runs all worker shards in this
        #: process; ``"process"`` forks one OS process per worker at the
        #: first :meth:`step` and routes keyed operator work over exchange
        #: channels (see :mod:`repro.timely.cluster`, ``docs/parallel.md``).
        #: Counters and outputs are byte-identical between backends.
        self.backend = backend
        #: The live :class:`~repro.timely.cluster.ProcessCluster`, or
        #: ``None`` on the inline backend (and before the first step).
        #: Keyed operators branch on this to route their per-key kernels.
        self.cluster = None
        #: Optional :class:`repro.observe.tracer.TraceSink`. When set, the
        #: scope drivers and :meth:`Operator.send` bracket every operator
        #: apply with an attribution context; when ``None`` every hook is
        #: a single ``is None`` test and the engine behaves identically.
        self.tracer = (tracer if tracer is not None
                       else getattr(self.meter, "tracer", None))
        #: Optional :class:`repro.core.resilience.RunBudget`; shared across
        #: dataflow restarts by the executor, so work charged here
        #: accumulates over a whole collection run.
        self.budget = budget
        #: Optional :class:`repro.core.resilience.FaultPlan` ("epoch" site
        #: fires at the top of every :meth:`step`).
        self.fault_plan = fault_plan
        self._budget_charged = 0
        #: Optional :class:`repro.verify.sanitize.ShadowSanitizer`. When
        #: set (``sanitize=True`` runs), every completed :meth:`step` is
        #: replayed on an inline shadow dataflow and the per-superstep
        #: trace frames are diffed; ``None`` costs one ``is None`` test.
        self.sanitizer = None
        self.root = Scope(self, None)
        self._ops_by_scope: Dict[Scope, List[Operator]] = {self.root: []}
        self._op_count = 0
        self._subtree_cache: Dict[Scope, List[Operator]] = {}
        self.inputs: Dict[str, InputOp] = {}
        self.epoch = -1
        self._frozen = False

    # -- construction ---------------------------------------------------------

    def register(self, op: Operator, scope: Scope) -> int:
        if self._frozen:
            raise DataflowError(
                "cannot add operators after the dataflow started stepping")
        self._ops_by_scope.setdefault(scope, []).append(op)
        self._subtree_cache.clear()
        self._op_count += 1
        return self._op_count - 1

    def new_scope(self, parent: Scope) -> Scope:
        scope = Scope(self, parent)
        self._ops_by_scope.setdefault(scope, [])
        return scope

    def move_to_scope_end(self, op: Operator) -> None:
        """Re-append an operator so it is flushed after its scope peers.

        Used by ``iterate``: the IterateOp is created before the body (and
        before the body's ``enter`` operators in the parent scope), but must
        run after the entered sources have delivered this epoch's deltas.
        """
        ops = self._ops_by_scope[op.scope]
        ops.remove(op)
        ops.append(op)
        self._subtree_cache.clear()

    def new_input(self, name: str) -> Collection:
        """Declare a named root-scope input."""
        if name in self.inputs:
            raise DataflowError(f"duplicate input name {name!r}")
        op = InputOp(self, self.root, name)
        self.inputs[name] = op
        return Collection(self, op, self.root)

    def capture(self, collection: Collection, name: str = "out") -> CaptureOp:
        """Attach an output sink to a root-scope collection."""
        if collection.scope is not self.root:
            raise DataflowError("outputs must be captured at the root scope")
        return collection.capture(name)

    # -- execution -------------------------------------------------------------

    def scope_subtree_ops(self, scope: Scope) -> List[Operator]:
        cached = self._subtree_cache.get(scope)
        if cached is None:
            cached = []
            stack = [scope]
            while stack:
                current = stack.pop()
                cached.extend(self._ops_by_scope.get(current, ()))
                stack.extend(current.children)
            self._subtree_cache[scope] = cached
        return cached

    def step(self, input_diffs: Optional[Dict[str, Diff]] = None) -> int:
        """Advance one epoch, feeding the given per-input differences.

        Returns the epoch index just processed. Runs the dataflow to
        quiescence: every operator's scheduled work for this epoch (at any
        loop depth) is drained before returning.
        """
        if self.fault_plan is not None:
            # Epoch boundary: fires before any state mutates, so the fault
            # models a crash *between* views.
            self.fault_plan.fire("epoch", context=f"epoch {self.epoch + 1}")
        if self.budget is not None:
            self.budget.start()
        self._frozen = True
        if self.backend == "process" and self.cluster is None:
            self._start_cluster()
        self.epoch += 1
        time = (self.epoch,)
        tracer = self.tracer
        if input_diffs:
            for name, diff in input_diffs.items():
                op = self.inputs.get(name)
                if op is None:
                    raise DataflowError(f"unknown input {name!r}")
                if tracer is not None:
                    tracer.enter_operator(op.name, op.scope.depth, time)
                    try:
                        op.push(time, diff)
                    finally:
                        tracer.exit_operator()
                else:
                    op.push(time, diff)
        root_ops = self._ops_by_scope[self.root]
        subtree = self.scope_subtree_ops(self.root)
        max_passes = 4 * len(subtree) + 8
        for _pass in range(max_passes):
            # One pass over the root scope at this timestamp is one
            # superstep: timely workers run all operators of the pass
            # data-parallel and synchronize at its end. Nested loop passes
            # (inside IterateOp.flush) open their own superstep frames.
            self.meter.begin_step()
            if tracer is None:
                for op in root_ops:
                    op.flush(time)
            else:
                for op in root_ops:
                    tracer.enter_operator(op.name, op.scope.depth, time)
                    try:
                        op.flush(time)
                    finally:
                        tracer.exit_operator()
            self.meter.end_step()
            self.enforce_budget(f"epoch {self.epoch}")
            if not self._has_pending(subtree, time):
                if self.sanitizer is not None:
                    self.sanitizer.after_step(self, input_diffs)
                return self.epoch
        raise DataflowError(
            f"dataflow failed to quiesce at epoch {self.epoch}")

    def _start_cluster(self) -> None:
        """Fork the worker processes (process backend, first step only).

        Deferred to the first step so the fork copies the *complete* frozen
        operator graph — including user closures, which could never be
        pickled — while every keyed trace is still empty. From here on the
        coordinator's copies of keyed traces stay empty: resident state
        accumulates only on the owning workers, so memory is genuinely
        sharded.
        """
        from repro.differential.operators.arrange import (
            ArrangeOp,
            JoinArrangedOp,
        )
        from repro.differential.operators.iterate import VariableOp
        from repro.differential.operators.join import JoinOp
        from repro.differential.operators.reduce import ReduceOp

        registry = {}
        for ops in self._ops_by_scope.values():
            for op in ops:
                if isinstance(op, (JoinOp, JoinArrangedOp, ReduceOp,
                                   VariableOp, ArrangeOp)):
                    registry[op.index] = op
        self.cluster = ProcessCluster(
            self.meter.workers, registry,
            superstep=lambda: self.meter.supersteps)

    def compact(self, before_epoch: int) -> None:
        """Compact every trace's history below ``before_epoch``.

        The streaming driver's memory bound: after epochs below the
        bound are closed (no future query will read a per-epoch value
        there), each operator's per-key history — and each capture's
        per-epoch diff log — folds into epoch-0 representatives, so
        resident state grows with the live graph and the compaction lag,
        not with the total number of epochs ever streamed. The bound is
        clamped to the last completed epoch; re-running at an
        already-applied bound is cheap (per-trace guards).

        On the process backend the keyed traces live in the worker
        processes, so the bound is also broadcast to the cluster; the
        coordinator still compacts captures and any inline-resident
        traces.
        """
        bound = min(before_epoch, self.epoch)
        if bound <= 0:
            return
        for ops in self._ops_by_scope.values():
            for op in ops:
                op.compact_below(bound)
        if self.cluster is not None:
            self.cluster.compact(bound)
        if self.sanitizer is not None:
            self.sanitizer.compact(before_epoch)

    def close(self) -> None:
        """Release backend resources (worker processes). Idempotent.

        A no-op on the inline backend. The executor and the serving layer
        call this whenever a dataflow is discarded; daemonic workers are
        the backstop for paths that do not.
        """
        cluster, self.cluster = self.cluster, None
        if cluster is not None:
            cluster.close()
        sanitizer, self.sanitizer = self.sanitizer, None
        if sanitizer is not None:
            sanitizer.close()

    def set_budget(self, budget) -> None:
        """Attach (or with ``None`` detach) a budget to a live dataflow.

        Long-lived dataflows (the serving layer's resident sessions) swap a
        fresh per-request budget in before each ``step``; charging restarts
        from the current meter reading so the new budget only pays for work
        done on its watch.
        """
        self.budget = budget
        self._budget_charged = self.meter.total_work

    def enforce_budget(self, site: str) -> None:
        """Charge newly metered work to the budget and enforce its limits.

        Charges the delta since the previous call so the budget stays
        correct across nested callers (the epoch driver and every iterate
        scope call this). Raises ``BudgetExceededError`` on breach.
        """
        if self.budget is None:
            return
        total = self.meter.total_work
        delta = total - self._budget_charged
        self._budget_charged = total
        self.budget.charge(delta, site=site)

    @staticmethod
    def _has_pending(ops: Iterable[Operator], prefix) -> bool:
        plen = len(prefix)
        for op in ops:
            for t in op.pending_times():
                if t[:plen] == prefix:
                    return True
        return False
