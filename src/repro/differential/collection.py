"""The fluent Collection API — the differential dataflow surface.

A :class:`Collection` wraps an operator output inside a scope and offers the
operator vocabulary of Differential Dataflow. Keyed operators (``join``,
``reduce`` and friends, ``iterate``) require records to be ``(key, value)``
2-tuples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Optional

from repro.differential.operators.base import Operator
from repro.differential.operators.io import CaptureOp
from repro.differential.operators.iterate import IterateOp
from repro.differential.operators.join import JoinOp
from repro.differential.operators.linear import (
    ConcatOp,
    FilterOp,
    FlatMapOp,
    InspectOp,
    MapOp,
    NegateOp,
)
from repro.differential.operators.reduce import ReduceOp
from repro.errors import DataflowError

if TYPE_CHECKING:  # pragma: no cover
    from repro.differential.dataflow import Dataflow, Scope


class Collection:
    """A handle on one dataflow stream of timestamped differences."""

    def __init__(self, dataflow: "Dataflow", op: Operator, scope: "Scope"):
        self.dataflow = dataflow
        self.op = op
        self.scope = scope

    # -- linear operators ----------------------------------------------------

    def map(self, f: Callable[[Any], Any], name: str = "map") -> "Collection":
        """Transform every record with ``f``."""
        return self._wrap(MapOp(self.dataflow, self.scope, name, self.op, f))

    def flat_map(self, f: Callable[[Any], Iterable[Any]],
                 name: str = "flat_map") -> "Collection":
        """Replace every record by zero or more records."""
        return self._wrap(
            FlatMapOp(self.dataflow, self.scope, name, self.op, f))

    def filter(self, predicate: Callable[[Any], bool],
               name: str = "filter") -> "Collection":
        """Keep records for which ``predicate`` holds."""
        return self._wrap(
            FilterOp(self.dataflow, self.scope, name, self.op, predicate))

    def concat(self, *others: "Collection") -> "Collection":
        """Multiset union with other collections of the same scope."""
        for other in others:
            self._check_same_scope(other)
        ops = [self.op] + [other.op for other in others]
        return self._wrap(ConcatOp(self.dataflow, self.scope, "concat", ops))

    def negate(self) -> "Collection":
        """Flip all multiplicities (for multiset subtraction)."""
        return self._wrap(NegateOp(self.dataflow, self.scope, "negate",
                                   self.op))

    def inspect(self, callback, name: str = "inspect") -> "Collection":
        """Tap the difference stream (debugging/testing aid)."""
        return self._wrap(
            InspectOp(self.dataflow, self.scope, name, self.op, callback))

    # -- keyed operators -----------------------------------------------------

    def join(self, other: "Collection",
             f: Optional[Callable[[Any, Any, Any], Any]] = None,
             name: str = "join") -> "Collection":
        """Equi-join on the key; ``f(key, va, vb)`` builds result records.

        Defaults to producing ``(key, (va, vb))``.
        """
        self._check_same_scope(other)
        if f is None:
            f = lambda k, va, vb: (k, (va, vb))  # noqa: E731
        return self._wrap(JoinOp(self.dataflow, self.scope, name,
                                 self.op, other.op, f))

    def join_map(self, other: "Collection",
                 f: Callable[[Any, Any, Any], Any]) -> "Collection":
        """Alias of :meth:`join` with an explicit result builder."""
        return self.join(other, f)

    def reduce(self, logic: Callable[[Any, Dict[Any, int]], Iterable[Any]],
               name: str = "reduce") -> "Collection":
        """Group by key and apply ``logic(key, {value: mult})``.

        ``logic`` returns the group's output values; the result carries
        ``(key, out_value)`` records.
        """
        return self._wrap(
            ReduceOp(self.dataflow, self.scope, name, self.op, logic))

    def min_by_key(self, name: str = "min") -> "Collection":
        """Keep ``(key, min(values))`` per key."""
        return self.reduce(lambda key, vals: [min(vals)], name=name)

    def max_by_key(self, name: str = "max") -> "Collection":
        """Keep ``(key, max(values))`` per key."""
        return self.reduce(lambda key, vals: [max(vals)], name=name)

    def count_by_key(self, name: str = "count") -> "Collection":
        """Produce ``(key, total multiplicity)`` per key."""
        return self.reduce(
            lambda key, vals: [sum(vals.values())], name=name)

    def sum_by_key(self, name: str = "sum") -> "Collection":
        """Produce ``(key, Σ value·multiplicity)`` per key."""
        return self.reduce(
            lambda key, vals: [sum(v * m for v, m in vals.items())],
            name=name)

    def top_k(self, k: int, name: str = "top_k") -> "Collection":
        """Keep, per key, the ``k`` largest values (ties by value order)."""
        if k < 1:
            raise ValueError("k must be >= 1")

        def logic(key, vals):
            kept = []
            for value in sorted(vals, reverse=True):
                copies = min(vals[value], k - len(kept))
                kept.extend([value] * copies)
                if len(kept) >= k:
                    break
            return kept

        return self.reduce(logic, name=name)

    def threshold(self, minimum: int, name: str = "threshold") -> "Collection":
        """Keep ``(key, value)`` records whose multiplicity is >= minimum,
        collapsed to multiplicity one."""
        if minimum < 1:
            raise ValueError("minimum must be >= 1")
        return self.reduce(
            lambda key, vals: [value for value, mult in sorted(vals.items())
                               if mult >= minimum],
            name=name)

    def distinct(self, name: str = "distinct") -> "Collection":
        """Collapse multiplicities to one per distinct record."""
        keyed = self.map(lambda rec: (rec, None), name=name + ".key")
        reduced = keyed.reduce(lambda key, vals: [None], name=name)
        return reduced.map(lambda rec: rec[0], name=name + ".unkey")

    def semijoin(self, keys: "Collection", name: str = "semijoin") -> "Collection":
        """Keep ``(key, value)`` records whose key appears in ``keys``.

        ``keys`` carries bare key records (any multiplicities; they are
        collapsed with ``distinct`` first).
        """
        marker = keys.map(lambda k: (k, None), name=name + ".mark").distinct(
            name=name + ".dedup").map(lambda rec: rec, name=name + ".id")
        return self.join(marker, lambda k, v, _marker: (k, v), name=name)

    def antijoin(self, keys: "Collection", name: str = "antijoin") -> "Collection":
        """Keep ``(key, value)`` records whose key does NOT appear in ``keys``."""
        present = self.semijoin(keys, name=name + ".present")
        return self.concat(present.negate())

    # -- arrangements ----------------------------------------------------------

    def arrange(self, name: str = "arrange") -> "Arrangement":
        """Materialize this keyed collection's trace for shared reuse.

        Several joins can read one arrangement
        (``other.join_arranged(arr)``) without each building a private
        index — Differential Dataflow's ``arrange_by_key``.
        """
        from repro.differential.operators.arrange import ArrangeOp

        op = ArrangeOp(self.dataflow, self.scope, name, self.op)
        return Arrangement(self.dataflow, op, self.scope)

    def arrange_by_key(self, name: str = "arrange") -> "Arrangement":
        """Differential Dataflow's canonical name for :meth:`arrange`."""
        return self.arrange(name)

    def join_arranged(self, arrangement: "Arrangement",
                      f: Optional[Callable[[Any, Any, Any], Any]] = None,
                      name: str = "join_arranged") -> "Collection":
        """Equi-join this collection against a shared arrangement.

        For a self-join, join the *pre-arrangement* collection against its
        own arrangement (``coll.join_arranged(coll.arrange())``): the
        arrangement stores each difference before forwarding it, so
        joining the arrangement's own output stream back against it would
        pair a difference with itself on both ports.
        """
        from repro.differential.operators.arrange import JoinArrangedOp

        if arrangement.scope is not self.scope:
            raise DataflowError(
                "arrangement and collection are in different scopes")
        if self.op is arrangement.op:
            raise DataflowError(
                f"cannot join an arrangement's own output stream against "
                f"itself ({self.op.name}); self-join the collection that "
                f"was arranged instead")
        if f is None:
            f = lambda k, va, vb: (k, (va, vb))  # noqa: E731
        op = JoinArrangedOp(self.dataflow, self.scope, name, self.op,
                            arrangement.op, f)
        return self._wrap(op)

    # -- iteration -----------------------------------------------------------

    def iterate(self, body: Callable[["Collection", "Scope"], "Collection"],
                max_iters: Optional[int] = None,
                name: str = "iterate") -> "Collection":
        """Compute the fixed point of ``body`` seeded with this collection.

        ``body(inner, scope)`` receives the loop variable and the child
        scope (use ``scope.enter(col)`` to bring outer collections in) and
        returns the next value of the variable. Iteration stops when the
        differences are empty — i.e. at the fixed point — or after
        ``max_iters`` iterations when given (useful for computations like
        PageRank that are run for a fixed number of rounds).
        """
        it_op = IterateOp(self.dataflow, self.scope, name, self.op, max_iters)
        inner = Collection(self.dataflow, it_op.variable, it_op.child_scope)
        result = body(inner, it_op.child_scope)
        if not isinstance(result, Collection):
            raise DataflowError(
                f"iterate body must return a Collection, got {type(result)!r}")
        if result.scope is not it_op.child_scope:
            raise DataflowError(
                "iterate body must return a collection of the loop's scope; "
                "did you forget scope.enter(...)?")
        it_op.finalize(result.op)
        self.dataflow.move_to_scope_end(it_op)
        return self._wrap(it_op)

    # -- endpoints ------------------------------------------------------------

    def capture(self, name: str = "capture") -> CaptureOp:
        """Attach a sink recording this collection's difference stream."""
        return CaptureOp(self.dataflow, self.scope, name, self.op)

    # -- internals -------------------------------------------------------------

    def _wrap(self, op: Operator) -> "Collection":
        return Collection(self.dataflow, op, self.scope)

    def _check_same_scope(self, other: "Collection") -> None:
        if other.scope is not self.scope:
            raise DataflowError(
                f"collections are in different scopes: {self.op.name} is at "
                f"scope depth {self.scope.depth} but {other.op.name} is at "
                f"scope depth {other.scope.depth}; bring the outer "
                f"collection in with scope.enter() (or leave() the inner "
                f"one) before combining them")


class Arrangement:
    """A shared, indexed trace of a keyed collection (see
    :meth:`Collection.arrange`)."""

    def __init__(self, dataflow: "Dataflow", op, scope: "Scope"):
        self.dataflow = dataflow
        self.op = op
        self.scope = scope

    def as_collection(self) -> Collection:
        """The arranged stream itself (ArrangeOp forwards differences)."""
        return Collection(self.dataflow, self.op, self.scope)

    def enter(self, scope: "Scope") -> "Arrangement":
        """Bring this arrangement into a descendant (iterate) scope.

        The stored trace is *shared*, not copied — this is the point of
        arrangements: an edges relation arranged once at the root can feed
        joins inside every loop of the dataflow. Only the difference
        stream is re-timestamped (a zero loop coordinate per level, as
        with ``scope.enter``); joins pad the trace's shorter stored times
        on the fly.
        """
        from repro.differential.operators.arrange import ArrangeEnterOp

        path = []
        cursor: "Scope | None" = scope
        while cursor is not None and cursor is not self.scope:
            path.append(cursor)
            cursor = cursor.parent
        if cursor is None:
            raise DataflowError(
                "Arrangement.enter() requires a descendant scope")
        current = self
        for target in reversed(path):
            op = ArrangeEnterOp(self.dataflow, current.scope,
                                current.op.name + ".enter", current.op)
            current = Arrangement(self.dataflow, op, target)
        return current

    def semijoin(self, keys: Collection, name: str = "semijoin") -> Collection:
        """Arranged counterpart of :meth:`Collection.semijoin`.

        Keeps the arranged relation's records whose key appears in
        ``keys``; the (usually small) key set streams against the shared
        trace, so the big relation is never re-indexed. Work accounting is
        identical to the unarranged form — the join's cost is symmetric in
        which side streams.
        """
        marker = keys.map(lambda k: (k, None), name=name + ".mark").distinct(
            name=name + ".dedup").map(lambda rec: rec, name=name + ".id")
        return marker.join_arranged(
            self, lambda k, _marker, v: (k, v), name=name)

    def record_count(self) -> int:
        """Stored difference entries — for memory diagnostics/tests."""
        return self.op.trace.record_count()
