"""Iterative scopes: ``enter``, the loop variable, and ``iterate`` itself.

An ``iterate`` scope computes the fixed point of a body function::

    V(e, 0)   = In(e)
    V(e, i+1) = Body(V)(e, i)

Per epoch, the scope driver advances the loop counter until no operator in
the scope's subtree holds scheduled work for this epoch — i.e. until the
computation's differences are empty, which by the differential-computation
model means the fixed point is reached. Prior epochs' difference histories
are respected: a later epoch re-runs exactly the (key, iteration) pairs at
which its trajectory diverges from (or must cancel) earlier epochs'.

``leave`` projects the inner time away by summing a key's inner-scope
differences per outer timestamp, which is exactly the value of the loop
variable "at iteration infinity".
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.differential.multiset import Diff, add_into, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time
from repro.differential.trace import TimeSchedule, Trace
from repro.errors import DataflowError

#: Hard cap on loop iterations when the user supplies no ``max_iters`` —
#: purely a safety net against non-converging computations.
SAFETY_MAX_ITERS = 100_000


class EnterOp(Operator):
    """Bring a parent-scope collection into a child scope.

    A parent difference at time ``t`` becomes a child difference at
    ``t + (0,)``; the product partial order then makes it visible at every
    iteration, so entered collections (e.g. the edges) are constant across
    the loop.
    """

    def __init__(self, dataflow, parent_scope, name, source):
        super().__init__(dataflow, parent_scope, name, [source])

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        self.send(time + (0,), diff)


class VariableOp(Operator):
    """The loop variable ``V`` of an iterate scope.

    Keyed operator with two logical inputs:

    * port 0 — the initial value ``In`` (parent scope, timestamps shifted
      into the child scope at iteration 0);
    * port 1 — the body result ``B`` (child scope, shifted one iteration
      forward: ``δB(e, i)`` drives a recomputation of ``V`` at ``(e, i+1)``).

    At iteration 0 the target value is ``In``; at iteration ``i >= 1`` the
    target is ``B`` accumulated at ``(e, i-1)``.
    """

    def __init__(self, dataflow, child_scope, name):
        super().__init__(dataflow, child_scope, name, [])
        self.in_trace = Trace(name + ".in")
        self.body_trace = Trace(name + ".body")
        self.out_trace = Trace(name + ".out")
        self.schedule = TimeSchedule()

    def connect_body(self, body_op: Operator) -> None:
        if len(self.inputs) > 0:
            raise DataflowError(f"variable {self.name} already has a body")
        self.inputs.append(body_op)
        body_op.downstream.append((self, 1))

    def push_initial(self, parent_time: Time, diff: Diff) -> None:
        """Deliver the initial-value diff (from the parent scope)."""
        time = parent_time + (0,)
        switch = parent_time + (1,)
        grouped = self._group(diff)
        cluster = self.dataflow.cluster
        if cluster is None:
            self.in_trace.update_batch(time, grouped)
        else:
            cluster.post_updates(self.index, "in", time, grouped)
        schedule = self.schedule.schedule
        for key in grouped:
            schedule(key, time)
            # At iteration 1 the variable's definition switches from the
            # initial value to the body result; a key the body never
            # reproduces must be retracted there even though the body
            # emits no difference for it.
            schedule(key, switch)

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        if port != 1:
            raise AssertionError("variable body deltas arrive on port 1")
        shifted = time[:-1] + (time[-1] + 1,)
        grouped = self._group(diff)
        cluster = self.dataflow.cluster
        if cluster is None:
            self.body_trace.update_batch(time, grouped)
        else:
            cluster.post_updates(self.index, "body", time, grouped)
        schedule = self.schedule.schedule
        for key in grouped:
            schedule(key, shifted)

    @staticmethod
    def _group(diff: Diff) -> Dict[Any, Diff]:
        grouped: Dict[Any, Diff] = {}
        for rec, mult in diff.items():
            try:
                key, value = rec
            except (TypeError, ValueError):
                raise TypeError(
                    f"iterate collections must carry (key, value) records; "
                    f"got {rec!r}"
                ) from None
            slot = grouped.get(key)
            if slot is None:
                grouped[key] = {value: mult}
            else:
                slot[value] = slot.get(value, 0) + mult
        return grouped

    def flush(self, time: Time) -> None:
        keys = self.schedule.tasks_at(time)
        if not keys:
            return
        meter = self.dataflow.meter
        cluster = self.dataflow.cluster
        out_diff: Diff = {}
        if cluster is None:
            for key in keys:
                emit = self._flush_key(key, time, meter.record)
                for value, mult in emit.items():
                    rec = (key, value)
                    out_diff[rec] = out_diff.get(rec, 0) + mult
        else:
            ordered = list(keys)
            replies = cluster.run_tasks(self.index, ("flush", time),
                                        [(key, None) for key in ordered])
            for key in ordered:
                events, emit = replies[key]
                for units in events:
                    meter.record(key, units)
                for value, mult in emit.items():
                    rec = (key, value)
                    out_diff[rec] = out_diff.get(rec, 0) + mult
        self.send(time, consolidate(out_diff))

    def _flush_key(self, key: Any, time: Time, record) -> Diff:
        """Per-key loop-variable kernel (runs on the key's owner)."""
        iteration = time[-1]
        epoch = time[0]
        self.in_trace.maybe_compact(key, epoch)
        self.body_trace.maybe_compact(key, epoch)
        self.out_trace.maybe_compact(key, epoch)
        if iteration == 0:
            target = self.in_trace.accumulate(key, time)
        else:
            body_time = time[:-1] + (iteration - 1,)
            target = self.body_trace.accumulate(key, body_time)
        consolidate(target)
        record(key, max(1, len(target)))
        current = self.out_trace.accumulate_strict(key, time)
        delta = dict(target)
        add_into(delta, current, factor=-1)
        prior = self.out_trace.get(key)
        stored = prior.take(time) if prior is not None else {}
        emit = dict(delta)
        add_into(emit, stored, factor=-1)
        if delta:
            self.out_trace.update(key, time, delta)
        if emit:
            record(key, len(emit))
        return emit

    # -- process-backend entry points (run inside the worker) -----------------

    def remote_update(self, payload) -> None:
        tag, time, grouped = payload
        if tag == "in":
            self.in_trace.update_batch(time, grouped)
        else:
            self.body_trace.update_batch(time, grouped)

    def remote_task(self, payload):
        (_kind, time), items = payload
        out = {}
        for key, _none in items:
            events: List[int] = []
            emit = self._flush_key(key, time,
                                   lambda _key, units: events.append(units))
            out[key] = (tuple(events), emit)
        return out

    def remote_stats(self) -> int:
        return (self.in_trace.record_count()
                + self.body_trace.record_count()
                + self.out_trace.record_count())

    def local_traces(self):
        return (self.in_trace, self.body_trace, self.out_trace)

    def pending_times(self) -> Iterable[Time]:
        return self.schedule.pending_times()

    def discard_pending_beyond(self, prefix: Time, max_iter: int) -> None:
        drop = [
            t for t in self.schedule.pending_times()
            if t[:len(prefix)] == prefix and t[len(prefix)] > max_iter
        ]
        for t in drop:
            self.schedule.tasks_at(t)


class _LeaveTap(Operator):
    """Child-scope sink buffering the variable's diffs per outer time."""

    def __init__(self, dataflow, child_scope, name, source):
        super().__init__(dataflow, child_scope, name, [source])
        self.buffers: Dict[Time, Diff] = {}

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        outer = time[:-1]
        slot = self.buffers.get(outer)
        if slot is None:
            self.buffers[outer] = dict(diff)
        else:
            add_into(slot, diff)

    def take(self, outer: Time) -> Diff:
        return consolidate(self.buffers.pop(outer, {}))


class IterateOp(Operator):
    """Parent-scope operator that drives a child iterate scope.

    Construction is done by :meth:`Collection.iterate`: it creates the child
    scope, the variable, runs the user body builder, then finalizes this
    operator. The operator's own output is the ``leave`` stream of the loop
    variable.
    """

    def __init__(self, dataflow, parent_scope, name, source,
                 max_iters: Optional[int] = None):
        super().__init__(dataflow, parent_scope, name, [source])
        self.max_iters = max_iters
        self.child_scope = dataflow.new_scope(parent_scope)
        self.variable = VariableOp(dataflow, self.child_scope, name + ".var")
        self.leave_tap: Optional[_LeaveTap] = None
        self._finalized = False

    def finalize(self, body_op: Operator) -> None:
        """Wire the body result back into the variable; add the leave tap."""
        if self._finalized:
            raise DataflowError(f"iterate {self.name} finalized twice")
        self.variable.connect_body(body_op)
        self.leave_tap = _LeaveTap(
            self.dataflow, self.child_scope, self.name + ".leave",
            self.variable,
        )
        self._finalized = True

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        # Initial-value diffs from the parent scope.
        self.variable.push_initial(time, diff)

    def _subtree_ops(self) -> List[Operator]:
        return self.dataflow.scope_subtree_ops(self.child_scope)

    def flush(self, time: Time) -> None:
        if not self._finalized:
            raise DataflowError(f"iterate {self.name} was never finalized")
        prefix = time
        plen = len(prefix)
        limit = self.max_iters if self.max_iters is not None else SAFETY_MAX_ITERS
        subtree = self._subtree_ops()
        meter = self.dataflow.meter
        tracer = self.dataflow.tracer
        iteration = 0
        passes_at_same = 0
        while True:
            t = prefix + (iteration,)
            # One loop iteration pass = one superstep (nested loops open
            # their own frames inside).
            meter.begin_step()
            if tracer is None:
                for op in subtree:
                    if op.scope is self.child_scope:
                        op.flush(t)
            else:
                for op in subtree:
                    if op.scope is self.child_scope:
                        tracer.enter_operator(op.name, op.scope.depth, t)
                        try:
                            op.flush(t)
                        finally:
                            tracer.exit_operator()
            meter.end_step()
            # Run guards: a non-converging loop must raise a structured
            # error (with the iteration reached) instead of spinning to the
            # safety cap or hanging against a wall-clock limit.
            self.dataflow.enforce_budget(f"iterate {self.name} @ {t}")
            # Find the next iteration with scheduled work under this prefix.
            nxt: Optional[int] = None
            for op in subtree:
                for pt in op.pending_times():
                    if pt[:plen] == prefix:
                        it = pt[plen]
                        if it >= iteration and (nxt is None or it < nxt):
                            nxt = it
            if nxt is None:
                break
            if nxt == iteration:
                # New work was scheduled at the current pass's own time
                # (e.g. by an operator later in topological order); rerun
                # the pass. Chains are bounded by the DAG depth.
                passes_at_same += 1
                if passes_at_same > 4 * len(subtree) + 8:
                    raise DataflowError(
                        f"iterate {self.name}: no progress at time {t}"
                    )
                continue
            passes_at_same = 0
            budget = self.dataflow.budget
            if budget is not None:
                budget.check_iterations(nxt, site=f"iterate {self.name}")
            if nxt > limit:
                if self.max_iters is None:
                    raise DataflowError(
                        f"iterate {self.name} exceeded the safety cap of "
                        f"{SAFETY_MAX_ITERS} iterations without converging"
                    )
                for op in subtree:
                    op.discard_pending_beyond(prefix, limit)
                break
            iteration = nxt
        assert self.leave_tap is not None
        self.send(prefix, self.leave_tap.take(prefix))

    def pending_times(self) -> Iterable[Time]:
        # Ancestor drivers scan every operator in their scope subtree, which
        # already includes this scope's operators — reporting them here too
        # would double-count, so the IterateOp itself reports nothing.
        return ()

    def discard_pending_beyond(self, prefix: Time, max_iter: int) -> None:
        for op in self._subtree_ops():
            op.discard_pending_beyond(prefix, max_iter)
