"""The keyed reduce family.

``ReduceOp`` applies a user ``logic(key, values)`` to the accumulated
multiset of a key's values and emits ``(key, out_value)`` records. A key is
recomputed only at timestamps scheduled by the lub-closure scheduler —
untouched keys cost nothing, which is precisely the computation sharing
differential computation provides across the views of a collection.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.differential.multiset import Diff, add_into, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time
from repro.differential.trace import TimeSchedule, Trace


class ReduceOp(Operator):
    """Generic keyed reduction.

    ``logic(key, values)`` receives the accumulated input values for the key
    as a dict ``{value: multiplicity}`` with strictly positive
    multiplicities, and returns an iterable of output values (each emitted
    with multiplicity 1). When the accumulated input is empty the key's
    output is empty — ``logic`` is not called.
    """

    def __init__(self, dataflow, scope, name, source,
                 logic: Callable[[Any, Dict[Any, int]], Iterable[Any]]):
        super().__init__(dataflow, scope, name, [source])
        self.logic = logic
        self.in_trace = Trace(name + ".in")
        self.out_trace = Trace(name + ".out")
        self.schedule = TimeSchedule()

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        # Batched path: one trace touch and one schedule call per key
        # instead of one per record.
        grouped: Dict[Any, Diff] = {}
        for rec, mult in diff.items():
            try:
                key, value = rec
            except (TypeError, ValueError):
                raise TypeError(
                    f"reduce input records must be (key, value) pairs; "
                    f"operator {self.name} got {rec!r}"
                ) from None
            slot = grouped.get(key)
            if slot is None:
                grouped[key] = {value: mult}
            else:
                slot[value] = slot.get(value, 0) + mult
        cluster = self.dataflow.cluster
        if cluster is None:
            self.in_trace.update_batch(time, grouped)
        else:
            # Keyed state lives on the key's owning worker; the schedule
            # stays on the coordinator so pass structure is backend
            # independent. Pipes are FIFO, so this update lands before any
            # flush task that reads it.
            cluster.post_updates(self.index, "in", time, grouped)
        schedule = self.schedule.schedule
        for key in grouped:
            schedule(key, time)

    def flush(self, time: Time) -> None:
        keys = self.schedule.tasks_at(time)
        if not keys:
            return
        meter = self.dataflow.meter
        cluster = self.dataflow.cluster
        out_diff: Diff = {}
        if cluster is None:
            for key in keys:
                emit = self._flush_key(key, time, meter.record)
                for value, mult in emit.items():
                    rec = (key, value)
                    out_diff[rec] = out_diff.get(rec, 0) + mult
        else:
            ordered = list(keys)
            replies = cluster.run_tasks(self.index, ("flush", time),
                                        [(key, None) for key in ordered])
            for key in ordered:
                events, emit = replies[key]
                for units in events:
                    meter.record(key, units)
                for value, mult in emit.items():
                    rec = (key, value)
                    out_diff[rec] = out_diff.get(rec, 0) + mult
        self.send(time, consolidate(out_diff))

    def _flush_key(self, key: Any, time: Time,
                   record: Callable[[Any, int], None]) -> Diff:
        """Per-key reduction kernel (runs on the key's owner)."""
        epoch = time[0]
        self.in_trace.maybe_compact(key, epoch)
        self.out_trace.maybe_compact(key, epoch)
        acc_in = self.in_trace.accumulate(key, time)
        consolidate(acc_in)
        record(key, max(1, len(acc_in)))
        target: Diff = {}
        if acc_in:
            for value, mult in acc_in.items():
                if mult < 0:
                    raise ValueError(
                        f"reduce {self.name}: key {key!r} accumulated "
                        f"negative multiplicity {mult} for {value!r} "
                        f"at {time}"
                    )
            for out_value in self.logic(key, acc_in):
                target[out_value] = target.get(out_value, 0) + 1
        current = self.out_trace.accumulate_strict(key, time)
        # Desired diff at `time`: target minus what earlier times give.
        delta = dict(target)
        add_into(delta, current, factor=-1)
        # Replace whatever we previously stored at exactly `time`.
        prior = self.out_trace.get(key)
        stored = prior.take(time) if prior is not None else {}
        emit = dict(delta)
        add_into(emit, stored, factor=-1)
        if delta:
            self.out_trace.update(key, time, delta)
        if emit:
            record(key, len(emit))
        return emit

    # -- process-backend entry points (run inside the worker) -----------------

    def remote_update(self, payload) -> None:
        _tag, time, grouped = payload
        self.in_trace.update_batch(time, grouped)

    def remote_task(self, payload) -> Dict[Any, Tuple[tuple, Diff]]:
        (_kind, time), items = payload
        out: Dict[Any, Tuple[tuple, Diff]] = {}
        for key, _none in items:
            events: List[int] = []
            emit = self._flush_key(key, time,
                                   lambda _key, units: events.append(units))
            out[key] = (tuple(events), emit)
        return out

    def remote_stats(self) -> int:
        return self.in_trace.record_count() + self.out_trace.record_count()

    def local_traces(self):
        return (self.in_trace, self.out_trace)

    def pending_times(self) -> Iterable[Time]:
        return self.schedule.pending_times()

    def discard_pending_beyond(self, prefix: Time, max_iter: int) -> None:
        drop = [
            t for t in self.schedule.pending_times()
            if t[:len(prefix)] == prefix and t[len(prefix)] > max_iter
        ]
        for t in drop:
            self.schedule.tasks_at(t)
