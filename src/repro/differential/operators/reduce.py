"""The keyed reduce family.

``ReduceOp`` applies a user ``logic(key, values)`` to the accumulated
multiset of a key's values and emits ``(key, out_value)`` records. A key is
recomputed only at timestamps scheduled by the lub-closure scheduler —
untouched keys cost nothing, which is precisely the computation sharing
differential computation provides across the views of a collection.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Tuple

from repro.differential.multiset import Diff, add_into, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time
from repro.differential.trace import TimeSchedule, Trace


class ReduceOp(Operator):
    """Generic keyed reduction.

    ``logic(key, values)`` receives the accumulated input values for the key
    as a dict ``{value: multiplicity}`` with strictly positive
    multiplicities, and returns an iterable of output values (each emitted
    with multiplicity 1). When the accumulated input is empty the key's
    output is empty — ``logic`` is not called.
    """

    def __init__(self, dataflow, scope, name, source,
                 logic: Callable[[Any, Dict[Any, int]], Iterable[Any]]):
        super().__init__(dataflow, scope, name, [source])
        self.logic = logic
        self.in_trace = Trace(name + ".in")
        self.out_trace = Trace(name + ".out")
        self.schedule = TimeSchedule()

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        # Batched path: one trace touch and one schedule call per key
        # instead of one per record.
        grouped: Dict[Any, Diff] = {}
        for rec, mult in diff.items():
            try:
                key, value = rec
            except (TypeError, ValueError):
                raise TypeError(
                    f"reduce input records must be (key, value) pairs; "
                    f"operator {self.name} got {rec!r}"
                ) from None
            slot = grouped.get(key)
            if slot is None:
                grouped[key] = {value: mult}
            else:
                slot[value] = slot.get(value, 0) + mult
        self.in_trace.update_batch(time, grouped)
        schedule = self.schedule.schedule
        for key in grouped:
            schedule(key, time)

    def flush(self, time: Time) -> None:
        keys = self.schedule.tasks_at(time)
        if not keys:
            return
        meter = self.dataflow.meter
        epoch = time[0]
        out_diff: Diff = {}
        for key in keys:
            self.in_trace.maybe_compact(key, epoch)
            self.out_trace.maybe_compact(key, epoch)
            acc_in = self.in_trace.accumulate(key, time)
            consolidate(acc_in)
            meter.record(key, max(1, len(acc_in)))
            target: Diff = {}
            if acc_in:
                for value, mult in acc_in.items():
                    if mult < 0:
                        raise ValueError(
                            f"reduce {self.name}: key {key!r} accumulated "
                            f"negative multiplicity {mult} for {value!r} "
                            f"at {time}"
                        )
                for out_value in self.logic(key, acc_in):
                    target[out_value] = target.get(out_value, 0) + 1
            current = self.out_trace.accumulate_strict(key, time)
            # Desired diff at `time`: target minus what earlier times give.
            delta = dict(target)
            add_into(delta, current, factor=-1)
            # Replace whatever we previously stored at exactly `time`.
            prior = self.out_trace.get(key)
            stored = prior.take(time) if prior is not None else {}
            emit = dict(delta)
            add_into(emit, stored, factor=-1)
            if delta:
                self.out_trace.update(key, time, delta)
            if emit:
                meter.record(key, len(emit))
                for value, mult in emit.items():
                    rec = (key, value)
                    out_diff[rec] = out_diff.get(rec, 0) + mult
        self.send(time, consolidate(out_diff))

    def pending_times(self) -> Iterable[Time]:
        return self.schedule.pending_times()

    def discard_pending_beyond(self, prefix: Time, max_iter: int) -> None:
        drop = [
            t for t in self.schedule.pending_times()
            if t[:len(prefix)] == prefix and t[len(prefix)] > max_iter
        ]
        for t in drop:
            self.schedule.tasks_at(t)
