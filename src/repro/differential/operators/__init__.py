"""Differential dataflow operators.

Operators are nodes of the dataflow DAG. Three families exist:

* **Linear** operators (map, filter, concat, negate, ...) transform each
  incoming difference independently and forward it synchronously.
* **Bilinear** join processes each incoming difference against the opposite
  input's full difference trace, emitting products at the least upper bound
  of the two timestamps (this is how real Differential Dataflow joins work,
  and it is required for correctness under partially ordered times).
* **Keyed** operators (the reduce family and the loop variable) keep per-key
  traces and recompute a key's output only at timestamps scheduled by the
  lub-closure scheduler in :mod:`repro.differential.trace`.
"""

from repro.differential.operators.base import Operator
from repro.differential.operators.io import InputOp, CaptureOp
from repro.differential.operators.linear import (
    MapOp,
    FlatMapOp,
    FilterOp,
    ConcatOp,
    NegateOp,
    InspectOp,
)
from repro.differential.operators.join import JoinOp
from repro.differential.operators.reduce import ReduceOp
from repro.differential.operators.iterate import EnterOp, IterateOp, VariableOp

__all__ = [
    "Operator",
    "InputOp",
    "CaptureOp",
    "MapOp",
    "FlatMapOp",
    "FilterOp",
    "ConcatOp",
    "NegateOp",
    "InspectOp",
    "JoinOp",
    "ReduceOp",
    "EnterOp",
    "IterateOp",
    "VariableOp",
]
