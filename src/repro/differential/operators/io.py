"""Input and output endpoints of a dataflow."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.differential.multiset import Diff, add_into, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time, leq
from repro.timely.worker import canonical_order_key


class InputOp(Operator):
    """Root-scope source fed by :meth:`Dataflow.step`."""

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        raise AssertionError("InputOp has no upstream")

    def push(self, time: Time, diff: Diff) -> None:
        diff = consolidate(dict(diff))
        if diff:
            for rec in diff:
                self.dataflow.meter.record(rec)
            self.send(time, diff)


class CaptureOp(Operator):
    """Sink that records the difference stream of a collection.

    Stores diffs per timestamp; exposes both the raw difference stream (what
    the Graphsurge executor ships to the user per view) and accumulated
    values (for verification against reference algorithms).
    """

    def __init__(self, dataflow, scope, name, source: Operator):
        super().__init__(dataflow, scope, name, [source])
        self.trace: Dict[Time, Diff] = {}
        self._compacted_below = 0

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        if time[0] < self._compacted_below:
            # Out-of-frontier write (tests / replay): reopen the range.
            self._compacted_below = time[0]
        slot = self.trace.get(time)
        if slot is None:
            self.trace[time] = dict(diff)
        else:
            add_into(slot, diff)
            if not slot:
                del self.trace[time]

    def compact_below(self, epoch: int) -> None:
        """Fold diffs of epochs before ``epoch`` into one representative.

        The capture trace is the one store that otherwise grows with the
        number of epochs forever: one entry per stepped epoch, scanned in
        full by every :meth:`accumulated`. Once epochs below ``epoch``
        are closed (the stream will never ask for a per-epoch value
        there again), their diffs sum into the time ``(0,)`` — after
        which :meth:`accumulated` at any live time sees the identical
        sum, but holds O(live epochs) entries. Exact per-epoch reads
        (:meth:`diff_at`) below the bound are forfeited, by design.
        """
        if epoch <= self._compacted_below:
            return
        self._compacted_below = epoch
        merged: Dict[Time, Diff] = {}
        for time, diff in self.trace.items():
            rep = (0,) + time[1:] if time[0] < epoch else time
            slot = merged.get(rep)
            if slot is None:
                merged[rep] = dict(diff)
            else:
                add_into(slot, diff)
        self.trace = {t: d for t, d in merged.items() if d}

    def diff_at(self, time: Time) -> Diff:
        """The consolidated difference emitted at exactly ``time``."""
        return dict(self.trace.get(time, {}))

    def accumulated(self, time: Time) -> Diff:
        """The collection's value at ``time`` (sum of diffs at s <= t)."""
        acc: Diff = {}
        for s, diff in self.trace.items():
            if leq(s, time):
                add_into(acc, diff)
        return acc

    def value_at_epoch(self, epoch: int) -> Diff:
        """Root-scope helper: accumulated value at time ``(epoch,)``."""
        return self.accumulated((epoch,))

    def records_at_epoch(self, epoch: int) -> List[Any]:
        """Accumulated records (multiplicities expanded) at an epoch."""
        out: List[Any] = []
        for rec, mult in sorted(self.value_at_epoch(epoch).items(),
                                key=lambda item: canonical_order_key(
                                    item[0])):
            if mult < 0:
                raise ValueError(
                    f"collection {self.name} has negative multiplicity "
                    f"{mult} for {rec!r} at epoch {epoch}"
                )
            out.extend([rec] * mult)
        return out

    def nonempty_times(self) -> Iterable[Tuple[Time, Diff]]:
        return self.trace.items()

    def total_diff_count(self) -> int:
        """Total number of difference entries across all times."""
        return sum(len(d) for d in self.trace.values())
