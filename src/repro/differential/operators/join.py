"""Bilinear equi-join on keyed records.

Both inputs must carry ``(key, value)`` records. For every pair of
differences ``δa @ t1`` (left) and ``δb @ t2`` (right) with the same key,
the join emits ``f(key, va, vb)`` with multiplicity ``ma * mb`` at timestamp
``lub(t1, t2)``.

Processing each arriving difference against the *other* side's trace counts
every pair exactly once, and emitting at the least upper bound is what makes
the join correct under partially ordered times: e.g. an edge added at view
``(1, 0)`` must produce corrections against distance diffs from iterations
``(0, j)`` of the previous view at times ``(1, j)`` — timestamps at which
neither input carries a difference (cf. the Bellman-Ford trace in the
paper's Table 1).

The per-key work — trace update, compaction probe, pairing — lives in
:meth:`JoinOp._join_key`, a kernel that runs in-process on the inline
backend and on the key's owning worker on the process backend (see
``docs/parallel.md``). The kernel reports its meter events through a
callback so the coordinator can replay them in original key order,
keeping counters byte-identical across backends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.differential.multiset import Diff, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time, lub
from repro.differential.trace import Trace


class JoinOp(Operator):
    """``left.join(right)`` with a result-builder ``f(key, va, vb)``."""

    def __init__(self, dataflow, scope, name, left, right,
                 f: Callable[[Any, Any, Any], Any]):
        super().__init__(dataflow, scope, name, [left, right])
        self.f = f
        self.traces = (Trace(name + ".left"), Trace(name + ".right"))

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        # Group the incoming batch by key: one trace touch, one compaction
        # probe and one meter call per key instead of one per record. The
        # pairing below is bilinear, so pairing the whole per-key value
        # diff at once produces exactly the per-record pairs.
        grouped: Dict[Any, Diff] = {}
        for rec, mult in diff.items():
            try:
                key, value = rec
            except (TypeError, ValueError):
                raise TypeError(
                    f"join input records must be (key, value) pairs; "
                    f"operator {self.name} got {rec!r}"
                ) from None
            slot = grouped.get(key)
            if slot is None:
                grouped[key] = {value: mult}
            else:
                slot[value] = slot.get(value, 0) + mult
        outputs: Dict[Time, Diff] = {}
        cluster = self.dataflow.cluster
        record = self.dataflow.meter.record
        if cluster is None:
            for key, values in grouped.items():
                self._join_key(port, time, key, values, record, outputs)
        else:
            replies = cluster.run_tasks(self.index, ("delta", port, time),
                                        grouped.items())
            for key in grouped:
                events, key_outputs = replies[key]
                for units in events:
                    record(key, units)
                for out_time, emitted in key_outputs.items():
                    slot = outputs.setdefault(out_time, {})
                    for rec, mult in emitted.items():
                        slot[rec] = slot.get(rec, 0) + mult
        for out_time in sorted(outputs):
            self.send(out_time, consolidate(outputs[out_time]))

    def _join_key(self, port: int, time: Time, key: Any, values: Diff,
                  record: Callable[[Any, int], None],
                  outputs: Dict[Time, Diff]) -> None:
        """Per-key join kernel (runs on the key's owner)."""
        mine = self.traces[port]
        other = self.traces[1 - port]
        f = self.f
        epoch = time[0]
        # First incorporate into our own trace so the opposite side's
        # future deltas at this timestamp pair against it (each pair of
        # diffs is thus counted exactly once).
        mine.update(key, time, values)
        other.maybe_compact(key, epoch)
        other_key = other.get(key)
        record(key, len(values))
        if other_key is None:
            return
        pairs = 0
        for t2, vals in other_key.entries.items():
            out_time = lub(time, t2)
            slot = outputs.setdefault(out_time, {})
            pairs += len(vals)
            if port == 0:
                for value, mult in values.items():
                    for v2, m2 in vals.items():
                        out = f(key, value, v2)
                        slot[out] = slot.get(out, 0) + mult * m2
            else:
                for value, mult in values.items():
                    for v2, m2 in vals.items():
                        out = f(key, v2, value)
                        slot[out] = slot.get(out, 0) + mult * m2
        if pairs:
            record(key, pairs * len(values))

    # -- process-backend entry points (run inside the worker) -----------------

    def remote_task(self, payload) -> Dict[Any, Tuple[tuple, Dict]]:
        (_kind, port, time), items = payload
        out: Dict[Any, Tuple[tuple, Dict]] = {}
        for key, values in items:
            events: List[int] = []
            key_outputs: Dict[Time, Diff] = {}
            self._join_key(port, time, key, values,
                           lambda _key, units: events.append(units),
                           key_outputs)
            out[key] = (tuple(events), key_outputs)
        return out

    def remote_stats(self) -> int:
        return sum(trace.record_count() for trace in self.traces)

    def local_traces(self):
        return self.traces
