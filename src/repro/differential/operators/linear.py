"""Linear operators: transform each difference independently.

Linearity means ``Op(A + δ) = Op(A) + Op(δ)``, so the operator can forward
transformed differences immediately without any state.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.differential.multiset import Diff, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time


class MapOp(Operator):
    """Apply ``f`` to every record. May merge records (diffs then sum)."""

    def __init__(self, dataflow, scope, name, source, f: Callable[[Any], Any]):
        super().__init__(dataflow, scope, name, [source])
        self.f = f

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        meter = self.dataflow.meter
        out: Diff = {}
        for rec, mult in diff.items():
            meter.record(rec)
            new = self.f(rec)
            out[new] = out.get(new, 0) + mult
        self.send(time, consolidate(out))


class FlatMapOp(Operator):
    """Apply ``f`` returning any number of records per input record."""

    def __init__(self, dataflow, scope, name, source,
                 f: Callable[[Any], Iterable[Any]]):
        super().__init__(dataflow, scope, name, [source])
        self.f = f

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        meter = self.dataflow.meter
        out: Diff = {}
        for rec, mult in diff.items():
            meter.record(rec)
            for new in self.f(rec):
                out[new] = out.get(new, 0) + mult
        self.send(time, consolidate(out))


class FilterOp(Operator):
    """Keep records satisfying the predicate."""

    def __init__(self, dataflow, scope, name, source,
                 predicate: Callable[[Any], bool]):
        super().__init__(dataflow, scope, name, [source])
        self.predicate = predicate

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        meter = self.dataflow.meter
        out: Diff = {}
        for rec, mult in diff.items():
            meter.record(rec)
            if self.predicate(rec):
                out[rec] = out.get(rec, 0) + mult
        self.send(time, consolidate(out))


class ConcatOp(Operator):
    """Multiset union of any number of inputs."""

    def __init__(self, dataflow, scope, name, sources):
        super().__init__(dataflow, scope, name, sources)

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        # Forward as-is; diff is read-only so no copy is needed.
        self.send(time, diff)


class NegateOp(Operator):
    """Flip the sign of every multiplicity (for multiset subtraction)."""

    def __init__(self, dataflow, scope, name, source):
        super().__init__(dataflow, scope, name, [source])

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        self.send(time, {rec: -mult for rec, mult in diff.items()})


class InspectOp(Operator):
    """Side-effecting tap, mainly for debugging and tests."""

    def __init__(self, dataflow, scope, name, source,
                 callback: Callable[[Time, Diff], None]):
        super().__init__(dataflow, scope, name, [source])
        self.callback = callback

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        self.callback(time, dict(diff))
        self.send(time, diff)
