"""Shared arrangements.

In Differential Dataflow, ``arrange_by_key`` materializes a collection's
difference trace once and lets many downstream operators read the same
index instead of each building a private copy — a major memory and
maintenance saving when e.g. the edges relation feeds several joins.

``ArrangeOp`` stores the trace and forwards differences; a
``JoinArrangedOp`` keeps a private trace only for its *other* input and
reads the arranged side from the shared trace.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.differential.multiset import Diff, consolidate
from repro.differential.operators.base import Operator
from repro.differential.timestamp import Time, lub
from repro.differential.trace import Trace


class ArrangeOp(Operator):
    """Materialize a keyed collection's trace; forward its differences."""

    def __init__(self, dataflow, scope, name, source):
        super().__init__(dataflow, scope, name, [source])
        self.trace = Trace(name + ".trace")

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        grouped: Dict[Any, Diff] = {}
        for rec, mult in diff.items():
            try:
                key, value = rec
            except (TypeError, ValueError):
                raise TypeError(
                    f"arrange input records must be (key, value) pairs; "
                    f"operator {self.name} got {rec!r}"
                ) from None
            slot = grouped.get(key)
            if slot is None:
                grouped[key] = {value: mult}
            else:
                slot[value] = slot.get(value, 0) + mult
        cluster = self.dataflow.cluster
        if cluster is None:
            self.trace.update_batch(time, grouped)
        else:
            # Route each key's update to its owning worker. FIFO pipes
            # guarantee it lands before the probe tasks the forwarded diff
            # triggers downstream, preserving exactly-once pairing.
            cluster.post_updates(self.index, "arrange", time, grouped)
        # Deliberately unmetered: the cost model charges index maintenance
        # at the joins that read a trace, so a dataflow using one shared
        # arrangement reports the same total_work/parallel_time as the
        # same dataflow with private per-join traces. Sharing shows up as
        # memory (record_count) and wall clock, not as model work.
        self.send(time, diff)

    # -- process-backend entry points (run inside the worker) -----------------

    def remote_update(self, payload) -> None:
        _tag, time, grouped = payload
        self.trace.update_batch(time, grouped)

    def remote_task(self, payload):
        raise AssertionError("arrange has no per-key tasks")

    def remote_stats(self) -> int:
        return self.trace.record_count()

    def local_traces(self):
        return (self.trace,)


class ArrangeEnterOp(Operator):
    """Bring an arrangement's difference stream into a child scope.

    Shares the parent arrangement's trace — no copy is made. Forwarded
    differences get a zero loop coordinate appended (exactly like
    ``EnterOp``); consumers pad the shared trace's shorter stored times
    the same way when pairing.
    """

    def __init__(self, dataflow, parent_scope, name, source):
        super().__init__(dataflow, parent_scope, name, [source])
        self.trace = source.trace

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        self.send(time + (0,), diff)


class JoinArrangedOp(Operator):
    """Join a stream (port 0) against a shared arrangement (port 1).

    Port 0 differences pair against the arrangement's full trace; the
    arrangement's forwarded differences pair against the private port-0
    trace. Each difference pair is counted exactly once, as in
    :class:`repro.differential.operators.join.JoinOp` — but the arranged
    side's trace is stored once no matter how many joins read it.
    """

    def __init__(self, dataflow, scope, name, left, arrange_op,
                 f: Callable[[Any, Any, Any], Any]):
        super().__init__(dataflow, scope, name, [left, arrange_op])
        self.f = f
        self.arranged = arrange_op.trace
        self.left_trace = Trace(name + ".left")

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        meter = self.dataflow.meter
        grouped: Dict[Any, Diff] = {}
        for rec, mult in diff.items():
            try:
                key, value = rec
            except (TypeError, ValueError):
                raise TypeError(
                    f"join input records must be (key, value) pairs; "
                    f"operator {self.name} got {rec!r}"
                ) from None
            slot = grouped.get(key)
            if slot is None:
                grouped[key] = {value: mult}
            else:
                slot[value] = slot.get(value, 0) + mult
        outputs: Dict[Time, Diff] = {}
        cluster = self.dataflow.cluster
        record = meter.record
        if cluster is None:
            for key, values in grouped.items():
                self._probe_key(port, time, key, values, record, outputs)
        else:
            replies = cluster.run_tasks(self.index, ("delta", port, time),
                                        grouped.items())
            for key in grouped:
                events, key_outputs = replies[key]
                for units in events:
                    record(key, units)
                for out_time, emitted in key_outputs.items():
                    slot = outputs.setdefault(out_time, {})
                    for rec, mult in emitted.items():
                        slot[rec] = slot.get(rec, 0) + mult
        for out_time in sorted(outputs):
            self.send(out_time, consolidate(outputs[out_time]))

    def _probe_key(self, port: int, time: Time, key: Any, values: Diff,
                   record, outputs: Dict[Time, Diff]) -> None:
        """Per-key probe kernel (runs on the key's owner)."""
        f = self.f
        epoch = time[0]
        tlen = len(time)
        if port == 0:
            # Store first so later arranged diffs at this time pair
            # against it; then match the arrangement as of now (which
            # includes arranged diffs that arrived earlier, and not
            # ones still to come — exactly-once pairing).
            self.left_trace.update(key, time, values)
            self.arranged.maybe_compact(key, epoch)
            other = self.arranged.get(key)
            record(key, len(values))
            if other is None:
                return
            pairs = 0
            for t2, vals in other.entries.items():
                if len(t2) != tlen:
                    # The arrangement was entered from an outer scope:
                    # its times are shorter and behave as if padded
                    # with zero loop coordinates.
                    t2 = t2 + (0,) * (tlen - len(t2))
                out_time = lub(time, t2)
                slot = outputs.setdefault(out_time, {})
                pairs += len(vals)
                for value, mult in values.items():
                    for v2, m2 in vals.items():
                        out = f(key, value, v2)
                        slot[out] = slot.get(out, 0) + mult * m2
            if pairs:
                record(key, pairs * len(values))
        else:
            # The ArrangeOp already stored this diff before forwarding;
            # pair it against the private left trace only.
            self.left_trace.maybe_compact(key, epoch)
            mine = self.left_trace.get(key)
            record(key, len(values))
            if mine is None:
                return
            pairs = 0
            for t2, vals in mine.entries.items():
                out_time = lub(time, t2)
                slot = outputs.setdefault(out_time, {})
                pairs += len(vals)
                for value, mult in values.items():
                    for v2, m2 in vals.items():
                        out = f(key, v2, value)
                        slot[out] = slot.get(out, 0) + mult * m2
            if pairs:
                record(key, pairs * len(values))

    # -- process-backend entry points (run inside the worker) -----------------

    def remote_task(self, payload):
        (_kind, port, time), items = payload
        out = {}
        for key, values in items:
            events = []
            key_outputs: Dict[Time, Diff] = {}
            self._probe_key(port, time, key, values,
                            lambda _key, units: events.append(units),
                            key_outputs)
            out[key] = (tuple(events), key_outputs)
        return out

    def remote_stats(self) -> int:
        return self.left_trace.record_count()

    def local_traces(self):
        # The arranged side is owned (and compacted) by its ArrangeOp.
        return (self.left_trace,)
