"""Operator base class and wiring."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.differential.multiset import Diff
from repro.differential.timestamp import Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.differential.dataflow import Dataflow, Scope


class Operator:
    """A node in the dataflow DAG.

    Contract:

    * ``on_delta(port, time, diff)`` is called when an upstream operator
      emits a difference. ``diff`` must be treated as **read-only** — it may
      be shared with other consumers.
    * ``flush(time)`` is called by the scope driver once per operator per
      timestamp pass, in topological order. Keyed operators process their
      scheduled tasks here; linear operators have nothing to do.
    * ``pending_times()`` reports timestamps at which the operator still has
      scheduled work; scope drivers use it to decide how far to iterate.
    """

    def __init__(self, dataflow: "Dataflow", scope: "Scope", name: str,
                 inputs: Sequence["Operator"] = ()):
        self.dataflow = dataflow
        self.scope = scope
        self.name = name
        self.inputs = list(inputs)
        self.downstream: List[Tuple[Operator, int]] = []
        for port, upstream in enumerate(self.inputs):
            upstream.downstream.append((self, port))
        self.index = dataflow.register(self, scope)

    # -- data plane ---------------------------------------------------------

    def send(self, time: Time, diff: Diff) -> None:
        """Push a consolidated difference to all downstream consumers."""
        if not diff:
            return
        tracer = self.dataflow.tracer
        if tracer is None:
            for op, port in self.downstream:
                op.on_delta(port, time, diff)
            return
        # Traced run: work metered inside a consumer's on_delta belongs to
        # that consumer — bracket each delivery with its context.
        for op, port in self.downstream:
            tracer.enter_operator(op.name, op.scope.depth, time)
            try:
                op.on_delta(port, time, diff)
            finally:
                tracer.exit_operator()

    def on_delta(self, port: int, time: Time, diff: Diff) -> None:
        raise NotImplementedError

    # -- control plane ------------------------------------------------------

    def flush(self, time: Time) -> None:
        """Process scheduled work at exactly ``time`` (keyed ops only)."""

    def pending_times(self) -> Iterable[Time]:
        return ()

    def discard_pending_beyond(self, prefix: Time, max_iter: int) -> None:
        """Drop scheduled work past an iteration clamp (see IterateOp)."""

    # -- trace maintenance --------------------------------------------------

    def local_traces(self) -> Iterable:
        """The difference traces this operator owns (for compaction).

        Keyed operators override this. On the process backend the traces
        live in the worker that owns each key, so the coordinator's copy
        of this list compacts empty traces — the real sweep happens when
        the cluster broadcasts ``compact`` to the workers.
        """
        return ()

    def compact_below(self, epoch: int) -> None:
        """Compact all owned trace history below ``epoch``.

        Called by :meth:`Dataflow.compact` on the coordinator and by the
        worker message loop on the process backend; safe to run twice on
        the same bound (per-key guards make the re-run cheap).
        """
        for trace in self.local_traces():
            trace.compact_below(epoch)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}#{self.index}>"
