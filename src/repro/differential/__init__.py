"""A from-scratch differential-computation engine.

This package reimplements the semantics of Differential Dataflow
(McSherry et al., CIDR 2013) in Python: collections evolve as multisets of
timestamped differences under a product partial order, operators maintain
their outputs incrementally by recomputing only where inputs changed, and
iterative scopes detect fixed points automatically because a converged
computation produces empty differences.

Quick taste::

    from repro.differential import Dataflow

    df = Dataflow()
    edges = df.new_input("edges")     # (src, dst) pairs
    roots = df.new_input("roots")     # (vertex, 0)

    def body(inner, scope):
        e = scope.enter(edges)
        r = scope.enter(roots)
        step = inner.join(e, lambda src, dist, dst: (dst, dist + 1))
        return step.concat(r).min_by_key()

    dists = roots.iterate(body)
    out = df.capture(dists, "dists")

    df.step({"edges": {(0, 1): 1, (1, 2): 1}, "roots": {(0, 0): 1}})
    assert out.value_at_epoch(0) == {(0, 0): 1, (1, 1): 1, (2, 2): 1}
    # Feeding only *differences* shares the previous epoch's work:
    df.step({"edges": {(2, 3): 1}})
    assert out.diff_at((1,)) == {(3, 3): 1}
"""

from repro.differential.collection import Arrangement, Collection
from repro.differential.dataflow import Dataflow, Scope
from repro.differential.multiset import (
    Diff,
    add_into,
    consolidate,
    from_records,
    from_weighted,
    is_empty,
    size,
    subtract,
)
from repro.differential.operators.io import CaptureOp
from repro.differential.timestamp import Time, leq, lt, lub, lub_closure

__all__ = [
    "Arrangement",
    "Collection",
    "Dataflow",
    "Scope",
    "CaptureOp",
    "Diff",
    "Time",
    "add_into",
    "consolidate",
    "from_records",
    "from_weighted",
    "is_empty",
    "size",
    "subtract",
    "leq",
    "lt",
    "lub",
    "lub_closure",
]
