"""Introspection and debugging tools for differential dataflows.

* :func:`to_dot` — render the operator graph (with iterate scopes as
  clusters) in Graphviz DOT, for understanding what a computation built.
* :func:`trace_stats` — per-operator state-size statistics: keys held,
  difference entries, pending tasks. Useful for finding state blowups.
* :func:`check_consistency` — re-derive every keyed operator's output from
  its input trace at a probe time and compare against the stored output
  trace: a direct executable statement of the differential invariant
  ``Out(t) = Op(In(t))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.differential.dataflow import Dataflow, Scope
from repro.differential.multiset import consolidate
from repro.differential.operators.arrange import (
    ArrangeEnterOp,
    ArrangeOp,
    JoinArrangedOp,
)
from repro.differential.operators.base import Operator
from repro.differential.operators.iterate import IterateOp, VariableOp
from repro.differential.operators.join import JoinOp
from repro.differential.operators.reduce import ReduceOp
from repro.differential.timestamp import Time


def _scope_ops(dataflow: Dataflow) -> Dict[Scope, List[Operator]]:
    return dataflow._ops_by_scope  # noqa: SLF001 - debug tooling


_FLAG_COLORS = {"error": "red", "warning": "yellow"}


def _flagged_operators(report) -> Dict[int, str]:
    """Worst finding severity per operator index, from an AnalysisReport.

    Finding locations are operator paths (``.../name#index``, UDF
    findings append `` udf <callable>``); the ``#index`` token addresses
    the node.
    """
    import re

    flagged: Dict[int, str] = {}
    for finding in report.findings:
        match = re.search(r"#(\d+)", finding.operator)
        if match is None:
            continue
        index = int(match.group(1))
        severity = finding.severity.value
        if flagged.get(index) != "error":
            flagged[index] = severity
    return flagged


def to_dot(dataflow: Dataflow, report=None) -> str:
    """Render the dataflow as Graphviz DOT with scopes as clusters.

    With ``report`` (a :class:`repro.analyze.AnalysisReport`), operators
    carrying findings are filled red (ERROR) or yellow (WARNING), so the
    analyzer's verdict is visible in the rendered graph.
    """
    flagged = _flagged_operators(report) if report is not None else {}
    lines = ["digraph dataflow {", "  rankdir=LR;"]

    def emit_scope(scope: Scope, indent: str) -> None:
        for op in _scope_ops(dataflow).get(scope, ()):
            shape = "box"
            if isinstance(op, (ReduceOp, VariableOp)):
                shape = "ellipse"
            elif isinstance(op, JoinOp):
                shape = "diamond"
            elif isinstance(op, IterateOp):
                shape = "octagon"
            color = _FLAG_COLORS.get(flagged.get(op.index, ""))
            style = (f' style=filled fillcolor={color}'
                     if color is not None else "")
            lines.append(
                f'{indent}n{op.index} [label="{op.name}" '
                f'shape={shape}{style}];')
        for child in scope.children:
            lines.append(f"{indent}subgraph cluster_{id(child)} {{")
            lines.append(f'{indent}  label="iterate";')
            emit_scope(child, indent + "  ")
            lines.append(f"{indent}}}")

    emit_scope(dataflow.root, "  ")
    for scope, ops in _scope_ops(dataflow).items():
        for op in ops:
            for downstream, port in op.downstream:
                style = ""
                if isinstance(downstream, VariableOp) and port == 1:
                    style = ' [style=dashed label="feedback"]'
                lines.append(
                    f"  n{op.index} -> n{downstream.index}{style};")
    lines.append("}")
    return "\n".join(lines)


@dataclass
class OperatorStats:
    name: str
    kind: str
    keys: int
    entries: int
    pending: int


def trace_stats(dataflow: Dataflow) -> List[OperatorStats]:
    """Per-operator state sizes, largest first."""
    stats: List[OperatorStats] = []
    for ops in _scope_ops(dataflow).values():
        for op in ops:
            if isinstance(op, ReduceOp):
                keys = sum(1 for _ in op.in_trace.keys())
                entries = op.in_trace.record_count() + \
                    op.out_trace.record_count()
                pending = sum(1 for _ in op.pending_times())
                stats.append(OperatorStats(op.name, "reduce", keys,
                                           entries, pending))
            elif isinstance(op, VariableOp):
                keys = sum(1 for _ in op.out_trace.keys())
                entries = (op.in_trace.record_count()
                           + op.body_trace.record_count()
                           + op.out_trace.record_count())
                pending = sum(1 for _ in op.pending_times())
                stats.append(OperatorStats(op.name, "variable", keys,
                                           entries, pending))
            elif isinstance(op, JoinOp):
                keys = sum(1 for _ in op.traces[0].keys()) + \
                    sum(1 for _ in op.traces[1].keys())
                entries = op.traces[0].record_count() + \
                    op.traces[1].record_count()
                stats.append(OperatorStats(op.name, "join", keys,
                                           entries, 0))
            elif isinstance(op, ArrangeOp):
                keys = sum(1 for _ in op.trace.keys())
                stats.append(OperatorStats(op.name, "arrange", keys,
                                           op.trace.record_count(), 0))
            elif isinstance(op, JoinArrangedOp):
                # The arranged side's trace is reported at its ArrangeOp;
                # only the private stream-side trace is this op's state.
                keys = sum(1 for _ in op.left_trace.keys())
                stats.append(OperatorStats(op.name, "join_arranged", keys,
                                           op.left_trace.record_count(), 0))
    stats.sort(key=lambda s: -s.entries)
    return stats


def _operator_traces(op: Operator):
    if isinstance(op, ReduceOp):
        return [op.in_trace, op.out_trace]
    if isinstance(op, VariableOp):
        return [op.in_trace, op.body_trace, op.out_trace]
    if isinstance(op, JoinOp):
        return [op.traces[0], op.traces[1]]
    if isinstance(op, ArrangeOp) and not isinstance(op, ArrangeEnterOp):
        return [op.trace]
    if isinstance(op, JoinArrangedOp):
        return [op.left_trace]  # the arranged trace belongs to its ArrangeOp
    return []


def operator_record_counts(dataflow: Dataflow) -> Dict[str, int]:
    """Stored trace entries per operator (shared arrangements counted once,
    at their ``ArrangeOp``). Feeds ``explain``'s trace-memory report.

    On the process backend keyed traces live on the worker processes, so
    the counts are gathered over the exchange channels (each operator's
    ``remote_stats`` mirrors the trace selection below) and summed across
    workers.
    """
    counts: Dict[str, int] = {}
    cluster = getattr(dataflow, "cluster", None)
    remote = cluster.stats() if cluster is not None else None
    for ops in _scope_ops(dataflow).values():
        for op in ops:
            traces = _operator_traces(op)
            if traces:
                if remote is not None:
                    counts[op.name] = remote.get(op.index, 0)
                else:
                    counts[op.name] = sum(t.record_count() for t in traces)
    return counts


def check_consolidated(dataflow: Dataflow) -> List[str]:
    """Assert the consolidation invariant across all stored traces.

    Every difference the engine stores must be consolidated: no
    zero-multiplicity values and no empty time slots. ``multiset.is_empty``
    is a plain falsiness test *because* of this invariant, so a violation
    here means some operator stored an unconsolidated diff and emptiness
    checks downstream are no longer trustworthy. Returns human-readable
    violations (empty = invariant holds).
    """
    problems: List[str] = []
    for ops in _scope_ops(dataflow).values():
        for op in ops:
            for trace in _operator_traces(op):
                for key in trace.keys():
                    for time, diff in trace.get(key).entries.items():
                        if not diff:
                            problems.append(
                                f"{op.name} ({trace.name}): key {key!r} "
                                f"stores an empty diff at {time}")
                        elif any(mult == 0 for mult in diff.values()):
                            problems.append(
                                f"{op.name} ({trace.name}): key {key!r} "
                                f"stores zero multiplicities at {time}")
    return problems


def check_consistency(dataflow: Dataflow,
                      time: Optional[Time] = None) -> List[str]:
    """Verify ``Out(t) == logic(In(t))`` for every reduce at a probe time.

    Returns a list of human-readable violation descriptions (empty when
    consistent). The probe time defaults to the last completed epoch.
    """
    if time is None:
        time = (dataflow.epoch,)
    problems: List[str] = []
    for ops in _scope_ops(dataflow).values():
        for op in ops:
            if not isinstance(op, ReduceOp):
                continue
            probe = time + (1 << 30,) * (op.scope.depth - len(time))
            for key in list(op.in_trace.keys()):
                acc_in = consolidate(op.in_trace.accumulate(key, probe))
                expected = {}
                if acc_in:
                    if any(mult < 0 for mult in acc_in.values()):
                        problems.append(
                            f"{op.name}: key {key!r} input accumulates "
                            f"negative multiplicities at {probe}")
                        continue
                    for value in op.logic(key, acc_in):
                        expected[value] = expected.get(value, 0) + 1
                actual = consolidate(op.out_trace.accumulate(key, probe))
                if expected != actual:
                    problems.append(
                        f"{op.name}: key {key!r} at {probe}: expected "
                        f"{expected}, stored {actual}")
    return problems
