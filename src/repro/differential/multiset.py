"""Multisets with signed multiplicities — the values of difference streams.

Differential dataflow streams are multisets of records; a *difference* is a
multiset in which records may carry negative multiplicities (deletions).
We represent them as plain ``dict[record, int]`` for speed and provide the
handful of algebraic helpers the operators need. All helpers drop
zero-multiplicity entries ("consolidation"), which is what guarantees that a
converged computation produces empty differences.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

Diff = Dict[Any, int]


def consolidate(diff: Diff) -> Diff:
    """Drop zero-multiplicity entries (in place) and return the dict."""
    dead = [rec for rec, mult in diff.items() if mult == 0]
    for rec in dead:
        del diff[rec]
    return diff


def add_into(target: Diff, source: Diff, factor: int = 1) -> Diff:
    """``target += factor * source`` with consolidation of touched keys."""
    for rec, mult in source.items():
        new = target.get(rec, 0) + factor * mult
        if new == 0:
            target.pop(rec, None)
        else:
            target[rec] = new
    return target


def subtract(a: Diff, b: Diff) -> Diff:
    """Return ``a - b`` as a new consolidated dict."""
    out = dict(a)
    return add_into(out, b, factor=-1)


def negate(diff: Diff) -> Diff:
    """Return ``-diff`` as a new dict."""
    return {rec: -mult for rec, mult in diff.items()}


def from_records(records: Iterable[Any]) -> Diff:
    """Build a +1-per-record multiset from an iterable of records."""
    out: Diff = {}
    for rec in records:
        out[rec] = out.get(rec, 0) + 1
    return consolidate(out)


def from_weighted(pairs: Iterable[Tuple[Any, int]]) -> Diff:
    """Build a multiset from (record, multiplicity) pairs."""
    out: Diff = {}
    for rec, mult in pairs:
        new = out.get(rec, 0) + mult
        if new == 0:
            out.pop(rec, None)
        else:
            out[rec] = new
    return out


def is_empty(diff: Diff) -> bool:
    """True when the multiset carries no records.

    Relies on the module invariant that every helper consolidates (drops
    zero multiplicities) — so emptiness is just falsiness, no scan. The
    invariant itself is asserted by
    :func:`repro.differential.debug.check_consolidated`.
    """
    return not diff


def size(diff: Diff) -> int:
    """Total absolute multiplicity — the paper's "number of differences"."""
    return sum(abs(mult) for mult in diff.values())


def assert_nonnegative(diff: Diff, context: str = "") -> None:
    """Raise if any record has negative multiplicity.

    Collections that represent *data* (as opposed to differences) must be
    genuine multisets; this is used by tests and debug assertions.
    """
    for rec, mult in diff.items():
        if mult < 0:
            raise ValueError(
                f"negative multiplicity {mult} for record {rec!r}"
                + (f" in {context}" if context else "")
            )
