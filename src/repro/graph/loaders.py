"""Loaders for common public graph-file formats.

The paper's datasets ship in SNAP formats; these loaders let users run
this system on the real files when they have them:

* :func:`load_snap_edge_list` — whitespace-separated ``src dst [extra...]``
  lines with ``#`` comments (e.g. ``com-lj.ungraph.txt``).
* :func:`load_snap_temporal` — ``src dst unix_ts`` lines (e.g.
  ``sx-stackoverflow.txt``); the timestamp lands in the edge property
  ``ts``.
* :func:`load_communities` — one community per line, members whitespace
  separated (the SNAP ``*.all.cmty.txt`` format); memberships become the
  boolean node properties ``c<i>`` used by the perturbation workloads.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import PropertyType, Schema

PathLike = Union[str, Path]


def _data_lines(path: PathLike):
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            yield line_no, line.split()


def load_snap_edge_list(path: PathLike, name: str = "snap",
                        undirected: bool = False,
                        max_edges: Optional[int] = None) -> PropertyGraph:
    """Load a SNAP-style edge list (``src dst`` per line)."""
    graph = PropertyGraph(name)
    known = set()
    count = 0
    for line_no, fields in _data_lines(path):
        if len(fields) < 2:
            raise SchemaError(f"{path}:{line_no}: expected 'src dst'")
        src, dst = int(fields[0]), int(fields[1])
        for node in (src, dst):
            if node not in known:
                known.add(node)
                graph.add_node(node)
        graph.add_edge(src, dst)
        if undirected:
            graph.add_edge(dst, src)
        count += 1
        if max_edges is not None and count >= max_edges:
            break
    return graph


def load_snap_temporal(path: PathLike, name: str = "snap-temporal",
                       max_edges: Optional[int] = None) -> PropertyGraph:
    """Load a SNAP temporal edge list (``src dst unix_ts`` per line)."""
    graph = PropertyGraph(name, edge_schema=Schema({"ts": PropertyType.INT}))
    known = set()
    count = 0
    for line_no, fields in _data_lines(path):
        if len(fields) < 3:
            raise SchemaError(f"{path}:{line_no}: expected 'src dst ts'")
        src, dst, ts = int(fields[0]), int(fields[1]), int(fields[2])
        for node in (src, dst):
            if node not in known:
                known.add(node)
                graph.add_node(node)
        graph.add_edge(src, dst, {"ts": ts})
        count += 1
        if max_edges is not None and count >= max_edges:
            break
    return graph


def load_communities(graph: PropertyGraph, path: PathLike,
                     max_communities: Optional[int] = None) -> int:
    """Attach SNAP ground-truth communities as boolean node properties.

    Returns the number of communities loaded. Nodes absent from the graph
    are ignored; all nodes get an explicit True/False for every loaded
    community, and the node schema is extended accordingly.
    """
    communities = []
    for _line_no, fields in _data_lines(path):
        communities.append([int(field) for field in fields])
        if max_communities is not None and \
                len(communities) >= max_communities:
            break
    for index, members in enumerate(communities):
        prop = f"c{index}"
        graph.node_schema.fields[prop] = PropertyType.BOOL
        member_set = set(members)
        for node in graph.nodes.values():
            node.properties[prop] = node.id in member_set
    return len(communities)
