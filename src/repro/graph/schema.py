"""Property schemas.

Graphsurge's property graph model supports string, integer, and boolean
properties (paper §2). A :class:`Schema` declares the typed properties of
nodes or edges and validates/coerces raw values at import time.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.errors import SchemaError


class PropertyType(enum.Enum):
    """The three property types the paper's implementation supports."""

    STRING = "str"
    INT = "int"
    BOOL = "bool"

    @classmethod
    def parse(cls, text: str) -> "PropertyType":
        for member in cls:
            if member.value == text:
                return member
        raise SchemaError(f"unknown property type {text!r} "
                          f"(expected one of: str, int, bool)")

    def coerce(self, raw: Any) -> Any:
        """Convert a raw (usually CSV string) value to this type."""
        if self is PropertyType.STRING:
            return str(raw)
        if self is PropertyType.INT:
            try:
                return int(raw)
            except (TypeError, ValueError):
                raise SchemaError(f"cannot read {raw!r} as int") from None
        if raw in (True, False):
            return bool(raw)
        text = str(raw).strip().lower()
        if text in ("true", "1", "t", "yes"):
            return True
        if text in ("false", "0", "f", "no"):
            return False
        raise SchemaError(f"cannot read {raw!r} as bool")


class Schema:
    """An ordered mapping of property name to :class:`PropertyType`."""

    def __init__(self, fields: Mapping[str, PropertyType] = ()):
        self.fields: Dict[str, PropertyType] = dict(fields)

    @classmethod
    def from_header(cls, columns: Iterable[str]) -> "Schema":
        """Parse ``name:type`` column declarations (type defaults to str)."""
        fields: Dict[str, PropertyType] = {}
        for column in columns:
            name, _, type_text = column.partition(":")
            name = name.strip()
            if not name:
                raise SchemaError(f"empty property name in column {column!r}")
            if name in fields:
                raise SchemaError(f"duplicate property {name!r}")
            ptype = PropertyType.parse(type_text.strip()) if type_text else \
                PropertyType.STRING
            fields[name] = ptype
        return cls(fields)

    def coerce_row(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate and coerce one record against the schema."""
        out: Dict[str, Any] = {}
        for name, ptype in self.fields.items():
            if name not in row:
                raise SchemaError(f"missing property {name!r} in row {row!r}")
            out[name] = ptype.coerce(row[name])
        return out

    def __contains__(self, name: str) -> bool:
        return name in self.fields

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def header(self) -> Tuple[str, ...]:
        """Render back to ``name:type`` column declarations."""
        return tuple(f"{name}:{ptype.value}"
                     for name, ptype in self.fields.items())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Schema({self.fields})"
