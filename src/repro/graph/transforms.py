"""Graph transformations: reverse, induced subgraphs, relabeling.

Utilities a view-analytics user reaches for when preparing inputs —
kept out of :class:`PropertyGraph` to keep the core model small.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph


def reverse(graph: PropertyGraph,
            name: Optional[str] = None) -> PropertyGraph:
    """Flip every edge's direction (properties preserved)."""
    out = PropertyGraph(name or f"{graph.name}-rev",
                        graph.node_schema, graph.edge_schema)
    for node in graph.nodes.values():
        out.add_node(node.id, node.properties)
    for edge in graph.edges:
        out.add_edge(edge.dst, edge.src, edge.properties)
    return out


def induced_subgraph(graph: PropertyGraph, nodes: Iterable[int],
                     name: Optional[str] = None) -> PropertyGraph:
    """Keep the given nodes and the edges among them."""
    keep = set(nodes)
    unknown = keep - set(graph.nodes)
    if unknown:
        raise SchemaError(f"unknown node ids {sorted(unknown)[:5]}")
    out = PropertyGraph(name or f"{graph.name}-sub",
                        graph.node_schema, graph.edge_schema)
    for node_id in sorted(keep):
        out.add_node(node_id, graph.nodes[node_id].properties)
    for edge in graph.edges:
        if edge.src in keep and edge.dst in keep:
            out.add_edge(edge.src, edge.dst, edge.properties)
    return out


def filter_nodes(graph: PropertyGraph,
                 predicate: Callable[[Dict], bool],
                 name: Optional[str] = None) -> PropertyGraph:
    """Induced subgraph of the nodes whose properties pass ``predicate``."""
    keep = [node.id for node in graph.nodes.values()
            if predicate(node.properties)]
    return induced_subgraph(graph, keep, name=name)


def relabel(graph: PropertyGraph,
            mapping: Optional[Dict[int, int]] = None,
            name: Optional[str] = None) -> PropertyGraph:
    """Renumber node ids (default: densely from 0 in sorted-id order)."""
    if mapping is None:
        mapping = {old: new for new, old in enumerate(sorted(graph.nodes))}
    if len(set(mapping.values())) != len(mapping):
        raise SchemaError("relabel mapping is not injective")
    missing = set(graph.nodes) - set(mapping)
    if missing:
        raise SchemaError(f"mapping misses node ids {sorted(missing)[:5]}")
    out = PropertyGraph(name or f"{graph.name}-relabel",
                        graph.node_schema, graph.edge_schema)
    for old in sorted(graph.nodes, key=lambda n: mapping[n]):
        out.add_node(mapping[old], graph.nodes[old].properties)
    for edge in graph.edges:
        out.add_edge(mapping[edge.src], mapping[edge.dst], edge.properties)
    return out


def merge_graphs(a: PropertyGraph, b: PropertyGraph,
                 name: str = "merged") -> PropertyGraph:
    """Disjoint-union two graphs with compatible schemas.

    ``b``'s node ids are shifted past ``a``'s maximum id.
    """
    if a.node_schema != b.node_schema or a.edge_schema != b.edge_schema:
        raise SchemaError("cannot merge graphs with different schemas")
    out = PropertyGraph(name, a.node_schema, a.edge_schema)
    for node in a.nodes.values():
        out.add_node(node.id, node.properties)
    offset = (max(a.nodes) + 1) if a.nodes else 0
    for node in b.nodes.values():
        out.add_node(node.id + offset, node.properties)
    for edge in a.edges:
        out.add_edge(edge.src, edge.dst, edge.properties)
    for edge in b.edges:
        out.add_edge(edge.src + offset, edge.dst + offset, edge.properties)
    return out
