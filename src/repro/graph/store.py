"""Graph and view stores (the Storage Manager of Figure 4).

``GraphStore`` holds named base graphs; ``ViewStore`` holds materialized
filtered/aggregate views and view collections. Both support persistence to a
directory of CSV files so a session's objects survive restarts — the
in-Python analogue of the paper's persisted edge streams.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.errors import StoreError, UnknownGraphError
from repro.graph.csv_loader import load_graph_csv, save_graph_csv
from repro.graph.property_graph import PropertyGraph

PathLike = Union[str, Path]


class GraphStore:
    """Named base graphs."""

    def __init__(self) -> None:
        self._graphs: Dict[str, PropertyGraph] = {}

    def add(self, graph: PropertyGraph, name: Optional[str] = None) -> None:
        key = name or graph.name
        if key in self._graphs:
            raise StoreError(f"graph {key!r} already exists in the store")
        self._graphs[key] = graph

    def get(self, name: str) -> PropertyGraph:
        graph = self._graphs.get(name)
        if graph is None:
            raise UnknownGraphError(f"unknown graph {name!r}")
        return graph

    def __contains__(self, name: str) -> bool:
        return name in self._graphs

    def names(self) -> Iterator[str]:
        return iter(self._graphs)

    def save(self, directory: PathLike) -> None:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {}
        for name, graph in self._graphs.items():
            nodes = directory / f"{name}.nodes.csv"
            edges = directory / f"{name}.edges.csv"
            save_graph_csv(graph, nodes, edges)
            manifest[name] = {"nodes": nodes.name, "edges": edges.name}
        (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))

    @classmethod
    def load(cls, directory: PathLike) -> "GraphStore":
        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            raise StoreError(f"no manifest.json under {directory}")
        manifest = json.loads(manifest_path.read_text())
        store = cls()
        for name, files in manifest.items():
            graph = load_graph_csv(
                name, directory / files["nodes"], directory / files["edges"])
            store.add(graph, name)
        return store


class ViewStore:
    """Materialized views and view collections, addressable by name.

    Filtered and aggregate views are stored as :class:`PropertyGraph`
    objects (so views can be queried again — views over views); collections
    are stored by the core layer as
    :class:`repro.core.view_collection.MaterializedCollection`.
    """

    def __init__(self) -> None:
        self._views: Dict[str, PropertyGraph] = {}
        self._collections: Dict[str, object] = {}

    def add_view(self, name: str, view: PropertyGraph) -> None:
        if name in self._views or name in self._collections:
            raise StoreError(f"view {name!r} already exists")
        self._views[name] = view

    def add_collection(self, name: str, collection: object) -> None:
        if name in self._views or name in self._collections:
            raise StoreError(f"collection {name!r} already exists")
        self._collections[name] = collection

    def get_view(self, name: str) -> PropertyGraph:
        view = self._views.get(name)
        if view is None:
            raise UnknownGraphError(f"unknown view {name!r}")
        return view

    def get_collection(self, name: str):
        collection = self._collections.get(name)
        if collection is None:
            raise UnknownGraphError(f"unknown view collection {name!r}")
        return collection

    def has_view(self, name: str) -> bool:
        return name in self._views

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def view_names(self) -> Iterator[str]:
        return iter(self._views)

    def collection_names(self) -> Iterator[str]:
        return iter(self._collections)
