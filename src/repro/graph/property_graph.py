"""The property graph: nodes and directed edges with key-value properties.

Nodes and edges carry arbitrary typed properties; upon loading, every node
and edge receives a unique 64-bit id (paper §3). Edge tuples keep direct
references to their endpoint property dicts — the in-memory analogue of the
paper's ``(sID, sPtr, dID, dPtr, key1, val1, ...)`` stream layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import SchemaError, UnknownPropertyError
from repro.graph.schema import Schema


@dataclass
class Node:
    """A vertex with a 64-bit id and a property dict."""

    id: int
    properties: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Edge:
    """A directed edge with its own id, endpoints, and properties."""

    id: int
    src: int
    dst: int
    properties: Dict[str, Any] = field(default_factory=dict)


class PropertyGraph:
    """A static directed property graph.

    Node ids are chosen by the caller (e.g. the CSV's id column); edge ids
    are assigned sequentially on insertion.
    """

    def __init__(self, name: str = "graph",
                 node_schema: Optional[Schema] = None,
                 edge_schema: Optional[Schema] = None):
        self.name = name
        self.node_schema = node_schema or Schema()
        self.edge_schema = edge_schema or Schema()
        self.nodes: Dict[int, Node] = {}
        self.edges: List[Edge] = []
        self._next_edge_id = 0

    # -- construction ---------------------------------------------------------

    def add_node(self, node_id: int, properties: Optional[Mapping[str, Any]] = None) -> Node:
        if node_id in self.nodes:
            raise SchemaError(f"duplicate node id {node_id}")
        props = dict(properties or {})
        if len(self.node_schema):
            props = self.node_schema.coerce_row(props)
        node = Node(node_id, props)
        self.nodes[node_id] = node
        return node

    def add_edge(self, src: int, dst: int,
                 properties: Optional[Mapping[str, Any]] = None) -> Edge:
        if src not in self.nodes:
            raise SchemaError(f"edge references unknown source node {src}")
        if dst not in self.nodes:
            raise SchemaError(f"edge references unknown destination node {dst}")
        props = dict(properties or {})
        if len(self.edge_schema):
            props = self.edge_schema.coerce_row(props)
        edge = Edge(self._next_edge_id, src, dst, props)
        self._next_edge_id += 1
        self.edges.append(edge)
        return edge

    def remove_edges(self, src: int, dst: int,
                     limit: Optional[int] = None) -> int:
        """Retract edges matching ``(src, dst)``; returns how many fell.

        Edge ids are never reused after a removal (``add_edge`` draws from
        a monotonic counter), so difference streams keyed by edge id stay
        unambiguous across mutations. With ``limit`` only the first
        ``limit`` matches are removed.
        """
        kept: List[Edge] = []
        removed = 0
        for edge in self.edges:
            if (edge.src == src and edge.dst == dst
                    and (limit is None or removed < limit)):
                removed += 1
            else:
                kept.append(edge)
        self.edges = kept
        return removed

    # -- inspection -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def node_property(self, node_id: int, name: str) -> Any:
        node = self.nodes.get(node_id)
        if node is None:
            raise UnknownPropertyError(f"unknown node id {node_id}")
        if name not in node.properties:
            raise UnknownPropertyError(
                f"node {node_id} has no property {name!r}")
        return node.properties[name]

    def iter_edges(self) -> Iterator[Edge]:
        return iter(self.edges)

    def out_neighbors(self, node_id: int) -> List[int]:
        return [e.dst for e in self.edges if e.src == node_id]

    def degree_index(self) -> Dict[int, int]:
        """Out-degree per node (0 for isolated nodes)."""
        deg = {node_id: 0 for node_id in self.nodes}
        for edge in self.edges:
            deg[edge.src] += 1
        return deg

    # -- views ------------------------------------------------------------------

    def filter_edges(self, predicate: Callable[[Edge, Dict[str, Any], Dict[str, Any]], bool],
                     name: str = "view") -> "PropertyGraph":
        """Materialize a filtered view: keep edges passing the predicate.

        ``predicate(edge, src_props, dst_props)``. Nodes are kept as-is
        (filtered views in GVDL are edge-filtered; paper §3.1).
        """
        view = PropertyGraph(name, self.node_schema, self.edge_schema)
        for node in self.nodes.values():
            view.add_node(node.id, node.properties)
        for edge in self.edges:
            src_props = self.nodes[edge.src].properties
            dst_props = self.nodes[edge.dst].properties
            if predicate(edge, src_props, dst_props):
                view.add_edge(edge.src, edge.dst, edge.properties)
        return view

    # -- dataflow bridging -------------------------------------------------------

    def edge_records(self, weight: Optional[str] = None,
                     default_weight: int = 1) -> Iterable[Tuple[int, Tuple[int, int]]]:
        """Yield ``(src, (dst, weight))`` records for the analytics API."""
        for edge in self.edges:
            w = edge.properties.get(weight, default_weight) if weight else default_weight
            yield (edge.src, (edge.dst, w))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PropertyGraph({self.name!r}, |V|={self.num_nodes}, "
                f"|E|={self.num_edges})")
