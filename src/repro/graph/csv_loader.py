"""CSV import for base graphs (paper §3).

Format:

* nodes file — header ``id,<prop>:<type>,...``; one row per node.
* edges file — header ``src,dst,<prop>:<type>,...``; one row per edge.

Types are ``str`` (default), ``int``, ``bool``. Example::

    id,city:str,profession:str
    1,LA,Engineer

    src,dst,duration:int,year:int
    1,3,7,2018
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.errors import SchemaError
from repro.graph.property_graph import PropertyGraph
from repro.graph.schema import Schema

PathLike = Union[str, Path]


def load_nodes_csv(graph: PropertyGraph, path: PathLike) -> None:
    """Read a nodes CSV into an (empty-node) graph, setting its schema."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"empty nodes file {path}") from None
        if not header or header[0].split(":")[0].strip() != "id":
            raise SchemaError(
                f"nodes file {path} must start with an 'id' column")
        schema = Schema.from_header(header[1:])
        graph.node_schema = schema
        prop_names = list(schema.fields)
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{line_no}: expected {len(header)} columns, "
                    f"got {len(row)}")
            node_id = int(row[0])
            props = dict(zip(prop_names, row[1:]))
            graph.add_node(node_id, props)


def load_edges_csv(graph: PropertyGraph, path: PathLike) -> None:
    """Read an edges CSV into a graph whose nodes are already loaded."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"empty edges file {path}") from None
        first_two = [c.split(":")[0].strip() for c in header[:2]]
        if first_two != ["src", "dst"]:
            raise SchemaError(
                f"edges file {path} must start with 'src,dst' columns")
        schema = Schema.from_header(header[2:])
        graph.edge_schema = schema
        prop_names = list(schema.fields)
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{line_no}: expected {len(header)} columns, "
                    f"got {len(row)}")
            props = dict(zip(prop_names, row[2:]))
            graph.add_edge(int(row[0]), int(row[1]), props)


def load_graph_csv(name: str, nodes_path: PathLike,
                   edges_path: PathLike) -> PropertyGraph:
    """Load a complete property graph from a nodes file and an edges file."""
    graph = PropertyGraph(name)
    load_nodes_csv(graph, nodes_path)
    load_edges_csv(graph, edges_path)
    return graph


def save_graph_csv(graph: PropertyGraph, nodes_path: PathLike,
                   edges_path: PathLike) -> None:
    """Write a graph back out in the import format (round-trippable)."""
    with open(nodes_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", *graph.node_schema.header()])
        for node in graph.nodes.values():
            writer.writerow(
                [node.id] + [node.properties[k] for k in graph.node_schema.fields])
    with open(edges_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["src", "dst", *graph.edge_schema.header()])
        for edge in graph.edges:
            writer.writerow(
                [edge.src, edge.dst]
                + [edge.properties[k] for k in graph.edge_schema.fields])
