"""Graph integrity validation.

Adopters loading real data want early, actionable diagnostics before
running multi-minute collection materializations. ``validate`` checks a
:class:`PropertyGraph` for the problems that bite later: schema
non-conformance, dangling endpoints, self-loops, and duplicate edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.property_graph import PropertyGraph


@dataclass
class ValidationReport:
    """Findings of one validation pass."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    self_loops: int = 0
    duplicate_edges: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        lines = []
        status = "OK" if self.ok else f"{len(self.errors)} error(s)"
        lines.append(f"validation: {status}, {len(self.warnings)} "
                     f"warning(s)")
        for error in self.errors[:20]:
            lines.append(f"  error: {error}")
        for warning in self.warnings[:20]:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)


def validate(graph: PropertyGraph, max_findings: int = 50
             ) -> ValidationReport:
    """Check a graph's structural and schema integrity."""
    report = ValidationReport()

    def error(text: str) -> None:
        if len(report.errors) < max_findings:
            report.errors.append(text)

    def warning(text: str) -> None:
        if len(report.warnings) < max_findings:
            report.warnings.append(text)

    node_fields = set(graph.node_schema.fields)
    for node in graph.nodes.values():
        if node_fields:
            missing = node_fields - set(node.properties)
            extra = set(node.properties) - node_fields
            if missing:
                error(f"node {node.id}: missing properties "
                      f"{sorted(missing)}")
            if extra:
                warning(f"node {node.id}: undeclared properties "
                        f"{sorted(extra)}")
            for name, ptype in graph.node_schema.fields.items():
                if name in node.properties:
                    value = node.properties[name]
                    expected = {"str": str, "int": int,
                                "bool": bool}[ptype.value]
                    # bool is a subclass of int; enforce exact intent.
                    if expected is int and isinstance(value, bool):
                        error(f"node {node.id}: property {name!r} is bool, "
                              f"schema says int")
                    elif not isinstance(value, expected):
                        error(f"node {node.id}: property {name!r} has "
                              f"{type(value).__name__}, schema says "
                              f"{ptype.value}")

    edge_fields = set(graph.edge_schema.fields)
    seen_pairs: Dict[Tuple[int, int], int] = {}
    for edge in graph.edges:
        if edge.src not in graph.nodes:
            error(f"edge {edge.id}: dangling source {edge.src}")
        if edge.dst not in graph.nodes:
            error(f"edge {edge.id}: dangling destination {edge.dst}")
        if edge.src == edge.dst:
            report.self_loops += 1
        pair = (edge.src, edge.dst)
        seen_pairs[pair] = seen_pairs.get(pair, 0) + 1
        if edge_fields:
            missing = edge_fields - set(edge.properties)
            if missing:
                error(f"edge {edge.id}: missing properties "
                      f"{sorted(missing)}")
    report.duplicate_edges = sum(count - 1 for count in seen_pairs.values()
                                 if count > 1)
    if report.self_loops:
        warning(f"{report.self_loops} self-loop(s) — iterative "
                f"computations handle them, but check they are intended")
    if report.duplicate_edges:
        warning(f"{report.duplicate_edges} duplicate edge pair(s) — "
                f"multiplicities compound in degree-sensitive "
                f"computations (PageRank, k-core)")
    return report
