"""Edge streams: the bridge between stored graphs and the dataflow engine.

An :class:`EdgeStream` is an ordered list of ``(edge_id, src, dst, weight)``
tuples. View collections are materialized as *difference* edge streams; this
module provides the conversions in both directions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.differential.multiset import Diff
from repro.graph.property_graph import PropertyGraph

EdgeTuple = Tuple[int, int, int, int]  # (edge_id, src, dst, weight)


class EdgeStream:
    """A concrete sequence of edge tuples for one graph or view."""

    def __init__(self, edges: Iterable[EdgeTuple] = ()):
        self.edges: List[EdgeTuple] = list(edges)

    @classmethod
    def from_graph(cls, graph: PropertyGraph, weight: Optional[str] = None,
                   default_weight: int = 1) -> "EdgeStream":
        edges = []
        for edge in graph.edges:
            if weight is not None:
                w = int(edge.properties.get(weight, default_weight))
            else:
                w = default_weight
            edges.append((edge.id, edge.src, edge.dst, w))
        return cls(edges)

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self):
        return iter(self.edges)

    def as_input_diff(self, directed: bool = True) -> Diff:
        """Render as a +1 multiset of ``(src, (dst, weight))`` records.

        With ``directed=False`` each edge contributes both directions, which
        is what the symmetric computations (WCC) consume.
        """
        diff: Diff = {}
        for _eid, src, dst, w in self.edges:
            rec = (src, (dst, w))
            diff[rec] = diff.get(rec, 0) + 1
            if not directed:
                rev = (dst, (src, w))
                diff[rev] = diff.get(rev, 0) + 1
        return diff

    def vertices(self) -> set:
        out = set()
        for _eid, src, dst, _w in self.edges:
            out.add(src)
            out.add(dst)
        return out


def edge_diff_to_input(edge_diff: Dict[EdgeTuple, int],
                       directed: bool = True) -> Diff:
    """Convert an edge-tuple difference set to dataflow input records."""
    diff: Diff = {}
    for (_eid, src, dst, w), mult in edge_diff.items():
        rec = (src, (dst, w))
        diff[rec] = diff.get(rec, 0) + mult
        if not directed:
            rev = (dst, (src, w))
            diff[rev] = diff.get(rev, 0) + mult
    return {rec: mult for rec, mult in diff.items() if mult != 0}
