"""Property graphs, CSV import, and the graph/view stores (paper §3).

Graphsurge's storage layer: base graphs are imported from CSV files, every
node and edge receives a unique 64-bit id, edges are kept as an edge stream
whose tuples point at the node property store.
"""

from repro.graph.property_graph import Edge, Node, PropertyGraph
from repro.graph.schema import PropertyType, Schema
from repro.graph.csv_loader import load_edges_csv, load_graph_csv, load_nodes_csv
from repro.graph.edge_stream import EdgeStream
from repro.graph.store import GraphStore, ViewStore

__all__ = [
    "Edge",
    "Node",
    "PropertyGraph",
    "PropertyType",
    "Schema",
    "load_edges_csv",
    "load_graph_csv",
    "load_nodes_csv",
    "EdgeStream",
    "GraphStore",
    "ViewStore",
]
