"""GraphBolt-style incremental single-source shortest paths.

Algorithm-specific maintenance with the classic asymmetry:

* **Edge additions** are cheap: relax from the new edge's endpoints and
  propagate improvements (a plain label-correcting frontier).
* **Edge deletions** are hard for specialized maintainers: when a deleted
  edge carried a vertex's best distance, every distance that *may* have
  depended on it must be conservatively invalidated and recomputed. This
  implementation invalidates the affected region (downstream of the
  broken vertex) and re-relaxes it from its frontier — over-recomputing
  relative to differential dataflow's precise retractions, which is the
  §7.5 observation that DD beat GraphBolt on SSSP.

Semantics match ``repro.algorithms.BellmanFord`` with a fixed source:
distances for vertices reachable from the source while the source has an
outgoing edge.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Set, Tuple

WeightedEdge = Tuple[int, int, int]  # (src, dst, weight)

_INF = 1 << 60


class IncrementalSssp:
    """Maintains shortest distances from a fixed source."""

    def __init__(self, source: int):
        self.source = source
        self.out_edges: Dict[int, Dict[int, int]] = {}
        self.in_edges: Dict[int, Dict[int, int]] = {}
        self.dist: Dict[int, int] = {}
        #: vertex/edge touches — comparable to the engine's work units.
        self.work = 0

    def apply_diff(self, additions: Iterable[WeightedEdge],
                   removals: Iterable[WeightedEdge]) -> Dict[int, int]:
        """Apply an edge delta and repair distances; returns distances."""
        removals = list(removals)
        additions = list(additions)
        for src, dst, weight in removals:
            outs = self.out_edges.get(src)
            if outs is not None and outs.get(dst) == weight:
                del outs[dst]
            ins = self.in_edges.get(dst)
            if ins is not None and ins.get(src) == weight:
                del ins[src]
            self.work += 1
        for src, dst, weight in additions:
            self.out_edges.setdefault(src, {})[dst] = weight
            self.in_edges.setdefault(dst, {})[src] = weight
            self.work += 1

        if not self.out_edges.get(self.source):
            # Source lost its outgoing edges: no root, no distances.
            self.work += len(self.dist)
            self.dist = {}
            return {}

        # Deletions: conservatively invalidate everything downstream of a
        # vertex whose best distance may have used a removed edge.
        invalid: Set[int] = set()
        for src, dst, weight in removals:
            current = self.dist.get(dst)
            if current is not None and \
                    self.dist.get(src, _INF) + weight == current:
                self._invalidate_downstream(dst, invalid)
        for vertex in invalid:
            self.dist.pop(vertex, None)
        if self.source not in self.dist:
            self.dist[self.source] = 0

        # Re-relax: start from addition endpoints and the frontier around
        # the invalidated region.
        frontier = deque()
        seeds: Set[int] = set()
        for src, _dst, _w in additions:
            if src in self.dist:
                seeds.add(src)
        for vertex in invalid:
            for src in self.in_edges.get(vertex, {}):
                if src in self.dist:
                    seeds.add(src)
        seeds.add(self.source)
        frontier.extend(sorted(seeds))
        queued = set(frontier)
        while frontier:
            vertex = frontier.popleft()
            queued.discard(vertex)
            base = self.dist.get(vertex)
            if base is None:
                continue
            for dst, weight in self.out_edges.get(vertex, {}).items():
                self.work += 1
                candidate = base + weight
                if candidate < self.dist.get(dst, _INF):
                    self.dist[dst] = candidate
                    if dst not in queued:
                        frontier.append(dst)
                        queued.add(dst)
        return dict(self.dist)

    def _invalidate_downstream(self, start: int, invalid: Set[int]) -> None:
        """Mark ``start`` and everything reachable from it as suspect."""
        stack = [start]
        while stack:
            vertex = stack.pop()
            if vertex in invalid or vertex == self.source:
                continue
            if vertex not in self.dist:
                continue
            invalid.add(vertex)
            self.work += 1
            for dst in self.out_edges.get(vertex, {}):
                stack.append(dst)

    def initialize(self, edges: Iterable[WeightedEdge]) -> Dict[int, int]:
        """Build from scratch."""
        return self.apply_diff(edges, [])
