"""GraphBolt-style incremental PageRank.

Algorithm-specific maintenance: ranks are kept hot across graph updates;
after applying an edge delta, only *dirty* vertices (whose inputs changed)
are re-evaluated, and changes propagate along out-edges until quiescence —
the dependency-driven refinement loop GraphBolt's ``propagateDelta``
encodes. Semantics match ``repro.algorithms.PageRank`` exactly (same
integer arithmetic, damping, quantization, iteration cap), so results are
comparable record-for-record.

There is no undo cost and no difference-trace maintenance — which is why
specialized maintenance beats black-box differential maintenance for
PageRank (§7.5) — but every new algorithm needs new maintenance code,
which is the trade-off the paper rejects for a general view system.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.algorithms.pagerank import BASE, DAMPING_DEN, DAMPING_NUM, SCALE

EdgePair = Tuple[int, int]


class IncrementalPageRank:
    """Maintains integer PageRank over an evolving edge set."""

    def __init__(self, iterations: int = 10, quantum: int = SCALE // 1000):
        self.iterations = iterations
        self.quantum = quantum
        self.out_edges: Dict[int, Set[int]] = {}
        self.in_edges: Dict[int, Set[int]] = {}
        self.ranks: Dict[int, int] = {}
        #: vertex/edge touches — comparable to the engine's work units.
        self.work = 0

    # -- graph updates ---------------------------------------------------------

    def apply_diff(self, additions: Iterable[EdgePair],
                   removals: Iterable[EdgePair]) -> Dict[int, int]:
        """Apply an edge delta and refine ranks; returns current ranks."""
        dirty: Set[int] = set()
        for src, dst in removals:
            self.out_edges.get(src, set()).discard(dst)
            self.in_edges.get(dst, set()).discard(src)
            dirty.add(src)
            dirty.add(dst)
            self.work += 1
        for src, dst in additions:
            self.out_edges.setdefault(src, set()).add(dst)
            self.in_edges.setdefault(dst, set()).add(src)
            dirty.add(src)
            dirty.add(dst)
            self.work += 1
        self._sync_vertex_set()
        self._refine(dirty)
        return dict(self.ranks)

    def _sync_vertex_set(self) -> None:
        live = {v for v, outs in self.out_edges.items() if outs}
        live |= {v for v, ins in self.in_edges.items() if ins}
        for vertex in list(self.ranks):
            if vertex not in live:
                del self.ranks[vertex]
                self.work += 1
        for vertex in live:
            if vertex not in self.ranks:
                self.ranks[vertex] = SCALE
                self.work += 1

    # -- refinement -----------------------------------------------------------------

    def _evaluate(self, vertex: int) -> int:
        incoming = 0
        for src in self.in_edges.get(vertex, ()):
            outs = self.out_edges.get(src)
            if not outs:
                continue
            share = self.ranks.get(src, SCALE) // len(outs)
            incoming += (DAMPING_NUM * share) // DAMPING_DEN
            self.work += 1
        raw = BASE + incoming
        return ((raw + self.quantum // 2) // self.quantum) * self.quantum

    def _refine(self, dirty: Set[int]) -> None:
        """Dependency-driven refinement from the dirty frontier.

        Runs until quiescence (quantization guarantees it), with a
        generous round cap as a safety net against grid oscillation.
        """
        frontier = {v for v in dirty if v in self.ranks}
        for _round in range(10 * self.iterations):
            if not frontier:
                break
            changed: Set[int] = set()
            # Evaluate the frontier synchronously against current ranks.
            updates: List[Tuple[int, int]] = []
            for vertex in sorted(frontier):
                new_rank = self._evaluate(vertex)
                self.work += 1
                if new_rank != self.ranks.get(vertex):
                    updates.append((vertex, new_rank))
            for vertex, new_rank in updates:
                self.ranks[vertex] = new_rank
                changed.add(vertex)
            # Changed ranks dirty their out-neighbours.
            frontier = set()
            for vertex in changed:
                frontier.update(self.out_edges.get(vertex, ()))

    # -- cold start ---------------------------------------------------------------------

    def initialize(self, edges: Iterable[EdgePair]) -> Dict[int, int]:
        """Build from scratch: apply all edges then run full rounds."""
        self.apply_diff(edges, [])
        # apply_diff already refines from all endpoints = every vertex.
        return dict(self.ranks)
