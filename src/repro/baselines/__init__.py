"""Baseline systems for the paper's §7.5 comparison.

GraphBolt (Mariappan & Vora, EuroSys 2019) is a streaming graph system in
which users write *algorithm-specific maintenance code* (refine/propagate
deltas per algorithm) instead of relying on differential dataflow's
black-box maintenance. The paper reviews published comparisons (§7.5):

* GraphBolt's specialized PageRank maintenance is ~an order of magnitude
  faster than DD's black-box maintenance;
* for SSSP the relationship flips — DD was an order of magnitude faster,
  "for implementation-specific reasons" (deletion handling: specialized
  SSSP maintainers must conservatively invalidate and recompute affected
  regions, while DD retracts precisely).

This package implements GraphBolt-*style* maintainers for both algorithms
so the relative shape can be measured against our engine
(`benchmarks/bench_baselines.py`). They are deliberately faithful to the
architectural trade-off: hand-written delta propagation, no general
operator model, per-algorithm code.
"""

from repro.baselines.incremental_pagerank import IncrementalPageRank
from repro.baselines.incremental_sssp import IncrementalSssp

__all__ = ["IncrementalPageRank", "IncrementalSssp"]
