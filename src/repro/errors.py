"""Exception hierarchy for the Graphsurge reproduction.

All library errors derive from :class:`GraphsurgeError` so callers can catch
a single base class at API boundaries.
"""

from __future__ import annotations


class GraphsurgeError(Exception):
    """Base class for all errors raised by this library."""


class GvdlSyntaxError(GraphsurgeError):
    """A GVDL statement could not be tokenized or parsed.

    Carries the offending position so tools can point at the source text.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}: ...{snippet!r}...)"
        super().__init__(message)


class GvdlTypeError(GraphsurgeError):
    """A GVDL predicate or aggregate references properties inconsistently."""


class UnknownGraphError(GraphsurgeError):
    """A statement referenced a graph or view name that is not in the store."""


class UnknownPropertyError(GraphsurgeError):
    """A predicate referenced a property that does not exist on the graph."""


class SchemaError(GraphsurgeError):
    """Graph data did not conform to the declared schema."""


class DataflowError(GraphsurgeError):
    """The differential dataflow graph was constructed or driven illegally."""


class ComputationError(GraphsurgeError):
    """A user analytics computation misbehaved (bad records, wrong shape)."""


class OrderingError(GraphsurgeError):
    """The collection ordering optimizer was given unusable input."""


class StoreError(GraphsurgeError):
    """Persistence (view store / graph store) failed."""


class CheckpointError(StoreError):
    """A run checkpoint could not be loaded or does not match the run."""


class InjectedFault(GraphsurgeError):
    """A deterministic test fault fired (see :mod:`repro.core.resilience`).

    Carries the fault site and the invocation index at which it fired so
    recovery tests can assert exactly which failure they exercised.
    """

    def __init__(self, site: str, invocation: int, context: str = ""):
        self.site = site
        self.invocation = invocation
        self.context = context
        detail = f" ({context})" if context else ""
        super().__init__(
            f"injected fault at site {site!r}, invocation "
            f"{invocation}{detail}")


class AnalysisError(GraphsurgeError):
    """Strict mode refused a plan with ERROR-severity analyzer findings.

    Carries the full :class:`repro.analyze.AnalysisReport` as ``report``
    so callers can render every finding, not just the first.
    """

    def __init__(self, report):
        self.report = report
        errors = report.errors()
        head = errors[0] if errors else None
        summary = (f"{head.rule} {head.operator}: {head.message}"
                   if head is not None else "no findings")
        more = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        super().__init__(
            f"static analysis found {len(errors)} ERROR finding(s); "
            f"first: {summary}{more}. Run analyze() or the `analyze` CLI "
            f"subcommand for the full report, or drop --strict to run "
            f"anyway.")


class BudgetExceededError(GraphsurgeError):
    """A :class:`repro.core.resilience.RunBudget` limit was crossed.

    Structured: ``limit`` names the exhausted resource (``wall_seconds``,
    ``work``, or ``iterations``), ``spent``/``allowed`` quantify it, and
    ``site`` says where enforcement tripped. When the analytics executor
    re-raises, ``partial`` holds a ``CollectionRunResult`` of the views
    completed before the budget ran out, so callers keep their progress.
    """

    def __init__(self, limit: str, spent, allowed, site: str = ""):
        self.limit = limit
        self.spent = spent
        self.allowed = allowed
        self.site = site
        self.partial = None
        where = f" at {site}" if site else ""
        super().__init__(
            f"run budget exceeded{where}: {limit} {spent} > "
            f"allowed {allowed}")
