"""Exception hierarchy for the Graphsurge reproduction.

All library errors derive from :class:`GraphsurgeError` so callers can catch
a single base class at API boundaries. Every error renders to a uniform
machine-readable payload via :meth:`GraphsurgeError.to_payload` —
``{"error": <code>, "message": <text>, "context": {...}}`` — which is what
the serving layer (:mod:`repro.serve`) returns as JSON error bodies. The
class attributes ``code`` (a stable kebab-case identifier) and
``http_status`` (the status the server maps the error to) are part of the
public contract; see ``docs/serving.md`` for the full table.

Errors that reject bad *configuration* (negative budgets, invalid
algorithm parameters) derive from :class:`ConfigError`, which is both a
:class:`GraphsurgeError` and a :class:`ValueError` so legacy callers that
caught ``ValueError`` keep working.
"""

from __future__ import annotations

from typing import Any, Dict


class GraphsurgeError(Exception):
    """Base class for all errors raised by this library.

    Subclasses set ``code`` (stable machine-readable identifier) and
    ``http_status`` (what the HTTP serving layer maps the error to), and
    override :meth:`payload_context` to expose their structured fields.
    """

    code = "internal-error"
    http_status = 500

    def payload_context(self) -> Dict[str, Any]:
        """Structured, JSON-safe fields specific to this error type."""
        return {}

    def to_payload(self) -> Dict[str, Any]:
        """Render as the uniform machine-readable error payload."""
        return {
            "error": self.code,
            "message": str(self),
            "context": self.payload_context(),
        }


class ConfigError(GraphsurgeError, ValueError):
    """Invalid configuration or parameters on a user-facing path.

    Doubles as a :class:`ValueError` for backward compatibility with
    callers that predate the unified hierarchy.
    """

    code = "invalid-config"
    http_status = 400


class GvdlSyntaxError(GraphsurgeError):
    """A GVDL statement could not be tokenized or parsed.

    Carries the offending position so tools can point at the source text.
    """

    code = "gvdl-syntax"
    http_status = 400

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}: ...{snippet!r}...)"
        super().__init__(message)

    def payload_context(self) -> Dict[str, Any]:
        return {"position": self.position}


class GvdlTypeError(GraphsurgeError):
    """A GVDL predicate or aggregate references properties inconsistently."""

    code = "gvdl-type"
    http_status = 400


class UnknownGraphError(GraphsurgeError):
    """A statement referenced a graph or view name that is not in the store."""

    code = "unknown-graph"
    http_status = 404


class UnknownPropertyError(GraphsurgeError):
    """A predicate referenced a property that does not exist on the graph."""

    code = "unknown-property"
    http_status = 400


class SchemaError(GraphsurgeError):
    """Graph data did not conform to the declared schema."""

    code = "schema"
    http_status = 400


class DataflowError(GraphsurgeError):
    """The differential dataflow graph was constructed or driven illegally."""

    code = "dataflow"


class WorkerFailedError(DataflowError):
    """A process-backend worker died or stopped responding mid-superstep.

    Carries the worker index and the superstep at which the coordinator
    detected the failure, so operators and tests can tell *which* shard
    went down and *when*. The coordinator never hangs on a dead worker:
    detection is bounded by the cluster's poll/join timeouts (see
    :mod:`repro.timely.cluster`).
    """

    code = "worker-failed"

    def __init__(self, worker: int, superstep: int, detail: str = ""):
        self.worker = worker
        self.superstep = superstep
        self.detail = detail
        message = (f"worker {worker} failed during superstep {superstep}")
        if detail:
            message += f": {detail}"
        super().__init__(message)

    def payload_context(self) -> Dict[str, Any]:
        return {"worker": self.worker, "superstep": self.superstep}


class SanitizerError(DataflowError):
    """The shadow sanitizer observed inline/process divergence.

    Raised by a ``sanitize=True`` run at the *first* superstep whose
    metered trace frames (or captured output diffs) differ between the
    process-backend primary and its inline shadow. Carries the divergent
    ``(operator, timestamp, shard)`` address so the offending kernel is
    named directly instead of surfacing as a wrong final answer.
    """

    code = "sanitizer"

    def __init__(self, operator: str, timestamp, shard, detail: str = ""):
        self.operator = operator
        self.timestamp = timestamp
        self.shard = shard
        self.detail = detail
        message = (f"backends diverged at operator {operator}, "
                   f"timestamp {timestamp}, shard {shard}")
        if detail:
            message += f": {detail}"
        super().__init__(message)

    def payload_context(self) -> Dict[str, Any]:
        return {"operator": self.operator,
                "timestamp": list(self.timestamp or ()),
                "shard": self.shard}


class ComputationError(GraphsurgeError):
    """A user analytics computation misbehaved (bad records, wrong shape)."""

    code = "computation"


class StreamError(GraphsurgeError, ValueError):
    """An edge-stream batch could not be applied to the live graph.

    Raised by the streaming engine when a batch is inconsistent with the
    accumulated edge multiset — most commonly a retraction of an edge
    that is not present (would drive a multiplicity negative). The
    engine's state is unchanged when this is raised: the offending batch
    is rejected atomically, before any dataflow sees an epoch.
    """

    code = "stream"
    http_status = 400


class OrderingError(GraphsurgeError):
    """The collection ordering optimizer was given unusable input."""

    code = "ordering"
    http_status = 400


class StoreError(GraphsurgeError):
    """Persistence (view store / graph store) failed."""

    code = "store"


class CheckpointError(StoreError):
    """A run checkpoint could not be loaded or does not match the run."""

    code = "checkpoint"


class InjectedFault(GraphsurgeError):
    """A deterministic test fault fired (see :mod:`repro.core.resilience`).

    Carries the fault site and the invocation index at which it fired so
    recovery tests can assert exactly which failure they exercised.
    """

    code = "injected-fault"

    def __init__(self, site: str, invocation: int, context: str = ""):
        self.site = site
        self.invocation = invocation
        self.context = context
        detail = f" ({context})" if context else ""
        super().__init__(
            f"injected fault at site {site!r}, invocation "
            f"{invocation}{detail}")

    def payload_context(self) -> Dict[str, Any]:
        return {"site": self.site, "invocation": self.invocation}


class AnalysisError(GraphsurgeError):
    """Strict mode refused a plan with ERROR-severity analyzer findings.

    Carries the full :class:`repro.analyze.AnalysisReport` as ``report``
    so callers can render every finding, not just the first.
    """

    code = "analysis"
    http_status = 400

    def __init__(self, report):
        self.report = report
        errors = report.errors()
        head = errors[0] if errors else None
        summary = (f"{head.rule} {head.operator}: {head.message}"
                   if head is not None else "no findings")
        more = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        super().__init__(
            f"static analysis found {len(errors)} ERROR finding(s); "
            f"first: {summary}{more}. Run analyze() or the `analyze` CLI "
            f"subcommand for the full report, or drop --strict to run "
            f"anyway.")

    def payload_context(self) -> Dict[str, Any]:
        errors = self.report.errors()
        return {"errors": len(errors),
                "rules": sorted({finding.rule for finding in errors})}


class BudgetExceededError(GraphsurgeError):
    """A :class:`repro.core.resilience.RunBudget` limit was crossed.

    Structured: ``limit`` names the exhausted resource (``wall_seconds``,
    ``work``, or ``iterations``), ``spent``/``allowed`` quantify it, and
    ``site`` says where enforcement tripped. When the analytics executor
    re-raises, ``partial`` holds a ``CollectionRunResult`` of the views
    completed before the budget ran out, so callers keep their progress.
    The serving layer maps this to HTTP 503: the request's deadline or
    work budget ran out, not the client's fault.
    """

    code = "budget-exhausted"
    http_status = 503

    def __init__(self, limit: str, spent, allowed, site: str = ""):
        self.limit = limit
        self.spent = spent
        self.allowed = allowed
        self.site = site
        self.partial = None
        where = f" at {site}" if site else ""
        super().__init__(
            f"run budget exceeded{where}: {limit} {spent} > "
            f"allowed {allowed}")

    def payload_context(self) -> Dict[str, Any]:
        return {"limit": self.limit, "spent": self.spent,
                "allowed": self.allowed, "site": self.site}


# -- serving-layer errors -----------------------------------------------------


class ServeError(GraphsurgeError):
    """Base class for errors raised by the :mod:`repro.serve` daemon."""

    code = "serve"


class RequestError(ServeError):
    """A malformed HTTP request (bad JSON body, missing fields, bad route)."""

    code = "bad-request"
    http_status = 400


class OverloadedError(ServeError):
    """Admission control shed the request: queue full (HTTP 429)."""

    code = "overloaded"
    http_status = 429

    def __init__(self, inflight: int, queued: int, max_inflight: int,
                 max_queue: int):
        self.inflight = inflight
        self.queued = queued
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        super().__init__(
            f"server overloaded: {inflight} in flight, {queued} queued "
            f"(limits {max_inflight}/{max_queue}); retry later")

    def payload_context(self) -> Dict[str, Any]:
        return {"inflight": self.inflight, "queued": self.queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue}


class CircuitOpenError(ServeError):
    """A per-algorithm circuit breaker is open: fail fast (HTTP 503)."""

    code = "circuit-open"
    http_status = 503

    def __init__(self, name: str, failures: int, retry_after: float):
        self.name = name
        self.failures = failures
        self.retry_after = retry_after
        super().__init__(
            f"circuit breaker for {name!r} is open after {failures} "
            f"consecutive failure(s); retry in {retry_after:.1f}s")

    def payload_context(self) -> Dict[str, Any]:
        return {"breaker": self.name, "failures": self.failures,
                "retry_after": round(self.retry_after, 3)}


class ShuttingDownError(ServeError):
    """The server is draining and refuses new work (HTTP 503)."""

    code = "shutting-down"
    http_status = 503
