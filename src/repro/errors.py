"""Exception hierarchy for the Graphsurge reproduction.

All library errors derive from :class:`GraphsurgeError` so callers can catch
a single base class at API boundaries.
"""

from __future__ import annotations


class GraphsurgeError(Exception):
    """Base class for all errors raised by this library."""


class GvdlSyntaxError(GraphsurgeError):
    """A GVDL statement could not be tokenized or parsed.

    Carries the offending position so tools can point at the source text.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}: ...{snippet!r}...)"
        super().__init__(message)


class GvdlTypeError(GraphsurgeError):
    """A GVDL predicate or aggregate references properties inconsistently."""


class UnknownGraphError(GraphsurgeError):
    """A statement referenced a graph or view name that is not in the store."""


class UnknownPropertyError(GraphsurgeError):
    """A predicate referenced a property that does not exist on the graph."""


class SchemaError(GraphsurgeError):
    """Graph data did not conform to the declared schema."""


class DataflowError(GraphsurgeError):
    """The differential dataflow graph was constructed or driven illegally."""


class ComputationError(GraphsurgeError):
    """A user analytics computation misbehaved (bad records, wrong shape)."""


class OrderingError(GraphsurgeError):
    """The collection ordering optimizer was given unusable input."""


class StoreError(GraphsurgeError):
    """Persistence (view store / graph store) failed."""
