"""Deterministic record-to-worker sharding.

Timely Dataflow distributes the records of a stream across workers using a
hash of an exchange key. We reproduce that with a stable hash so that work
attribution (and therefore simulated parallel time) is reproducible across
runs and machines — Python's built-in ``hash`` is salted for strings, so we
roll a small FNV-1a instead.
"""

from __future__ import annotations

from typing import Any

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(value: Any) -> int:
    """Return a 64-bit hash that is stable across processes.

    Supports the record components used by the engine: ints, strings,
    booleans, floats, bytes, None, frozensets, and (nested) tuples
    thereof. Exchange correctness for the process backend depends on this
    being identical in every interpreter — never fall back to the salted
    built-in ``hash``, and never depend on an iteration order that the
    string hash seed can perturb (see the frozenset branch).
    """
    if isinstance(value, bool):
        return 0x9E3779B97F4A7C15 if value else 0x2545F4914F6CDD1D
    if isinstance(value, int):
        # Avalanche small ints so consecutive vertex ids spread over workers.
        h = (value ^ (value >> 33)) & _MASK
        h = (h * 0xFF51AFD7ED558CCD) & _MASK
        h ^= h >> 33
        return h
    if isinstance(value, float):
        # Keys that compare equal must hash equal regardless of numeric
        # type: a vertex id arriving as 3.0 (e.g. parsed from a weighted
        # CSV column) must land on the same worker as the int 3, and
        # -0.0 == 0.0 must not split across shards via their distinct hex
        # spellings ('-0x0.0p+0' vs '0x0.0p+0').
        if value.is_integer():
            return stable_hash(int(value))
        return stable_hash(value.hex())
    if value is None:
        return 0x6A09E667F3BCC908
    if isinstance(value, str):
        h = _FNV_OFFSET
        for byte in value.encode("utf-8"):
            h ^= byte
            h = (h * _FNV_PRIME) & _MASK
        return h
    if isinstance(value, bytes):
        # Domain-separate from str so b"abc" and "abc" don't collide
        # systematically.
        h = (_FNV_OFFSET * _FNV_PRIME) & _MASK
        for byte in value:
            h ^= byte
            h = (h * _FNV_PRIME) & _MASK
        return h
    if isinstance(value, tuple):
        h = _FNV_OFFSET
        for item in value:
            h ^= stable_hash(item)
            h = (h * _FNV_PRIME) & _MASK
        return h
    if isinstance(value, frozenset):
        # A frozenset's iteration order (and hence its repr) follows the
        # built-in hash, which is seeded per process for strings — the old
        # repr fallback silently sharded {"a", "b"} differently under
        # different PYTHONHASHSEEDs. Fold with XOR, which is order
        # insensitive, then avalanche through the int branch.
        h = 0
        for item in value:
            h ^= stable_hash(item)
        return stable_hash(h)
    # Fall back to the repr for exotic-but-hashable records.
    return stable_hash(repr(value))


def shard_for(key: Any, workers: int) -> int:
    """Assign ``key`` to one of ``workers`` workers (hash partitioning)."""
    if workers <= 1:
        return 0
    return stable_hash(key) % workers


def canonical_order_key(value: Any) -> tuple:
    """A total-order sort key for (nested) records of mixed types.

    Sorting by ``repr`` is not canonical: ``3`` and ``3.0`` compare equal
    (and :func:`stable_hash` hashes them equal) but repr differently, and
    int/str record components interleave by accidents of their repr text
    (``'(10'`` sorts before ``'(9'``). This key ranks by type class first
    and compares numbers by numeric value, so equal-comparing records of
    different numeric spelling order identically and heterogeneous
    records have one stable, meaningful order everywhere outputs are
    rendered.
    """
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    if isinstance(value, (tuple, list)):
        return (5, tuple(canonical_order_key(item) for item in value))
    if isinstance(value, frozenset):
        return (6, tuple(sorted(canonical_order_key(item)
                                for item in value)))
    return (7, repr(value))
