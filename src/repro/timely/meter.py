"""Work metering: deterministic cost accounting for the engine.

Every operator reports the records it touches, attributed to the worker that
would process them under hash partitioning. The meter aggregates two
quantities:

* ``total_work`` — total records touched (a machine-independent cost).
* ``parallel_time`` — Σ over supersteps of the *maximum* per-worker work in
  that superstep. A superstep is one operator pass at one timestamp, which is
  the unit between which timely workers synchronize. This simulates the
  elapsed time of a W-worker cluster and is what the Figure 10 scalability
  benchmark reports.

The meter is owned by a :class:`repro.differential.dataflow.Dataflow`; it can
be checkpointed cheaply (``snapshot``) so the executor can attribute cost to
individual views of a collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.timely.worker import shard_for


@dataclass(frozen=True)
class WorkSnapshot:
    """Immutable point-in-time reading of a :class:`WorkMeter`."""

    total_work: int
    parallel_time: int
    supersteps: int

    def delta(self, later: "WorkSnapshot") -> "WorkSnapshot":
        """Return the work performed between ``self`` and ``later``."""
        return WorkSnapshot(
            total_work=later.total_work - self.total_work,
            parallel_time=later.parallel_time - self.parallel_time,
            supersteps=later.supersteps - self.supersteps,
        )


class WorkMeter:
    """Accumulates per-worker work within supersteps.

    Usage from operators::

        meter.record(key, units)      # inside a superstep

    Usage from the driver::

        meter.begin_step()
        ... run one operator pass at one timestamp ...
        meter.end_step()
    """

    def __init__(self, workers: int = 1, fault_plan=None, tracer=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        #: Optional :class:`repro.core.resilience.FaultPlan`; the
        #: ``operator`` site fires once per :meth:`record` call, i.e. in
        #: the middle of an operator's apply — the nastiest crash point,
        #: since it leaves the dataflow's traces half-updated.
        self.fault_plan = fault_plan
        #: Optional :class:`repro.observe.tracer.TraceSink`. The sink only
        #: observes — worker sharding, unit counts, and superstep frames
        #: are computed identically with or without it, so ``total_work``
        #: and ``parallel_time`` are byte-identical either way.
        self.tracer = tracer
        self.total_work = 0
        self.parallel_time = 0
        self.supersteps = 0
        # Stack of per-worker tallies: one frame per open superstep. A
        # nested frame (an inner loop's pass inside an outer pass) counts
        # its own synchronization; its work does not re-count in the outer
        # frame.
        self._frames: list = []

    def record(self, key: Any, units: int = 1) -> None:
        """Attribute ``units`` of work for ``key``'s worker."""
        if units <= 0:
            return
        if self.fault_plan is not None:
            # Fire once per unit, not per call: operators batch their
            # metering (one call for n records), and fault offsets are
            # specified against the unit counter (``at=total_work // 2``
            # style), which must not depend on batch sizes.
            extra = 0
            for _unit in range(units):
                spec = self.fault_plan.fire("operator", context=repr(key))
                if spec is not None and spec.kind == "corrupt":
                    # Cost-model corruption: wildly over-reported work.
                    extra += 999
            units += extra
        self.total_work += units
        worker = shard_for(key, self.workers)
        if self._frames:
            frame = self._frames[-1]
            frame[worker] = frame.get(worker, 0) + units
        else:
            # Work outside any superstep counts as fully serial.
            self.parallel_time += units
        if self.tracer is not None:
            self.tracer.record(worker, units, key)

    def begin_step(self) -> None:
        """Open a superstep: one data-parallel pass of the dataflow at one
        timestamp (workers synchronize at its end, as in timely)."""
        self._frames.append({})
        if self.tracer is not None:
            self.tracer.begin_step()

    def end_step(self) -> None:
        if not self._frames:
            return
        frame = self._frames.pop()
        if frame:
            self.parallel_time += max(frame.values())
            self.supersteps += 1
        if self.tracer is not None:
            self.tracer.end_step()

    def snapshot(self) -> WorkSnapshot:
        """Capture current counters (usable for per-view deltas)."""
        return WorkSnapshot(self.total_work, self.parallel_time, self.supersteps)

    def reset(self) -> None:
        self.total_work = 0
        self.parallel_time = 0
        self.supersteps = 0
        self._frames.clear()
