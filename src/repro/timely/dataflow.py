"""A timely-dataflow-style batch layer for acyclic data-parallel jobs.

The paper's Graphsurge uses Timely Dataflow *directly* (without the
differential layer) for the embarrassingly parallel steps: evaluating view
predicates over edges (the EBM), computing aggregate views, and the
Hamming-distance step of Algorithm 1. This module provides that layer: a
small BSP dataflow where every stream is sharded across W simulated
workers, operators process shards independently, and ``exchange`` moves
records between workers by key hash (the cost model of a timely cluster).

Iterative/incremental computations do NOT belong here — they run on
:mod:`repro.differential`, which layers differential semantics on the same
worker/metering substrate.

Example::

    td = TimelyDataflow(workers=4)
    edges = td.input("edges")
    degrees = (edges
               .exchange(lambda rec: rec[0])
               .aggregate(lambda rec: rec[0], lambda recs: len(recs)))
    out = degrees.capture("degrees")
    td.run({"edges": [(0, 1), (0, 2), (1, 2)]})
    assert sorted(out.records) == [(0, 2), (1, 1)]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DataflowError
from repro.timely.cluster import ProcessCluster, validate_backend
from repro.timely.meter import WorkMeter
from repro.timely.worker import shard_for

Shards = List[List[Any]]


class _TOperator:
    """A node of the batch dataflow graph."""

    #: Whether the operator processes shards independently and can run on
    #: a remote worker (see :class:`_ShardedOp`). Operators that touch
    #: cross-shard or coordinator-resident state stay inline.
    shardable = False

    def __init__(self, dataflow: "TimelyDataflow", name: str,
                 inputs: Sequence["_TOperator"]):
        self.dataflow = dataflow
        self.name = name
        self.inputs = list(inputs)
        self.output: Optional[Shards] = None
        dataflow._register(self)

    def evaluate(self, input_shards: List[Shards]) -> Shards:
        raise NotImplementedError

    def _empty(self) -> Shards:
        return [[] for _ in range(self.dataflow.workers)]


class _ShardedOp(_TOperator):
    """An operator whose work is one independent kernel per worker shard.

    Subclasses implement :meth:`shard_kernel`, which maps one worker's
    input shard(s) to ``(events, payload)`` where ``events`` is a tuple of
    meter batch sizes (each entry meaning "that many unit-cost
    ``meter.record(worker)`` calls, in order") and ``payload`` is the
    shard's output. The inline backend runs the kernel in-process; the
    process backend ships the shard to the owning worker and replays the
    returned events into the coordinator's meter — producing the identical
    ``meter.record`` call sequence either way, which is what keeps
    ``total_work``/``parallel_time``/traces byte-identical across
    backends.
    """

    shardable = True

    def shard_kernel(self, worker: int,
                     shard_inputs: List[List[Any]]) -> Tuple[tuple, Any]:
        raise NotImplementedError

    def merge_shard(self, worker: int, payload: Any, out: Shards) -> None:
        out[worker] = payload

    def evaluate(self, input_shards):
        meter = self.dataflow.meter
        out = self._empty()
        for worker in range(self.dataflow.workers):
            events, payload = self.shard_kernel(
                worker, [shards[worker] for shards in input_shards])
            for count in events:
                for _record in range(count):
                    meter.record(worker)
            self.merge_shard(worker, payload, out)
        return out

    # -- process-backend entry points (run inside the worker) -----------------

    def remote_task(self, payload):
        _header, items = payload
        return {worker: self.shard_kernel(worker, shard_inputs)
                for worker, shard_inputs in items}

    def remote_stats(self) -> int:
        return 0  # batch operators hold no resident state


class _InputOp(_TOperator):
    def __init__(self, dataflow, name):
        super().__init__(dataflow, name, [])
        self.pending: Optional[List[Any]] = None

    def evaluate(self, input_shards):
        shards = self._empty()
        records = self.pending or []
        # Inputs arrive round-robin, like records read from partitioned
        # files in timely.
        for index, record in enumerate(records):
            shards[index % self.dataflow.workers].append(record)
        self.pending = None
        return shards


class _MapOp(_ShardedOp):
    def __init__(self, dataflow, name, source, fn, flat=False):
        super().__init__(dataflow, name, [source])
        self.fn = fn
        self.flat = flat

    def shard_kernel(self, worker, shard_inputs):
        shard = shard_inputs[0]
        result: List[Any] = []
        for record in shard:
            if self.flat:
                result.extend(self.fn(record))
            else:
                result.append(self.fn(record))
        return (len(shard),), result


class _FilterOp(_ShardedOp):
    def __init__(self, dataflow, name, source, predicate):
        super().__init__(dataflow, name, [source])
        self.predicate = predicate

    def shard_kernel(self, worker, shard_inputs):
        shard = shard_inputs[0]
        result = [record for record in shard if self.predicate(record)]
        return (len(shard),), result


class _ExchangeOp(_ShardedOp):
    def __init__(self, dataflow, name, source, key_fn):
        super().__init__(dataflow, name, [source])
        self.key_fn = key_fn

    def shard_kernel(self, worker, shard_inputs):
        shard = shard_inputs[0]
        workers = self.dataflow.workers
        routed: List[List[Any]] = [[] for _ in range(workers)]
        for record in shard:
            routed[shard_for(self.key_fn(record), workers)].append(record)
        return (len(shard),), routed

    def merge_shard(self, worker, payload, out):
        # Fragments merge in source-worker order (the caller iterates
        # workers 0..W-1), matching the order the old in-loop append
        # produced.
        for target, fragment in enumerate(payload):
            out[target].extend(fragment)


class _ConcatOp(_TOperator):
    def evaluate(self, input_shards):
        out = self._empty()
        for shards in input_shards:
            for worker, shard in enumerate(shards):
                out[worker].extend(shard)
        return out


class _AggregateOp(_ShardedOp):
    """Group by key *within each worker* and fold each group.

    Callers exchange by the group key first (as in timely) so each group
    lives on exactly one worker; :meth:`TStream.aggregate` does this
    automatically.
    """

    def __init__(self, dataflow, name, source, key_fn, fold):
        super().__init__(dataflow, name, [source])
        self.key_fn = key_fn
        self.fold = fold

    def shard_kernel(self, worker, shard_inputs):
        shard = shard_inputs[0]
        groups: Dict[Any, List[Any]] = {}
        for record in shard:
            groups.setdefault(self.key_fn(record), []).append(record)
        result = [(key, self.fold(records))
                  for key, records in groups.items()]
        # One unit per record grouped, then one per group folded — the
        # same two metering phases the in-loop version performed.
        return (len(shard), len(groups)), result


class _JoinOp(_ShardedOp):
    """Hash equi-join of two keyed streams (records are (key, value))."""

    def __init__(self, dataflow, name, left, right, merge):
        super().__init__(dataflow, name, [left, right])
        self.merge = merge

    def shard_kernel(self, worker, shard_inputs):
        left, right = shard_inputs
        result: List[Any] = []
        table: Dict[Any, List[Any]] = {}
        for key, value in left:
            table.setdefault(key, []).append(value)
        for key, value in right:
            for other in table.get(key, ()):
                result.append(self.merge(key, other, value))
        # One unit per build-side record, then one per probe-side record.
        return (len(left), len(right)), result


class _CaptureOp(_TOperator):
    def __init__(self, dataflow, name, source):
        super().__init__(dataflow, name, [source])
        self.records: List[Any] = []

    def evaluate(self, input_shards):
        self.records = [record
                        for shard in input_shards[0]
                        for record in shard]
        return input_shards[0]


class TStream:
    """Fluent handle on a batch stream."""

    def __init__(self, dataflow: "TimelyDataflow", op: _TOperator):
        self.dataflow = dataflow
        self.op = op

    def map(self, fn: Callable[[Any], Any], name: str = "map") -> "TStream":
        return TStream(self.dataflow,
                       _MapOp(self.dataflow, name, self.op, fn))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]],
                 name: str = "flat_map") -> "TStream":
        return TStream(self.dataflow,
                       _MapOp(self.dataflow, name, self.op, fn, flat=True))

    def filter(self, predicate: Callable[[Any], bool],
               name: str = "filter") -> "TStream":
        return TStream(self.dataflow,
                       _FilterOp(self.dataflow, name, self.op, predicate))

    def exchange(self, key_fn: Callable[[Any], Any],
                 name: str = "exchange") -> "TStream":
        """Re-shard records across workers by a key (timely's exchange)."""
        return TStream(self.dataflow,
                       _ExchangeOp(self.dataflow, name, self.op, key_fn))

    def concat(self, *others: "TStream") -> "TStream":
        ops = [self.op] + [other.op for other in others]
        return TStream(self.dataflow,
                       _ConcatOp(self.dataflow, "concat", ops))

    def aggregate(self, key_fn: Callable[[Any], Any],
                  fold: Callable[[List[Any]], Any],
                  name: str = "aggregate") -> "TStream":
        """Exchange by key, then fold each group: ``(key, fold(records))``."""
        exchanged = self.exchange(key_fn, name=name + ".exchange")
        return TStream(self.dataflow,
                       _AggregateOp(self.dataflow, name, exchanged.op,
                                    key_fn, fold))

    def join(self, other: "TStream",
             merge: Callable[[Any, Any, Any], Any],
             name: str = "join") -> "TStream":
        """Hash join of (key, value) streams; both sides are exchanged."""
        left = self.exchange(lambda rec: rec[0], name=name + ".xl")
        right = other.exchange(lambda rec: rec[0], name=name + ".xr")
        return TStream(self.dataflow,
                       _JoinOp(self.dataflow, name, left.op, right.op,
                               merge))

    def capture(self, name: str = "capture") -> _CaptureOp:
        return _CaptureOp(self.dataflow, name, self.op)


class TimelyDataflow:
    """A runnable batch dataflow over simulated or real workers.

    ``backend="inline"`` (default) runs every shard in-process;
    ``backend="process"`` forks one OS process per worker at :meth:`run`
    and ships shards over exchange channels (see
    :mod:`repro.timely.cluster` and ``docs/parallel.md``). Counters and
    outputs are byte-identical between backends.
    """

    def __init__(self, workers: int = 1, meter: Optional[WorkMeter] = None,
                 backend: str = "inline"):
        self.workers = max(1, workers)
        validate_backend(backend, self.workers)
        self.backend = backend
        self.meter = meter if meter is not None else WorkMeter(self.workers)
        self._operators: List[_TOperator] = []
        self._inputs: Dict[str, _InputOp] = {}

    def _register(self, op: _TOperator) -> None:
        self._operators.append(op)

    def input(self, name: str) -> TStream:
        if name in self._inputs:
            raise DataflowError(f"duplicate input {name!r}")
        op = _InputOp(self, name)
        self._inputs[name] = op
        return TStream(self, op)

    def run(self, inputs: Optional[Dict[str, Iterable[Any]]] = None) -> None:
        """Execute the dataflow once over the given input records.

        Operators run in construction (= topological) order; each operator
        pass is one superstep.
        """
        for name, records in (inputs or {}).items():
            op = self._inputs.get(name)
            if op is None:
                raise DataflowError(f"unknown input {name!r}")
            op.pending = list(records)
        cluster = None
        if self.backend == "process":
            # Fork one worker per shard for this run; batch dataflows are
            # one-shot, so the cluster's lifetime is the run's.
            registry = {index: op
                        for index, op in enumerate(self._operators)
                        if op.shardable}
            cluster = ProcessCluster(
                self.workers, registry,
                superstep=lambda: self.meter.supersteps)
        try:
            for op_index, op in enumerate(self._operators):
                shards = [upstream.output for upstream in op.inputs]
                for upstream, shard in zip(op.inputs, shards):
                    if shard is None:
                        raise DataflowError(
                            f"operator {op.name} ran before its input "
                            f"{upstream.name}")
                self.meter.begin_step()
                if cluster is not None and op.shardable:
                    op.output = self._evaluate_remote(
                        cluster, op_index, op, shards)
                else:
                    op.output = op.evaluate(shards)
                self.meter.end_step()
        finally:
            if cluster is not None:
                cluster.close()

    def _evaluate_remote(self, cluster: ProcessCluster, op_index: int,
                         op: _ShardedOp, input_shards: List[Shards]) -> Shards:
        """Run one sharded operator pass on the process cluster.

        Ships each worker its shard(s), then replays the returned meter
        events and merges outputs in worker order 0..W-1 — the same
        ``meter.record`` sequence and output layout as the inline loop.
        """
        items = [(worker, [shards[worker] for shards in input_shards])
                 for worker in range(self.workers)]
        replies = cluster.run_tasks(op_index, None, items,
                                    route=lambda worker: worker)
        meter = self.meter
        out = op._empty()
        for worker in range(self.workers):
            events, payload = replies[worker]
            for count in events:
                for _record in range(count):
                    meter.record(worker)
            op.merge_shard(worker, payload, out)
        return out
